//! A miniature of the paper's design-space methodology: the exhaustive
//! gshare history-length search (Section 3.1) and the address-bits /
//! history-bits trade-off it exposes (Section 4.1), on one workload.
//!
//! Run with: `cargo run --release --example design_space`

use bpred_harness::search::best_gshare;
use bpred_harness::sweep::{sweep_all, Scheme};
use bpred_trace::PackedTrace;
use bpred_workloads::{Scale, Workload};

fn main() {
    let trace = Workload::by_name("vortex")
        .expect("registered")
        .trace(Scale::Smoke);
    let packed = PackedTrace::build(&trace).expect("one workload's sites fit");
    let traces = [&packed];

    // 1. The exhaustive search at one size: the whole m-curve.
    let best = best_gshare(&traces, 10, None);
    println!("gshare search at 2^10 counters on `vortex`:");
    println!("  {:>3}  {:>12}", "m", "mispredict %");
    for (m, rate) in &best.curve {
        let marker = if *m == best.history_bits {
            "  <- best"
        } else {
            ""
        };
        println!("  {:>3}  {:>12.2}{marker}", m, 100.0 * rate);
    }

    // 2. The three Figure-2 curves on this workload.
    println!("\nsize sweep (misprediction %):");
    println!(
        "  {:<14} {:>8} {:>22}",
        "scheme", "KB", "config -> mispredict"
    );
    for p in sweep_all(&traces, None) {
        println!(
            "  {:<14} {:>8} {:>16} {:>6.2}",
            p.scheme.label(),
            p.kib,
            p.config,
            100.0 * p.average_rate()
        );
    }

    // 3. The paper's observation, checked live: the best history
    //    length usually sits strictly between "no history" and "all
    //    history" — both information sources matter.
    let single_pht = best.curve.last().expect("m = s candidate").1;
    let bimodal_like = best.curve.first().expect("m = 0 candidate").1;
    println!(
        "\nm=0 (pure address): {:.2}%   m=s (pure xor): {:.2}%   best m={}: {:.2}%",
        100.0 * bimodal_like,
        100.0 * single_pht,
        best.history_bits,
        100.0 * best.average_rate
    );
    let _ = Scheme::BiMode;
}
