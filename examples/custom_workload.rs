//! Bring your own workload: trace branches from (a) your own Rust code
//! through the ATOM-style `Tracer`, and (b) an assembly program on the
//! `bpred-sim` ISA machine — then analyse both with the paper's tools.
//!
//! Run with: `cargo run --release --example custom_workload`

use bpred_analysis::{measure, Analysis};
use bpred_core::{BiMode, BiModeConfig, Gshare};
use bpred_sim::{assemble, Machine};
use bpred_trace::Trace;
use bpred_workloads::{site, Tracer};

/// (a) An instrumented Rust workload: a toy hash-join whose probe
/// branch bias depends on the match rate.
fn hash_join_trace(rows: usize) -> Trace {
    let mut t = Tracer::new("hash-join");
    let build: Vec<u64> = (0..rows as u64).filter(|k| k % 3 != 0).collect();
    let lookup = |k: u64| build.binary_search(&k).is_ok();
    let mut matches = 0u64;
    for k in 0..rows as u64 {
        // The probe branch: ~2/3 taken.
        if t.branch(site!(), lookup(k)) {
            matches += 1;
            // A correlated branch: every other match.
            if t.branch(site!(), matches.is_multiple_of(2)) {
                std::hint::black_box(matches);
            }
        }
    }
    t.into_trace()
}

/// (b) An assembly workload on the ISA machine: GCD by subtraction
/// over many input pairs, whose compare branches are data-dependent.
fn gcd_trace() -> Trace {
    let program = assemble(
        r"
        ; for i in 0..400: mem[i] = gcd(252 + 17*i, 105 + 13*i)
              li   r10, 0          ; i
              li   r11, 400        ; pairs
        next: li   r4, 17
              mul  r1, r10, r4
              addi r1, r1, 252     ; a
              li   r4, 13
              mul  r2, r10, r4
              addi r2, r2, 105     ; b
        loop: beq  r1, r2, done
              blt  r1, r2, swap
              sub  r1, r1, r2
              j    loop
        swap: sub  r2, r2, r1
              j    loop
        done: sw   r1, (r10)
              addi r10, r10, 1
              blt  r10, r11, next
              halt
        ",
    )
    .expect("program assembles");
    let mut machine = Machine::with_memory(program, 4096);
    let mut trace = Trace::new("gcd");
    machine
        .run_into(10_000_000, &mut trace)
        .expect("program halts");
    assert_eq!(machine.memory_word(0), Some(21), "gcd(252, 105)");
    assert_eq!(machine.memory_word(1), Some(1), "gcd(269, 118)");
    trace
}

fn main() {
    for trace in [hash_join_trace(30_000), gcd_trace()] {
        let stats = trace.stats();
        println!(
            "\n== {} == ({} static, {} dynamic conditional)",
            trace.name(),
            stats.static_conditional,
            stats.dynamic_conditional
        );
        let g = measure(&trace, &mut Gshare::new(10, 10));
        let b = measure(&trace, &mut BiMode::new(BiModeConfig::paper_default(9)));
        println!("  gshare(10,10): {:>6.2}%", g.misprediction_percent());
        println!("  bi-mode(d=9):  {:>6.2}%", b.misprediction_percent());

        // The Section 4 view of your own code.
        let analysis = Analysis::run(&trace, || Gshare::new(8, 8));
        let (dom, non, wb) = analysis.area_fractions();
        println!(
            "  substream areas under gshare(8,8): dominant {:.0}%, non-dominant {:.0}%, WB {:.0}%",
            100.0 * dom,
            100.0 * non,
            100.0 * wb
        );
    }
}
