//! Streaming-service client: start an in-process `repro serve`
//! instance, stream a benchmark trace to it twice, and show the second
//! run being served straight from the result store.
//!
//! Run with: `cargo run --release --example serve_client`
//!
//! Against an external server (`repro serve` in another terminal),
//! point the `ADDR` constant at it instead of binding in-process.

use bpred_core::PredictorSpec;
use bpred_harness::serve::{client_run, client_shutdown, client_stats, Server};
use bpred_workloads::{Scale, Workload};

fn main() {
    // 1. Bind an ephemeral in-process server with two shard workers.
    //    (A long-lived deployment runs `repro serve` instead; clients
    //    are identical either way.)
    let server = Server::bind("127.0.0.1:0", 2).expect("bind an ephemeral port");
    let addr = server.addr().to_string();
    let server = std::thread::spawn(move || server.run());
    println!("serving on {addr}");

    // 2. Stream the gcc-like workload under a bi-mode spec. The client
    //    declares the trace digest up front; on a cold store the
    //    server asks for the stream and measures it chunk by chunk (a
    //    warm store — e.g. after `repro all` — serves even this first
    //    run directly, which is the point of sharing one key space).
    let spec: PredictorSpec = "bimode:d=11".parse().expect("grammar spec parses");
    let trace = Workload::by_name("gcc")
        .expect("gcc is registered")
        .trace(Scale::Smoke);
    let first = client_run(&addr, &spec, &trace).expect("first streamed run");
    println!(
        "first run : {:>8} branches, {:>7} mispredicted ({:.2}%), store-served: {}",
        first.result.branches,
        first.result.mispredictions,
        100.0 * first.result.misprediction_rate(),
        first.store_served,
    );

    // 3. Same digest again: the server replays the stored result —
    //    no records cross the wire, and the counts are bit-identical.
    let second = client_run(&addr, &spec, &trace).expect("repeated run");
    println!(
        "second run: {:>8} branches, {:>7} mispredicted ({:.2}%), store-served: {}",
        second.result.branches,
        second.result.mispredictions,
        100.0 * second.result.misprediction_rate(),
        second.store_served,
    );
    assert_eq!(first.result, second.result, "store replay is bit-identical");
    assert!(second.store_served, "a repeated digest hits the store");

    // 4. The live stats endpoint: connections, branches/s, store hits,
    //    per-engine drive counters.
    println!("\nlive stats:\n{}", client_stats(&addr).expect("stats"));

    // 5. Graceful shutdown: in-flight streams drain, the server
    //    returns its final summary.
    client_shutdown(&addr).expect("shutdown");
    let summary = server
        .join()
        .expect("server thread")
        .expect("clean shutdown");
    println!(
        "summary: {} connection(s), {} stream(s) measured, {} store hit(s)",
        summary.connections, summary.streams_finished, summary.store.hits,
    );
}
