//! Quickstart: build the paper's predictors, drive them over a
//! benchmark trace, and compare misprediction rates.
//!
//! Run with: `cargo run --release --example quickstart`

use bpred_analysis::measure;
use bpred_core::{BiMode, BiModeConfig, Bimodal, Gshare, Predictor};
use bpred_workloads::{Scale, Workload};

fn main() {
    // 1. Generate a deterministic benchmark trace (the gcc-like
    //    workload, the paper's canonical analysis subject).
    let workload = Workload::by_name("gcc").expect("gcc is registered");
    let trace = workload.trace(Scale::Smoke);
    let stats = trace.stats();
    println!(
        "workload `{}`: {} static / {} dynamic conditional branches ({:.1}% taken)",
        workload.name(),
        stats.static_conditional,
        stats.dynamic_conditional,
        100.0 * stats.taken_rate(),
    );

    // 2. Build three predictors at comparable hardware budgets.
    let mut predictors: Vec<Box<dyn Predictor>> = vec![
        Box::new(Bimodal::new(12)),
        Box::new(Gshare::new(12, 12)),
        Box::new(BiMode::new(BiModeConfig::paper_default(11))),
    ];

    // 3. Trace-driven simulation: predict, then update, per branch.
    println!(
        "\n{:<24} {:>9} {:>14}",
        "predictor", "size KB", "mispredict %"
    );
    for p in &mut predictors {
        let result = measure(&trace, p.as_mut());
        println!(
            "{:<24} {:>9.3} {:>14.2}",
            p.name(),
            p.cost().state_kib(),
            result.misprediction_percent(),
        );
    }

    // 4. The paper's point in one sentence: at similar cost, the
    //    bi-mode predictor removes destructive aliasing that gshare
    //    suffers, without losing global-history correlation.
}
