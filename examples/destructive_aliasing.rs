//! The paper's Section 2.1 problem as a runnable microbenchmark: two
//! branches with the same global-history behaviour but opposite biases
//! collide in a gshare PHT and thrash; the bi-mode choice predictor
//! routes them to different direction banks.
//!
//! Run with: `cargo run --release --example destructive_aliasing`

use bpred_analysis::{measure, Analysis};
use bpred_core::{BiMode, BiModeConfig, Gshare};
use bpred_trace::{BranchRecord, Trace};

/// Builds a trace of two interleaved branches that share the low PC
/// index bits of a 2^6-counter table: `a` always taken, `b` never.
fn aliasing_trace(rounds: usize) -> Trace {
    let table_bits = 6;
    let a = 0x0040_1000u64;
    let b = a + (1u64 << (table_bits + 2)); // same low index bits
    let mut trace = Trace::new("destructive-aliasing");
    for _ in 0..rounds {
        trace.push(BranchRecord::conditional(a, a + 64, true));
        trace.push(BranchRecord::conditional(b, b - 128, false));
    }
    trace
}

fn main() {
    let trace = aliasing_trace(5_000);

    // Zero history bits isolate the aliasing effect itself.
    let mut gshare = Gshare::new(6, 0);
    let mut bimode = BiMode::new(BiModeConfig::new(6, 8, 0));

    let g = measure(&trace, &mut gshare);
    let b = measure(&trace, &mut bimode);
    println!("two opposite-biased branches aliased onto one counter:");
    println!(
        "  gshare(s=6):           {:>6.2}% mispredicted",
        g.misprediction_percent()
    );
    println!(
        "  bi-mode(d=6,c=8):      {:>6.2}% mispredicted",
        b.misprediction_percent()
    );

    // Show *why* through the paper's Section 4 analysis: the gshare
    // counter is contested by an ST and an SNT substream, the bi-mode
    // counters are not.
    let ga = Analysis::run(&trace, || Gshare::new(6, 0));
    let ba = Analysis::run(&trace, || BiMode::new(BiModeConfig::new(6, 8, 0)));
    let contested = |a: &Analysis| {
        a.per_counter
            .iter()
            .filter(|c| c.st > 10 && c.snt > 10)
            .count()
    };
    println!("\ncounters contested by both strong classes:");
    println!("  gshare:  {}", contested(&ga));
    println!("  bi-mode: {}", contested(&ba));
    println!("\nbias-class changes at counters (paper Table 4 metric):");
    println!("  gshare:  {}", ga.class_changes.total());
    println!("  bi-mode: {}", ba.class_changes.total());

    assert!(g.misprediction_rate() > 10.0 * b.misprediction_rate().max(1e-6));
    println!("\nbi-mode separated the destructive aliases, as the paper claims.");
}
