//! A small RISC instruction-set simulator with a text assembler.
//!
//! The paper's traces came from real MIPS/Alpha machines. This crate is
//! the corresponding substrate in the reproduction: a 32-register,
//! word-addressed load/store machine whose executed conditional branches
//! are emitted as [`bpred_trace::BranchRecord`]s with genuine,
//! layout-derived program counters. Kernels written in its assembly
//! produce PC-accurate branch traces with natural instruction-address
//! clustering, which matters for the address-indexed predictor studies.
//!
//! ```
//! use bpred_sim::{assemble, Machine};
//!
//! let program = assemble(r#"
//!         addi r1, r0, 5      ; counter = 5
//! loop:   addi r1, r1, -1
//!         bne  r1, r0, loop
//!         halt
//! "#)?;
//! let mut m = Machine::new(program);
//! let trace = m.run(10_000)?;
//! // The loop branch executes 5 times: taken 4, then falls through.
//! assert_eq!(trace.conditional().count(), 5);
//! assert_eq!(trace.conditional().filter(|r| r.taken).count(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod disasm;
pub mod isa;
pub mod kernels;
pub mod machine;

pub use asm::{assemble, AsmError};
pub use disasm::disassemble;
pub use isa::{Instruction, Program, Reg};
pub use machine::{BranchObservation, Machine, RunError};
