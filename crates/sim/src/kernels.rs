//! Assembly kernels with classic branch structures, used as PC-accurate
//! trace sources and as end-to-end tests of the machine.
//!
//! Each kernel exposes its assembly text through a `*_source` builder so
//! the same program the tracer executes can also be assembled and handed
//! to static analysis (`bpred-cfa`) — the trace and the CFG provably
//! come from one artefact.

use bpred_trace::Trace;

use crate::asm::assemble;
use crate::machine::{BranchObservation, Machine};

/// Builds and runs a kernel, returning its branch trace.
fn run_kernel(name: &str, source: &str, memory_words: usize, max_steps: u64) -> Trace {
    run_kernel_observed(name, source, memory_words, max_steps, &mut |_| {})
}

/// Like [`run_kernel`], additionally streaming every conditional branch
/// (with its observed operand values) to `observe` — the dynamic ground
/// truth the `cfa/absint` soundness audit compares against.
fn run_kernel_observed(
    name: &str,
    source: &str,
    memory_words: usize,
    max_steps: u64,
    observe: &mut dyn FnMut(&BranchObservation),
) -> Trace {
    let program =
        assemble(source).unwrap_or_else(|e| panic!("kernel `{name}` failed to assemble: {e}"));
    let mut machine = Machine::with_memory(program, memory_words);
    let mut trace = Trace::new(name);
    machine
        .run_observed(max_steps, &mut trace, observe)
        .unwrap_or_else(|e| panic!("kernel `{name}` failed to run: {e}"));
    trace
}

/// Assembly text of the [`bubble_sort`] kernel.
///
/// # Panics
///
/// Panics if `n` is 0 or too large for the kernel's memory (`n > 4000`).
#[must_use]
pub fn bubble_sort_source(n: usize) -> String {
    assert!(
        (1..=4000).contains(&n),
        "bubble_sort supports 1..=4000 elements, got {n}"
    );
    format!(
        r"
        ; r1 = n, r2 = i, r3 = j, r4/r5 = elements, r6 = addr
            li   r1, {n}
            li   r2, 0
        fill:                        ; a[i] = n - i  (descending)
            sub  r4, r1, r2
            sw   r4, (r2)
            addi r2, r2, 1
            blt  r2, r1, fill
            li   r2, 0
        outer:
            li   r3, 0
            sub  r7, r1, r2          ; limit = n - i - 1
            addi r7, r7, -1
        inner:
            lw   r4, (r3)
            lw   r5, 1(r3)
            ble  r4, r5, noswap      ; in order?
            sw   r5, (r3)            ; swap
            sw   r4, 1(r3)
        noswap:
            addi r3, r3, 1
            blt  r3, r7, inner
            addi r2, r2, 1
            sub  r8, r1, r2
            addi r8, r8, -1
            bgt  r8, r0, outer
            halt
        "
    )
}

/// Bubble-sorts `n` words of a worst-case (descending) array.
///
/// Branch profile: a strongly taken inner-loop branch, a swap branch that
/// starts 100% taken and decays, and loop-exit branches.
///
/// # Panics
///
/// Panics if `n` is 0 or too large for the kernel's memory (`n > 4000`).
#[must_use]
pub fn bubble_sort(n: usize) -> Trace {
    let source = bubble_sort_source(n);
    run_kernel("sim-bubble-sort", &source, n + 64, 200_000_000)
}

/// [`bubble_sort`], streaming per-branch operand observations.
///
/// # Panics
///
/// See [`bubble_sort`].
pub fn bubble_sort_observed(n: usize, observe: &mut dyn FnMut(&BranchObservation)) -> Trace {
    let source = bubble_sort_source(n);
    run_kernel_observed("sim-bubble-sort", &source, n + 64, 200_000_000, observe)
}

/// Assembly text of the [`binary_search`] kernel.
///
/// # Panics
///
/// Panics if `n < 2` or `n > 100_000`.
#[must_use]
pub fn binary_search_source(n: usize, queries: usize) -> String {
    assert!(
        (2..=100_000).contains(&n),
        "binary_search needs 2..=100000 elements, got {n}"
    );
    format!(
        r"
        ; a[i] = 2*i ; probe odd and even keys pseudo-randomly
            li   r1, {n}
            li   r2, 0
        fill:
            add  r3, r2, r2
            sw   r3, (r2)
            addi r2, r2, 1
            blt  r2, r1, fill

            li   r10, {queries}      ; remaining queries
            li   r11, 88172645       ; xorshift state
        query:
            ; xorshift step
            li   r12, 13
            sll  r13, r11, r12
            xor  r11, r11, r13
            li   r12, 7
            srl  r13, r11, r12
            xor  r11, r11, r13
            li   r12, 17
            sll  r13, r11, r12
            xor  r11, r11, r13
            ; key = state mod 2n, kept non-negative
            add  r14, r1, r1
            rem  r15, r11, r14
            blt  r15, r0, fixup
            j    search
        fixup:
            add  r15, r15, r14
        search:
            li   r4, 0               ; lo
            mv   r5, r1              ; hi (exclusive)
        bsloop:
            bge  r4, r5, done        ; empty range?
            add  r6, r4, r5
            li   r7, 2
            div  r6, r6, r7          ; mid
            lw   r8, (r6)
            beq  r8, r15, done       ; found
            blt  r8, r15, goright
            mv   r5, r6              ; hi = mid
            j    bsloop
        goright:
            addi r4, r6, 1           ; lo = mid + 1
            j    bsloop
        done:
            addi r10, r10, -1
            bgt  r10, r0, query
            halt
        "
    )
}

/// Repeated binary search over a sorted array: `queries` probes into `n`
/// elements, with a pseudo-random key sequence generated in-register.
///
/// Branch profile: data-dependent compare branches near 50/50 (hard for
/// bimodal, partly learnable with history), plus biased loop branches.
///
/// # Panics
///
/// Panics if `n < 2` or `n > 100_000`.
#[must_use]
pub fn binary_search(n: usize, queries: usize) -> Trace {
    let source = binary_search_source(n, queries);
    run_kernel("sim-binary-search", &source, n + 64, 500_000_000)
}

/// [`binary_search`], streaming per-branch operand observations.
///
/// # Panics
///
/// See [`binary_search`].
pub fn binary_search_observed(
    n: usize,
    queries: usize,
    observe: &mut dyn FnMut(&BranchObservation),
) -> Trace {
    let source = binary_search_source(n, queries);
    run_kernel_observed("sim-binary-search", &source, n + 64, 500_000_000, observe)
}

/// Assembly text of the [`sieve`] kernel.
///
/// # Panics
///
/// Panics if `n < 4` or `n > 500_000`.
#[must_use]
pub fn sieve_source(n: usize) -> String {
    assert!(
        (4..=500_000).contains(&n),
        "sieve supports 4..=500000, got {n}"
    );
    format!(
        r"
        ; mem[i] = 1 if composite
            li   r1, {n}
            li   r2, 2               ; candidate p
        outer:
            mul  r3, r2, r2
            bge  r3, r1, count       ; p*p >= n: done marking
            lw   r4, (r2)
            bne  r4, r0, next        ; already composite
            mv   r5, r3              ; j = p*p
        mark:
            li   r6, 1
            sw   r6, (r5)
            add  r5, r5, r2
            blt  r5, r1, mark
        next:
            addi r2, r2, 1
            j    outer
        count:
            li   r7, 0               ; prime count
            li   r2, 2
        cloop:
            lw   r4, (r2)
            bne  r4, r0, notprime
            addi r7, r7, 1
        notprime:
            addi r2, r2, 1
            blt  r2, r1, cloop
            sw   r7, (r0)            ; store count at word 0
            halt
        "
    )
}

/// Sieve of Eratosthenes up to `n`.
///
/// Branch profile: the composite-marking inner loop is strongly taken;
/// the "is prime?" test branch is weakly biased early and strongly biased
/// late.
///
/// # Panics
///
/// Panics if `n < 4` or `n > 500_000`.
#[must_use]
pub fn sieve(n: usize) -> Trace {
    let source = sieve_source(n);
    run_kernel("sim-sieve", &source, n + 64, 500_000_000)
}

/// [`sieve`], streaming per-branch operand observations.
///
/// # Panics
///
/// See [`sieve`].
pub fn sieve_observed(n: usize, observe: &mut dyn FnMut(&BranchObservation)) -> Trace {
    let source = sieve_source(n);
    run_kernel_observed("sim-sieve", &source, n + 64, 500_000_000, observe)
}

/// Assembly text of the [`string_search`] kernel.
///
/// # Panics
///
/// Panics if `text_len < 16` or `text_len > 200_000`.
#[must_use]
pub fn string_search_source(text_len: usize) -> String {
    assert!(
        (16..=200_000).contains(&text_len),
        "string_search supports 16..=200000 text bytes, got {text_len}"
    );
    format!(
        r"
        ; text[i] = i*i mod 4 ; pattern = [1, 0, 1] stored after text
            li   r1, {text_len}
            li   r2, 0
        fill:
            mul  r3, r2, r2
            li   r4, 4
            rem  r3, r3, r4
            sw   r3, (r2)
            addi r2, r2, 1
            blt  r2, r1, fill
            ; pattern at text_len..text_len+3
            li   r5, 1
            sw   r5, (r1)
            sw   r0, 1(r1)
            sw   r5, 2(r1)

            li   r10, 0              ; match count
            li   r2, 0               ; i
            addi r9, r1, -3          ; last start
        scan:
            li   r6, 0               ; k
        cmp:
            add  r7, r2, r6
            lw   r7, (r7)
            add  r8, r1, r6
            lw   r8, (r8)
            bne  r7, r8, nomatch
            addi r6, r6, 1
            li   r8, 3
            blt  r6, r8, cmp
            addi r10, r10, 1         ; full match
        nomatch:
            addi r2, r2, 1
            ble  r2, r9, scan
            sw   r10, (r0)
            halt
        "
    )
}

/// Naive substring search of a repetitive pattern in a synthetic text —
/// many near-miss partial matches, the classic mispredict generator.
///
/// # Panics
///
/// Panics if `text_len < 16` or `text_len > 200_000`.
#[must_use]
pub fn string_search(text_len: usize) -> Trace {
    let source = string_search_source(text_len);
    run_kernel("sim-string-search", &source, text_len + 64, 500_000_000)
}

/// Assembly text of the [`quicksort`] kernel.
///
/// # Panics
///
/// Panics if `n < 4` or `n > 50_000`.
#[must_use]
pub fn quicksort_source(n: usize) -> String {
    assert!(
        (4..=50_000).contains(&n),
        "quicksort supports 4..=50000 elements, got {n}"
    );
    // Memory layout: a[0..n] data; stack of (lo, hi) pairs after it.
    format!(
        r"
        ; fill a[i] with xorshift values (kept non-negative)
              li   r1, {n}
              li   r2, 0
              li   r11, 2463534242
        fill: li   r12, 13
              sll  r13, r11, r12
              xor  r11, r11, r13
              li   r12, 7
              srl  r13, r11, r12
              xor  r11, r11, r13
              li   r12, 17
              sll  r13, r11, r12
              xor  r11, r11, r13
              li   r14, 1048575
              and  r15, r11, r14
              sw   r15, (r2)
              addi r2, r2, 1
              blt  r2, r1, fill

        ; stack base at n (pairs of words); push (0, n-1)
              mv   r20, r1           ; stack pointer (word index)
              sw   r0, (r20)         ; lo = 0
              addi r21, r1, -1
              sw   r21, 1(r20)       ; hi = n-1
              addi r20, r20, 2
        mainloop:
              ble  r20, r1, done     ; stack empty?
              addi r20, r20, -2      ; pop
              lw   r2, (r20)         ; lo
              lw   r3, 1(r20)        ; hi
              bge  r2, r3, mainloop  ; trivial partition
              call partition         ; returns pivot index in r4
              ; push (lo, p-1)
              sw   r2, (r20)
              addi r5, r4, -1
              sw   r5, 1(r20)
              addi r20, r20, 2
              ; push (p+1, hi)
              addi r5, r4, 1
              sw   r5, (r20)
              sw   r3, 1(r20)
              addi r20, r20, 2
              j    mainloop

        ; Lomuto partition of a[r2..=r3]; pivot a[r3]; result in r4
        partition:
              lw   r6, (r3)          ; pivot value
              mv   r4, r2            ; store index i
              mv   r7, r2            ; scan index j
        ploop:
              bge  r7, r3, pdone
              lw   r8, (r7)
              bgt  r8, r6, pskip     ; a[j] > pivot?
              ; swap a[i], a[j]
              lw   r9, (r4)
              sw   r8, (r4)
              sw   r9, (r7)
              addi r4, r4, 1
        pskip:
              addi r7, r7, 1
              j    ploop
        pdone:
              ; swap a[i], a[hi]
              lw   r9, (r4)
              lw   r10, (r3)
              sw   r10, (r4)
              sw   r9, (r3)
              ret
        done:
              halt
        "
    )
}

/// Iterative quicksort with an explicit stack over pseudo-random data.
///
/// Branch profile: data-dependent partition compares (roughly 50/50
/// against the pivot), stack-empty loop tests, and trivial-partition
/// cutoffs, with call/return events from the partition subroutine.
///
/// # Panics
///
/// Panics if `n < 4` or `n > 50_000`.
#[must_use]
pub fn quicksort(n: usize) -> Trace {
    let source = quicksort_source(n);
    run_kernel("sim-quicksort", &source, 2 * n + 64, 600_000_000)
}

/// [`quicksort`], streaming per-branch operand observations.
///
/// # Panics
///
/// See [`quicksort`].
pub fn quicksort_observed(n: usize, observe: &mut dyn FnMut(&BranchObservation)) -> Trace {
    let source = quicksort_source(n);
    run_kernel_observed("sim-quicksort", &source, 2 * n + 64, 600_000_000, observe)
}

/// Assembly text of the [`matmul`] kernel.
///
/// # Panics
///
/// Panics if `n < 2` or `n > 120`.
#[must_use]
pub fn matmul_source(n: usize) -> String {
    assert!((2..=120).contains(&n), "matmul supports 2..=120, got {n}");
    let (a_base, b_base, c_base) = (0, n * n, 2 * n * n);
    format!(
        r"
        ; A[i*n+j] = i+j, B = i-j+n; C = A*B
              li   r1, {n}
              li   r2, 0             ; i
        initi:li   r3, 0             ; j
        initj:mul  r4, r2, r1
              add  r4, r4, r3        ; i*n+j
              add  r5, r2, r3
              addi r6, r4, {a_base}
              sw   r5, (r6)
              sub  r5, r2, r3
              add  r5, r5, r1
              addi r6, r4, {b_base}
              sw   r5, (r6)
              addi r3, r3, 1
              blt  r3, r1, initj
              addi r2, r2, 1
              blt  r2, r1, initi

              li   r2, 0             ; i
        iloop:li   r3, 0             ; j
        jloop:li   r7, 0             ; acc
              li   r8, 0             ; k
        kloop:mul  r9, r2, r1
              add  r9, r9, r8
              addi r9, r9, {a_base}
              lw   r10, (r9)         ; A[i][k]
              mul  r9, r8, r1
              add  r9, r9, r3
              addi r9, r9, {b_base}
              lw   r11, (r9)         ; B[k][j]
              mul  r12, r10, r11
              add  r7, r7, r12
              addi r8, r8, 1
              blt  r8, r1, kloop
              mul  r9, r2, r1
              add  r9, r9, r3
              addi r9, r9, {c_base}
              sw   r7, (r9)
              addi r3, r3, 1
              blt  r3, r1, jloop
              addi r2, r2, 1
              blt  r2, r1, iloop
              halt
        "
    )
}

/// Dense matrix multiply `C = A * B` of `n x n` matrices: the
/// loop-nest workload whose branches are almost perfectly predictable
/// (three nested counted loops).
///
/// # Panics
///
/// Panics if `n < 2` or `n > 120`.
#[must_use]
pub fn matmul(n: usize) -> Trace {
    let source = matmul_source(n);
    run_kernel("sim-matmul", &source, 3 * n * n + 64, 600_000_000)
}

/// [`matmul`], streaming per-branch operand observations.
///
/// # Panics
///
/// See [`matmul`].
pub fn matmul_observed(n: usize, observe: &mut dyn FnMut(&BranchObservation)) -> Trace {
    let source = matmul_source(n);
    run_kernel_observed("sim-matmul", &source, 3 * n * n + 64, 600_000_000, observe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bubble_sort_sorts() {
        // Validate through the machine state by re-running manually.
        let t = bubble_sort(30);
        assert!(t.conditional().count() > 400, "O(n^2) branches expected");
        // The swap branch (ble ... noswap) is never taken on a descending
        // input during the first pass, so both outcomes must appear.
        assert!(t.conditional().any(|r| r.taken));
        assert!(t.conditional().any(|r| !r.taken));
    }

    #[test]
    fn sieve_counts_primes_correctly() {
        let program = assemble_and_count(100);
        assert_eq!(program, 25, "there are 25 primes below 100");
    }

    fn assemble_and_count(n: usize) -> i64 {
        // Re-run the sieve kernel and read the prime count from memory.
        let source_trace = sieve(n);
        assert!(!source_trace.is_empty());
        // Independent check: rebuild from the shared source builder and
        // inspect memory.
        let program = crate::asm::assemble(&sieve_source(n)).unwrap();
        let mut m = Machine::with_memory(program, n + 64);
        m.run(10_000_000).unwrap();
        m.memory_word(0).unwrap()
    }

    #[test]
    fn binary_search_terminates_and_branches_are_mixed() {
        let t = binary_search(256, 200);
        let stats = t.stats();
        assert!(stats.dynamic_conditional > 1000);
        // The compare branches must not be uniformly biased.
        assert!(stats.taken_rate() > 0.2 && stats.taken_rate() < 0.95);
    }

    #[test]
    fn string_search_finds_periodic_pattern() {
        // text[i] = i^2 mod 4 cycles 0,1,0,1 for odd/even i; pattern 1,0,1
        // occurs regularly, so matches and near-misses both appear.
        let t = string_search(512);
        assert!(t.conditional().count() > 900);
    }

    #[test]
    fn kernels_are_deterministic() {
        assert_eq!(bubble_sort(20), bubble_sort(20));
        assert_eq!(binary_search(64, 50), binary_search(64, 50));
        assert_eq!(quicksort(100), quicksort(100));
    }

    #[test]
    fn every_source_builder_assembles() {
        for (name, source) in [
            ("bubble-sort", bubble_sort_source(16)),
            ("binary-search", binary_search_source(16, 8)),
            ("sieve", sieve_source(64)),
            ("string-search", string_search_source(64)),
            ("quicksort", quicksort_source(32)),
            ("matmul", matmul_source(4)),
        ] {
            let program = crate::asm::assemble(&source)
                .unwrap_or_else(|e| panic!("{name} source does not assemble: {e}"));
            assert!(!program.instructions.is_empty(), "{name}");
        }
    }

    #[test]
    fn quicksort_traces_calls_and_balanced_compares() {
        let n = 200;
        let trace = quicksort(n);
        assert!(trace.conditional().count() > 1000);
        assert!(
            trace
                .iter()
                .any(|r| r.kind == bpred_trace::BranchKind::Call),
            "partition calls must be traced"
        );
        assert!(
            trace
                .iter()
                .any(|r| r.kind == bpred_trace::BranchKind::Return),
            "partition returns must be traced"
        );
        // The partition compare must be roughly balanced on random data.
        let stats = trace.stats();
        assert!(
            stats.taken_rate() > 0.15 && stats.taken_rate() < 0.9,
            "taken rate {}",
            stats.taken_rate()
        );
    }

    #[test]
    fn matmul_is_loop_dominated() {
        let t = matmul(12);
        let stats = t.stats();
        // Counted loops: almost all conditional branches are the
        // backward loop tests, strongly taken.
        assert!(
            stats.strongly_biased_fraction() > 0.9,
            "{}",
            stats.strongly_biased_fraction()
        );
        assert!(stats.dynamic_conditional > 1_000);
    }

    #[test]
    fn kernel_traces_carry_names() {
        assert_eq!(sieve(50).name(), "sim-sieve");
        assert_eq!(bubble_sort(10).name(), "sim-bubble-sort");
    }
}
