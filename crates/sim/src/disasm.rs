//! Disassembly: renders a [`Program`] back to assembler-accepted text.
//!
//! The output round-trips through [`assemble`](crate::assemble), which
//! the tests verify — a cheap, strong check on both the assembler and
//! the instruction model.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::isa::{Instruction, Program};

/// Renders one instruction, with branch/jump targets as `L<index>`.
fn render(instr: &Instruction, out: &mut String) {
    match instr {
        Instruction::Alu { op, rd, rs, rt } => {
            let _ = write!(out, "{} {rd}, {rs}, {rt}", op.mnemonic());
        }
        Instruction::Addi { rd, rs, imm } => {
            let _ = write!(out, "addi {rd}, {rs}, {imm}");
        }
        Instruction::Lw { rd, rs, imm } => {
            let _ = write!(out, "lw {rd}, {imm}({rs})");
        }
        Instruction::Sw { rt, rs, imm } => {
            let _ = write!(out, "sw {rt}, {imm}({rs})");
        }
        Instruction::Branch {
            cond,
            rs,
            rt,
            target,
        } => {
            let _ = write!(out, "{} {rs}, {rt}, L{target}", cond.mnemonic());
        }
        Instruction::Jal { rd, target } => {
            let _ = write!(out, "jal {rd}, L{target}");
        }
        Instruction::Jalr { rd, rs } => {
            let _ = write!(out, "jalr {rd}, {rs}");
        }
        Instruction::Halt => out.push_str("halt"),
        Instruction::Nop => out.push_str("nop"),
    }
}

/// Disassembles a program to assembler-accepted text. Labels `L<n>`
/// are emitted at every branch/jump target; the `.data` image is
/// re-emitted first.
#[must_use]
pub fn disassemble(program: &Program) -> String {
    let mut targets: BTreeSet<usize> = BTreeSet::new();
    for instr in &program.instructions {
        match instr {
            Instruction::Branch { target, .. } | Instruction::Jal { target, .. } => {
                targets.insert(*target);
            }
            _ => {}
        }
    }
    let mut out = String::new();
    if !program.data.is_empty() {
        out.push_str(".data");
        for w in &program.data {
            let _ = write!(out, " {w}");
        }
        out.push('\n');
    }
    for (i, instr) in program.instructions.iter().enumerate() {
        if targets.contains(&i) {
            let _ = write!(out, "L{i}: ");
        } else {
            out.push_str("    ");
        }
        render(instr, &mut out);
        out.push('\n');
    }
    // A trailing label (branch to one past the end) still needs a line.
    // It must be label-only: the assembler resolves a bare label to the
    // one-past-the-end index, whereas emitting an instruction here would
    // grow the program and break `assemble(disassemble(p)) == p`.
    if targets.contains(&program.instructions.len()) {
        let _ = writeln!(out, "L{}:", program.instructions.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    const KERNEL: &str = r"
        .data 5 10 15
              li   r1, 3
        loop: lw   r2, 0(r1)
              addi r1, r1, -1
              bne  r1, r0, loop
              call sub
              halt
        sub:  add  r3, r2, r2
              ret
        ";

    #[test]
    fn disassembly_reassembles_to_the_same_program() {
        let original = assemble(KERNEL).expect("assembles");
        let text = disassemble(&original);
        let again = assemble(&text).unwrap_or_else(|e| panic!("disassembly rejected: {e}\n{text}"));
        // `call`/`ret` are sugar for jal/jalr, so compare the decoded
        // instruction streams, which must be identical.
        assert_eq!(original, again, "round-trip changed the program:\n{text}");
    }

    #[test]
    fn data_image_is_preserved() {
        let p = assemble(".data 1 -2 3\nhalt").unwrap();
        let text = disassemble(&p);
        assert!(text.starts_with(".data 1 -2 3\n"), "{text}");
        assert_eq!(assemble(&text).unwrap().data, vec![1, -2, 3]);
    }

    #[test]
    fn labels_only_at_targets() {
        let p = assemble("nop\nx: nop\nbeq r0, r0, x").unwrap();
        let text = disassemble(&p);
        assert!(text.contains("L1: nop"), "{text}");
        assert!(text.contains("beq r0, r0, L1"), "{text}");
        assert!(
            !text.contains("L0"),
            "untargeted instruction must not get a label: {text}"
        );
    }

    #[test]
    fn trailing_target_roundtrips_without_growing_the_program() {
        // A branch to one past the end is a valid program (the assembler
        // resolves a trailing label to that index); disassembly used to
        // pad it with a `nop`, growing the program on reassembly.
        let p = assemble("beq r0, r0, end\nend:").unwrap();
        assert_eq!(p.instructions.len(), 1);
        let text = disassemble(&p);
        let again = assemble(&text).unwrap_or_else(|e| panic!("rejected: {e}\n{text}"));
        assert_eq!(p, again, "round-trip changed the program:\n{text}");
    }

    #[test]
    fn memory_operand_format_roundtrips() {
        let p = assemble("lw r1, -3(r2)\nsw r4, 0(r5)\nhalt").unwrap();
        let again = assemble(&disassemble(&p)).unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn executing_reassembled_program_matches() {
        use crate::machine::Machine;
        let original = assemble(KERNEL).expect("assembles");
        let roundtrip = assemble(&disassemble(&original)).expect("reassembles");
        let mut m1 = Machine::with_memory(original, 64);
        let mut m2 = Machine::with_memory(roundtrip, 64);
        let t1 = m1.run(10_000).expect("halts");
        let t2 = m2.run(10_000).expect("halts");
        assert_eq!(t1, t2, "behavioural equivalence");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::asm::assemble;
    use crate::isa::{AluOp, Cond, Instruction, Program, Reg};
    use proptest::prelude::*;

    fn reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg::new)
    }

    fn alu_op() -> impl Strategy<Value = AluOp> {
        prop::sample::select(vec![
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Slt,
        ])
    }

    fn cond() -> impl Strategy<Value = Cond> {
        prop::sample::select(vec![Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge])
    }

    /// An arbitrary instruction whose targets stay within `len`.
    fn instruction(len: usize) -> impl Strategy<Value = Instruction> {
        prop_oneof![
            (alu_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs, rt)| Instruction::Alu {
                op,
                rd,
                rs,
                rt
            }),
            (reg(), reg(), -1000i64..1000).prop_map(|(rd, rs, imm)| Instruction::Addi {
                rd,
                rs,
                imm
            }),
            (reg(), reg(), -64i64..64).prop_map(|(rd, rs, imm)| Instruction::Lw { rd, rs, imm }),
            (reg(), reg(), -64i64..64).prop_map(|(rt, rs, imm)| Instruction::Sw { rt, rs, imm }),
            (cond(), reg(), reg(), 0..len).prop_map(|(cond, rs, rt, target)| Instruction::Branch {
                cond,
                rs,
                rt,
                target
            }),
            (reg(), 0..len).prop_map(|(rd, target)| Instruction::Jal { rd, target }),
            (reg(), reg()).prop_map(|(rd, rs)| Instruction::Jalr { rd, rs }),
            Just(Instruction::Halt),
            Just(Instruction::Nop),
        ]
    }

    proptest! {
        /// Any well-formed program survives disassemble -> assemble
        /// exactly (targets, immediates, data image, everything).
        #[test]
        fn disassembly_roundtrips_arbitrary_programs(
            instrs in prop::collection::vec(instruction(24), 1..24),
            data in prop::collection::vec(-1000i64..1000, 0..8),
        ) {
            // Clamp targets to the actual length (strategy used an upper
            // bound before the final length was known). `len` itself is a
            // valid target — the assembler accepts a trailing label one
            // past the end — so the property covers that case too.
            let len = instrs.len();
            let instructions: Vec<Instruction> = instrs
                .into_iter()
                .map(|i| match i {
                    Instruction::Branch { cond, rs, rt, target } => {
                        Instruction::Branch { cond, rs, rt, target: target % (len + 1) }
                    }
                    Instruction::Jal { rd, target } => {
                        Instruction::Jal { rd, target: target % (len + 1) }
                    }
                    other => other,
                })
                .collect();
            let program = Program { instructions, data };
            let text = disassemble(&program);
            let again = assemble(&text)
                .unwrap_or_else(|e| panic!("disassembly must reassemble: {e}\n{text}"));
            prop_assert_eq!(program, again);
        }
    }
}
