//! The execution engine: runs a [`Program`] and records every executed
//! branch as a [`BranchRecord`].

use std::fmt;

use bpred_trace::{BranchKind, BranchRecord, Trace};

use crate::isa::{AluOp, Instruction, Program, Reg, INSTRUCTION_BYTES};

/// Default data-memory size in words.
pub const DEFAULT_MEMORY_WORDS: usize = 1 << 20;

/// Error raised during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The program ran for more than the allowed number of steps without
    /// reaching `halt`.
    StepLimit {
        /// The limit that was exceeded.
        limit: u64,
    },
    /// Control transferred outside the text segment.
    BadPc {
        /// The offending byte PC.
        pc: u64,
    },
    /// A load or store addressed memory out of range.
    BadAddress {
        /// The offending word address.
        address: i64,
        /// PC of the faulting instruction.
        pc: u64,
    },
    /// Division or remainder by zero.
    DivideByZero {
        /// PC of the faulting instruction.
        pc: u64,
    },
    /// A taken conditional branch targeted an instruction outside the
    /// program. Unlike [`RunError::BadPc`] (raised at the *next* fetch),
    /// this names the branch site itself, so the static analyzer in
    /// `bpred-cfa` can report the identical diagnostic for the same PC.
    BranchTargetOutOfBounds {
        /// PC of the branch instruction.
        pc: u64,
        /// The out-of-bounds target byte PC.
        target: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::StepLimit { limit } => {
                write!(f, "program exceeded the step limit of {limit}")
            }
            RunError::BadPc { pc } => write!(f, "control left the text segment at {pc:#x}"),
            RunError::BadAddress { address, pc } => {
                write!(f, "bad memory address {address} at {pc:#x}")
            }
            RunError::DivideByZero { pc } => write!(f, "division by zero at {pc:#x}"),
            RunError::BranchTargetOutOfBounds { pc, target } => write!(
                f,
                "conditional branch at {pc:#x} taken to out-of-bounds target {target:#x}"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// One executed conditional branch together with the operand values the
/// interpreter compared — the dynamic ground truth that `bpred-cfa`'s
/// abstract per-site value sets and taken-probability bounds are audited
/// against in `repro verify`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchObservation {
    /// Instruction index of the branch.
    pub index: usize,
    /// Byte PC of the branch.
    pub pc: u64,
    /// Observed value of the branch's `rs` operand.
    pub rs: i64,
    /// Observed value of the branch's `rt` operand.
    pub rt: i64,
    /// Whether the branch was taken.
    pub taken: bool,
}

/// A machine instance: registers, data memory, and a program.
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    regs: [i64; 32],
    memory: Vec<i64>,
    pc_index: usize,
    steps: u64,
}

impl Machine {
    /// Creates a machine with the default memory size; the program's
    /// `.data` image is copied to the bottom of memory.
    #[must_use]
    pub fn new(program: Program) -> Self {
        Self::with_memory(program, DEFAULT_MEMORY_WORDS)
    }

    /// Creates a machine with an explicit memory size in words.
    ///
    /// # Panics
    ///
    /// Panics if the program's data image does not fit in `words`.
    #[must_use]
    pub fn with_memory(program: Program, words: usize) -> Self {
        assert!(
            program.data.len() <= words,
            "data image ({} words) exceeds memory ({} words)",
            program.data.len(),
            words
        );
        let mut memory = vec![0i64; words];
        memory[..program.data.len()].copy_from_slice(&program.data);
        Self {
            program,
            regs: [0; 32],
            memory,
            pc_index: 0,
            steps: 0,
        }
    }

    /// Reads a register (r0 always reads 0).
    #[must_use]
    pub fn reg(&self, r: Reg) -> i64 {
        if r == Reg::ZERO {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (writes to r0 are ignored).
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        if r != Reg::ZERO {
            self.regs[r.index()] = value;
        }
    }

    /// Reads a data-memory word.
    #[must_use]
    pub fn memory_word(&self, address: usize) -> Option<i64> {
        self.memory.get(address).copied()
    }

    /// Instructions executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs until `halt`, appending branch events to `trace`.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] on step-limit exhaustion, wild control
    /// transfer, bad memory access, or division by zero.
    pub fn run_into(&mut self, max_steps: u64, trace: &mut Trace) -> Result<(), RunError> {
        self.run_observed(max_steps, trace, &mut |_| {})
    }

    /// Runs until `halt` like [`run_into`](Self::run_into), additionally
    /// streaming every recorded conditional branch — with the operand
    /// values the interpreter compared — to `observe`. The observations
    /// correspond one-to-one, in order, with the conditional records
    /// appended to `trace`.
    ///
    /// # Errors
    ///
    /// See [`run_into`](Self::run_into).
    pub fn run_observed(
        &mut self,
        max_steps: u64,
        trace: &mut Trace,
        observe: &mut dyn FnMut(&BranchObservation),
    ) -> Result<(), RunError> {
        let limit = self.steps.saturating_add(max_steps);
        loop {
            if self.steps >= limit {
                return Err(RunError::StepLimit { limit: max_steps });
            }
            let Some(&instr) = self.program.instructions.get(self.pc_index) else {
                return Err(RunError::BadPc {
                    pc: Program::pc_of(self.pc_index),
                });
            };
            let pc = Program::pc_of(self.pc_index);
            self.steps += 1;
            let mut next = self.pc_index + 1;
            match instr {
                Instruction::Alu { op, rd, rs, rt } => {
                    let (a, b) = (self.reg(rs), self.reg(rt));
                    let v = match op {
                        AluOp::Add => a.wrapping_add(b),
                        AluOp::Sub => a.wrapping_sub(b),
                        AluOp::Mul => a.wrapping_mul(b),
                        AluOp::Div => {
                            if b == 0 {
                                return Err(RunError::DivideByZero { pc });
                            }
                            a.wrapping_div(b)
                        }
                        AluOp::Rem => {
                            if b == 0 {
                                return Err(RunError::DivideByZero { pc });
                            }
                            a.wrapping_rem(b)
                        }
                        AluOp::And => a & b,
                        AluOp::Or => a | b,
                        AluOp::Xor => a ^ b,
                        AluOp::Sll => a.wrapping_shl((b & 63) as u32),
                        AluOp::Srl => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
                        AluOp::Slt => i64::from(a < b),
                    };
                    self.set_reg(rd, v);
                }
                Instruction::Addi { rd, rs, imm } => {
                    let v = self.reg(rs).wrapping_add(imm);
                    self.set_reg(rd, v);
                }
                Instruction::Lw { rd, rs, imm } => {
                    let addr = self.reg(rs).wrapping_add(imm);
                    let v = usize::try_from(addr)
                        .ok()
                        .and_then(|a| self.memory.get(a).copied())
                        .ok_or(RunError::BadAddress { address: addr, pc })?;
                    self.set_reg(rd, v);
                }
                Instruction::Sw { rt, rs, imm } => {
                    let addr = self.reg(rs).wrapping_add(imm);
                    let slot = usize::try_from(addr)
                        .ok()
                        .filter(|a| *a < self.memory.len())
                        .ok_or(RunError::BadAddress { address: addr, pc })?;
                    self.memory[slot] = self.reg(rt);
                }
                Instruction::Branch {
                    cond,
                    rs,
                    rt,
                    target,
                } => {
                    let (a, b) = (self.reg(rs), self.reg(rt));
                    let taken = cond.eval(a, b);
                    if taken && target >= self.program.instructions.len() {
                        return Err(RunError::BranchTargetOutOfBounds {
                            pc,
                            target: Program::pc_of(target),
                        });
                    }
                    observe(&BranchObservation {
                        index: self.pc_index,
                        pc,
                        rs: a,
                        rt: b,
                        taken,
                    });
                    trace.push(BranchRecord::conditional(pc, Program::pc_of(target), taken));
                    if taken {
                        next = target;
                    }
                }
                Instruction::Jal { rd, target } => {
                    let kind = if rd == Reg::RA {
                        BranchKind::Call
                    } else {
                        BranchKind::Unconditional
                    };
                    trace.push(BranchRecord {
                        pc,
                        target: Program::pc_of(target),
                        taken: true,
                        kind,
                    });
                    self.set_reg(rd, pc as i64 + INSTRUCTION_BYTES as i64);
                    next = target;
                }
                Instruction::Jalr { rd, rs } => {
                    let target_pc = self.reg(rs) as u64;
                    let kind = if rd == Reg::ZERO && rs == Reg::RA {
                        BranchKind::Return
                    } else {
                        BranchKind::Indirect
                    };
                    trace.push(BranchRecord {
                        pc,
                        target: target_pc,
                        taken: true,
                        kind,
                    });
                    self.set_reg(rd, pc as i64 + INSTRUCTION_BYTES as i64);
                    next = self
                        .program
                        .index_of(target_pc)
                        .ok_or(RunError::BadPc { pc: target_pc })?;
                }
                Instruction::Halt => return Ok(()),
                Instruction::Nop => {}
            }
            self.pc_index = next;
        }
    }

    /// Runs until `halt` and returns the branch trace, named after
    /// nothing (callers typically rename).
    ///
    /// # Errors
    ///
    /// See [`run_into`](Self::run_into).
    pub fn run(&mut self, max_steps: u64) -> Result<Trace, RunError> {
        let mut trace = Trace::new("sim");
        self.run_into(max_steps, &mut trace)?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::isa::TEXT_BASE;

    fn run(src: &str) -> (Machine, Trace) {
        let program = assemble(src).expect("test program assembles");
        let mut m = Machine::with_memory(program, 4096);
        let t = m.run(1_000_000).expect("test program halts");
        (m, t)
    }

    #[test]
    fn arithmetic_and_registers() {
        let (m, _) = run(r"
            li r1, 6
            li r2, 7
            mul r3, r1, r2
            sub r4, r3, r1
            div r5, r3, r2
            rem r6, r3, r4
            halt
            ");
        assert_eq!(m.reg(Reg::new(3)), 42);
        assert_eq!(m.reg(Reg::new(4)), 36);
        assert_eq!(m.reg(Reg::new(5)), 6);
        assert_eq!(m.reg(Reg::new(6)), 6);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (m, _) = run("addi r0, r0, 99\nhalt");
        assert_eq!(m.reg(Reg::ZERO), 0);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let (m, _) = run(r"
            li r1, 10       ; base address
            li r2, 1234
            sw r2, 5(r1)
            lw r3, 5(r1)
            halt
            ");
        assert_eq!(m.reg(Reg::new(3)), 1234);
        assert_eq!(m.memory_word(15), Some(1234));
    }

    #[test]
    fn data_image_is_loaded() {
        let (m, _) = run(".data 11 22 33\nli r1, 1\nlw r2, 1(r1)\nhalt");
        assert_eq!(m.reg(Reg::new(2)), 33);
    }

    #[test]
    fn loop_emits_expected_branch_outcomes() {
        let (_, t) = run(r"
                  li r1, 4
            loop: addi r1, r1, -1
                  bne r1, r0, loop
                  halt
            ");
        let conds: Vec<bool> = t.conditional().map(|r| r.taken).collect();
        assert_eq!(conds, [true, true, true, false]);
        // All from the same static branch, with a backward target.
        let pcs: Vec<u64> = t.conditional().map(|r| r.pc).collect();
        assert!(pcs.windows(2).all(|w| w[0] == w[1]));
        assert!(t.conditional().all(|r| r.is_backward()));
    }

    #[test]
    fn call_and_return_are_classified() {
        let (_, t) = run(r"
                  call fn
                  halt
            fn:   ret
            ");
        let kinds: Vec<BranchKind> = t.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, [BranchKind::Call, BranchKind::Return]);
    }

    #[test]
    fn plain_jump_is_unconditional() {
        let (_, t) = run("j end\nnop\nend: halt");
        assert_eq!(t.records()[0].kind, BranchKind::Unconditional);
        assert!(t.records()[0].taken);
    }

    #[test]
    fn step_limit_fires_on_infinite_loop() {
        let program = assemble("spin: j spin").unwrap();
        let mut m = Machine::with_memory(program, 64);
        let err = m.run(1000).unwrap_err();
        assert_eq!(err, RunError::StepLimit { limit: 1000 });
    }

    #[test]
    fn falling_off_the_end_is_a_bad_pc() {
        let program = assemble("nop").unwrap();
        let mut m = Machine::with_memory(program, 64);
        let err = m.run(10).unwrap_err();
        assert!(matches!(err, RunError::BadPc { .. }));
    }

    #[test]
    fn taken_branch_past_the_end_names_the_branch_site() {
        // The branch at index 0 (TEXT_BASE) jumps to the trailing label
        // at index 1 = one past the end; the error must carry the branch
        // site's PC, not the fetch PC the generic BadPc would report.
        let program = assemble("beq r0, r0, end\nend:").unwrap();
        let mut m = Machine::with_memory(program, 64);
        let err = m.run(10).unwrap_err();
        assert_eq!(
            err,
            RunError::BranchTargetOutOfBounds {
                pc: TEXT_BASE,
                target: TEXT_BASE + 4,
            }
        );
        assert!(err.to_string().contains("conditional branch at 0x400000"));
    }

    #[test]
    fn not_taken_branch_past_the_end_does_not_trap() {
        // The same out-of-bounds target is harmless while the branch
        // falls through.
        let program = assemble("bne r0, r1, end\nhalt\nend:").unwrap();
        let mut m = Machine::with_memory(program, 64);
        let t = m.run(10).expect("falls through to halt");
        assert_eq!(t.len(), 1);
        assert!(!t.records()[0].taken);
    }

    #[test]
    fn wild_store_is_a_bad_address() {
        let program = assemble("li r1, -5\nsw r1, (r1)\nhalt").unwrap();
        let mut m = Machine::with_memory(program, 64);
        let err = m.run(10).unwrap_err();
        assert!(matches!(err, RunError::BadAddress { address: -5, .. }));
    }

    #[test]
    fn divide_by_zero_traps() {
        let program = assemble("li r1, 3\ndiv r2, r1, r0\nhalt").unwrap();
        let mut m = Machine::with_memory(program, 64);
        let err = m.run(10).unwrap_err();
        assert!(matches!(err, RunError::DivideByZero { .. }));
    }

    #[test]
    fn branch_pcs_are_word_aligned_in_text_segment() {
        let (_, t) = run(r"
                  li r1, 3
            loop: addi r1, r1, -1
                  bne r1, r0, loop
                  halt
            ");
        for r in t.iter() {
            assert_eq!(r.pc % 4, 0);
            assert!(r.pc >= TEXT_BASE);
        }
    }

    #[test]
    fn observed_run_matches_the_trace_record_for_record() {
        let program = assemble(
            r"
                  li r1, 3
            loop: addi r1, r1, -1
                  bne r1, r0, loop
                  halt
            ",
        )
        .unwrap();
        let mut m = Machine::with_memory(program, 64);
        let mut seen = Vec::new();
        let mut trace = Trace::new("obs");
        m.run_observed(1000, &mut trace, &mut |o| seen.push(*o))
            .expect("halts");
        let records: Vec<_> = trace.conditional().collect();
        assert_eq!(seen.len(), records.len());
        for (o, r) in seen.iter().zip(&records) {
            assert_eq!(o.pc, r.pc);
            assert_eq!(o.taken, r.taken);
            assert_eq!(o.pc, Program::pc_of(o.index));
            assert_eq!(o.rt, 0, "bne compares against r0");
        }
        // The counter's observed values at the test: 2, 1, 0.
        let rs: Vec<i64> = seen.iter().map(|o| o.rs).collect();
        assert_eq!(rs, [2, 1, 0]);
    }

    #[test]
    fn shifts_are_logical() {
        let (m, _) = run(r"
            li r1, -1
            li r2, 60
            srl r3, r1, r2   ; logical shift of all-ones
            li r4, 1
            li r5, 3
            sll r6, r4, r5
            halt
            ");
        assert_eq!(m.reg(Reg::new(3)), 15);
        assert_eq!(m.reg(Reg::new(6)), 8);
    }
}
