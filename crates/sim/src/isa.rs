//! Instruction set definition for the trace-generation machine.
//!
//! A deliberately small 32-register RISC: enough to write real kernels
//! (sorts, searches, hashes) whose conditional branches exercise a
//! predictor the way compiled code does. Instructions occupy 4 bytes of
//! the simulated address space so branch PCs have realistic spacing.

use std::fmt;

/// Base byte address of the first instruction.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// Bytes per instruction.
pub const INSTRUCTION_BYTES: u64 = 4;

/// A register name `r0`..`r31`. `r0` reads as zero and ignores writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);
    /// The conventional return-address register (`r31`).
    pub const RA: Reg = Reg(31);

    /// Creates a register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "register index must be 0..=31, got {index}");
        Reg(index)
    }

    /// The register number.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Comparison condition of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
}

impl Cond {
    /// Evaluates the condition on two register values.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }

    /// The assembler mnemonic suffix (`beq` etc.).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
        }
    }
}

/// Binary ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (traps on divide-by-zero).
    Div,
    /// Signed remainder (traps on divide-by-zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left (by low 6 bits of the right operand).
    Sll,
    /// Logical shift right (by low 6 bits of the right operand).
    Srl,
    /// Set-if-less-than (signed): 1 or 0.
    Slt,
}

impl AluOp {
    /// The assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Slt => "slt",
        }
    }
}

/// One decoded instruction. Branch/jump targets are instruction indices
/// (resolved from labels by the assembler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// `op rd, rs, rt` — register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `addi rd, rs, imm` — add immediate.
    Addi {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
        /// Immediate addend.
        imm: i64,
    },
    /// `lw rd, imm(rs)` — load the word at word-address `rs + imm`.
    Lw {
        /// Destination.
        rd: Reg,
        /// Base address register.
        rs: Reg,
        /// Word offset.
        imm: i64,
    },
    /// `sw rt, imm(rs)` — store `rt` at word-address `rs + imm`.
    Sw {
        /// Value to store.
        rt: Reg,
        /// Base address register.
        rs: Reg,
        /// Word offset.
        imm: i64,
    },
    /// `b<cond> rs, rt, target` — conditional branch.
    Branch {
        /// Comparison.
        cond: Cond,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// `jal rd, target` — jump and link.
    Jal {
        /// Link register (PC of the next instruction is written here).
        rd: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// `jalr rd, rs` — indirect jump and link through `rs` (a byte PC).
    Jalr {
        /// Link register.
        rd: Reg,
        /// Register holding the target byte PC.
        rs: Reg,
    },
    /// Stop execution.
    Halt,
    /// Do nothing.
    Nop,
}

/// An assembled program: instructions plus optional initial memory image.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Instructions in layout order.
    pub instructions: Vec<Instruction>,
    /// Initial contents of data memory (word-addressed from 0).
    pub data: Vec<i64>,
}

impl Program {
    /// The byte PC of instruction `index`.
    #[must_use]
    pub fn pc_of(index: usize) -> u64 {
        TEXT_BASE + index as u64 * INSTRUCTION_BYTES
    }

    /// The instruction index of a byte PC, if it is in range and aligned.
    #[must_use]
    pub fn index_of(&self, pc: u64) -> Option<usize> {
        if pc < TEXT_BASE || !(pc - TEXT_BASE).is_multiple_of(INSTRUCTION_BYTES) {
            return None;
        }
        let idx = ((pc - TEXT_BASE) / INSTRUCTION_BYTES) as usize;
        (idx < self.instructions.len()).then_some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_bounds() {
        assert_eq!(Reg::new(31), Reg::RA);
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::new(7).to_string(), "r7");
    }

    #[test]
    #[should_panic(expected = "register index")]
    fn reg_rejects_32() {
        let _ = Reg::new(32);
    }

    #[test]
    fn cond_eval_truth_table() {
        assert!(Cond::Eq.eval(3, 3) && !Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4) && !Cond::Ne.eval(3, 3));
        assert!(Cond::Lt.eval(-1, 0) && !Cond::Lt.eval(0, -1));
        assert!(Cond::Ge.eval(0, 0) && !Cond::Ge.eval(-5, 0));
    }

    #[test]
    fn pc_mapping_roundtrips() {
        let p = Program {
            instructions: vec![Instruction::Nop; 4],
            data: vec![],
        };
        for i in 0..4 {
            assert_eq!(p.index_of(Program::pc_of(i)), Some(i));
        }
        assert_eq!(p.index_of(Program::pc_of(4)), None);
        assert_eq!(p.index_of(TEXT_BASE + 2), None, "unaligned");
        assert_eq!(p.index_of(0), None, "below text base");
    }
}
