//! A two-pass text assembler for the simulator ISA.
//!
//! Syntax, one instruction per line:
//!
//! ```text
//! ; comments run to end of line (also '#')
//! label:  add  r1, r2, r3        ; ALU: add sub mul div rem and or xor sll srl slt
//!         addi r1, r2, -5
//!         li   r1, 42             ; sugar for addi r1, r0, 42
//!         mv   r1, r2             ; sugar for addi r1, r2, 0
//!         lw   r1, 8(r2)          ; word-addressed loads/stores
//!         sw   r1, 8(r2)
//!         beq  r1, r2, label      ; beq bne blt bge, plus ble/bgt sugar
//!         j    label              ; sugar for jal r0, label
//!         jal  label              ; links r31
//!         jr   r31                ; sugar for jalr r0, r31
//!         call label              ; sugar for jal r31, label
//!         ret                     ; sugar for jalr r0, r31
//!         nop
//!         halt
//! .data 1 2 3                     ; appends words to initial data memory
//! ```
//!
//! Registers are `r0`..`r31` with aliases `zero` (r0) and `ra` (r31).

use std::collections::HashMap;
use std::fmt;

use crate::isa::{AluOp, Cond, Instruction, Program, Reg};

/// Error produced by [`assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line of the error.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn parse_reg(token: &str, line: usize) -> Result<Reg, AsmError> {
    let t = token.trim();
    match t {
        "zero" => return Ok(Reg::ZERO),
        "ra" => return Ok(Reg::RA),
        _ => {}
    }
    let idx = t
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|n| *n < 32)
        .ok_or_else(|| AsmError::new(line, format!("`{t}` is not a register")))?;
    Ok(Reg::new(idx))
}

fn parse_imm(token: &str, line: usize) -> Result<i64, AsmError> {
    let t = token.trim();
    let parsed = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = t.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        t.parse::<i64>().ok()
    };
    parsed.ok_or_else(|| AsmError::new(line, format!("`{t}` is not an immediate")))
}

/// Parses `off(reg)` memory operands.
fn parse_mem(token: &str, line: usize) -> Result<(i64, Reg), AsmError> {
    let t = token.trim();
    let open = t
        .find('(')
        .ok_or_else(|| AsmError::new(line, format!("`{t}` is not an off(reg) operand")))?;
    if !t.ends_with(')') {
        return Err(AsmError::new(line, format!("`{t}` is missing `)`")));
    }
    let off = if open == 0 {
        0
    } else {
        parse_imm(&t[..open], line)?
    };
    let reg = parse_reg(&t[open + 1..t.len() - 1], line)?;
    Ok((off, reg))
}

/// Unresolved instruction: branch/jump targets still carry label names.
enum Draft {
    Ready(Instruction),
    Branch {
        cond: Cond,
        rs: Reg,
        rt: Reg,
        label: String,
    },
    Jal {
        rd: Reg,
        label: String,
    },
}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] with a line number for syntax errors,
/// unknown mnemonics or registers, duplicate labels, and undefined
/// label references.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut drafts: Vec<(usize, Draft)> = Vec::new();
    let mut data: Vec<i64> = Vec::new();

    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let mut line = raw;
        if let Some(pos) = line.find([';', '#']) {
            line = &line[..pos];
        }
        let mut line = line.trim();

        // Labels (possibly several) before the instruction.
        while let Some(colon) = line.find(':') {
            let label = line[..colon].trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                return Err(AsmError::new(line_no, format!("bad label `{label}`")));
            }
            if labels.insert(label.to_owned(), drafts.len()).is_some() {
                return Err(AsmError::new(line_no, format!("duplicate label `{label}`")));
            }
            line = line[colon + 1..].trim();
        }
        if line.is_empty() {
            continue;
        }

        if let Some(words) = line.strip_prefix(".data") {
            for w in words.split_whitespace() {
                data.push(parse_imm(w, line_no)?);
            }
            continue;
        }

        let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (line, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let expect = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(AsmError::new(
                    line_no,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };

        let alu = |op: AluOp, ops: &[&str]| -> Result<Draft, AsmError> {
            Ok(Draft::Ready(Instruction::Alu {
                op,
                rd: parse_reg(ops[0], line_no)?,
                rs: parse_reg(ops[1], line_no)?,
                rt: parse_reg(ops[2], line_no)?,
            }))
        };
        let branch = |cond: Cond, ops: &[&str], swap: bool| -> Result<Draft, AsmError> {
            let (a, b) = if swap {
                (ops[1], ops[0])
            } else {
                (ops[0], ops[1])
            };
            Ok(Draft::Branch {
                cond,
                rs: parse_reg(a, line_no)?,
                rt: parse_reg(b, line_no)?,
                label: ops[2].to_owned(),
            })
        };

        let draft = match mnemonic {
            "add" | "sub" | "mul" | "div" | "rem" | "and" | "or" | "xor" | "sll" | "srl"
            | "slt" => {
                expect(3)?;
                let op = match mnemonic {
                    "add" => AluOp::Add,
                    "sub" => AluOp::Sub,
                    "mul" => AluOp::Mul,
                    "div" => AluOp::Div,
                    "rem" => AluOp::Rem,
                    "and" => AluOp::And,
                    "or" => AluOp::Or,
                    "xor" => AluOp::Xor,
                    "sll" => AluOp::Sll,
                    "srl" => AluOp::Srl,
                    _ => AluOp::Slt,
                };
                alu(op, &ops)?
            }
            "addi" => {
                expect(3)?;
                Draft::Ready(Instruction::Addi {
                    rd: parse_reg(ops[0], line_no)?,
                    rs: parse_reg(ops[1], line_no)?,
                    imm: parse_imm(ops[2], line_no)?,
                })
            }
            "li" => {
                expect(2)?;
                Draft::Ready(Instruction::Addi {
                    rd: parse_reg(ops[0], line_no)?,
                    rs: Reg::ZERO,
                    imm: parse_imm(ops[1], line_no)?,
                })
            }
            "mv" => {
                expect(2)?;
                Draft::Ready(Instruction::Addi {
                    rd: parse_reg(ops[0], line_no)?,
                    rs: parse_reg(ops[1], line_no)?,
                    imm: 0,
                })
            }
            "lw" => {
                expect(2)?;
                let (imm, rs) = parse_mem(ops[1], line_no)?;
                Draft::Ready(Instruction::Lw {
                    rd: parse_reg(ops[0], line_no)?,
                    rs,
                    imm,
                })
            }
            "sw" => {
                expect(2)?;
                let (imm, rs) = parse_mem(ops[1], line_no)?;
                Draft::Ready(Instruction::Sw {
                    rt: parse_reg(ops[0], line_no)?,
                    rs,
                    imm,
                })
            }
            "beq" => {
                expect(3)?;
                branch(Cond::Eq, &ops, false)?
            }
            "bne" => {
                expect(3)?;
                branch(Cond::Ne, &ops, false)?
            }
            "blt" => {
                expect(3)?;
                branch(Cond::Lt, &ops, false)?
            }
            "bge" => {
                expect(3)?;
                branch(Cond::Ge, &ops, false)?
            }
            // ble a,b == bge b,a ; bgt a,b == blt b,a
            "ble" => {
                expect(3)?;
                branch(Cond::Ge, &ops, true)?
            }
            "bgt" => {
                expect(3)?;
                branch(Cond::Lt, &ops, true)?
            }
            "j" => {
                expect(1)?;
                Draft::Jal {
                    rd: Reg::ZERO,
                    label: ops[0].to_owned(),
                }
            }
            "jal" => match ops.len() {
                1 => Draft::Jal {
                    rd: Reg::RA,
                    label: ops[0].to_owned(),
                },
                2 => Draft::Jal {
                    rd: parse_reg(ops[0], line_no)?,
                    label: ops[1].to_owned(),
                },
                n => {
                    return Err(AsmError::new(
                        line_no,
                        format!("`jal` expects 1 or 2 operands, got {n}"),
                    ))
                }
            },
            "call" => {
                expect(1)?;
                Draft::Jal {
                    rd: Reg::RA,
                    label: ops[0].to_owned(),
                }
            }
            "jalr" => {
                expect(2)?;
                Draft::Ready(Instruction::Jalr {
                    rd: parse_reg(ops[0], line_no)?,
                    rs: parse_reg(ops[1], line_no)?,
                })
            }
            "jr" => {
                expect(1)?;
                Draft::Ready(Instruction::Jalr {
                    rd: Reg::ZERO,
                    rs: parse_reg(ops[0], line_no)?,
                })
            }
            "ret" => {
                expect(0)?;
                Draft::Ready(Instruction::Jalr {
                    rd: Reg::ZERO,
                    rs: Reg::RA,
                })
            }
            "nop" => {
                expect(0)?;
                Draft::Ready(Instruction::Nop)
            }
            "halt" => {
                expect(0)?;
                Draft::Ready(Instruction::Halt)
            }
            other => {
                return Err(AsmError::new(
                    line_no,
                    format!("unknown mnemonic `{other}`"),
                ))
            }
        };
        drafts.push((line_no, draft));
    }

    // Pass 2: resolve labels.
    let mut instructions = Vec::with_capacity(drafts.len());
    for (line_no, draft) in drafts {
        let resolve = |label: &str| -> Result<usize, AsmError> {
            labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::new(line_no, format!("undefined label `{label}`")))
        };
        let instr = match draft {
            Draft::Ready(i) => i,
            Draft::Branch {
                cond,
                rs,
                rt,
                label,
            } => Instruction::Branch {
                cond,
                rs,
                rt,
                target: resolve(&label)?,
            },
            Draft::Jal { rd, label } => Instruction::Jal {
                rd,
                target: resolve(&label)?,
            },
        };
        instructions.push(instr);
    }
    Ok(Program { instructions, data })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_every_mnemonic() {
        let p = assemble(
            r"
            start: add r1, r2, r3
                   sub r1, r2, r3
                   mul r1, r2, r3
                   div r1, r2, r3
                   rem r1, r2, r3
                   and r1, r2, r3
                   or  r1, r2, r3
                   xor r1, r2, r3
                   sll r1, r2, r3
                   srl r1, r2, r3
                   slt r1, r2, r3
                   addi r1, r2, -4
                   li r1, 0x10
                   mv r1, r2
                   lw r1, 4(r2)
                   sw r1, (r2)
                   beq r1, r2, start
                   bne r1, r2, start
                   blt r1, r2, start
                   bge r1, r2, start
                   ble r1, r2, start
                   bgt r1, r2, start
                   j start
                   jal start
                   jal r5, start
                   call start
                   jalr r0, ra
                   jr ra
                   ret
                   nop
                   halt
            ",
        )
        .expect("all mnemonics assemble");
        assert_eq!(p.instructions.len(), 31);
    }

    #[test]
    fn resolves_forward_and_backward_labels() {
        let p = assemble(
            r"
            a: beq r0, r0, b
               nop
            b: beq r0, r0, a
            ",
        )
        .unwrap();
        assert_eq!(
            p.instructions[0],
            Instruction::Branch {
                cond: Cond::Eq,
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                target: 2
            }
        );
        assert_eq!(
            p.instructions[2],
            Instruction::Branch {
                cond: Cond::Eq,
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                target: 0
            }
        );
    }

    #[test]
    fn ble_and_bgt_swap_operands() {
        let p = assemble("x: ble r1, r2, x\n bgt r3, r4, x").unwrap();
        assert_eq!(
            p.instructions[0],
            Instruction::Branch {
                cond: Cond::Ge,
                rs: Reg::new(2),
                rt: Reg::new(1),
                target: 0
            }
        );
        assert_eq!(
            p.instructions[1],
            Instruction::Branch {
                cond: Cond::Lt,
                rs: Reg::new(4),
                rt: Reg::new(3),
                target: 0
            }
        );
    }

    #[test]
    fn data_directive_appends_words() {
        let p = assemble(".data 1 2 -3\n.data 0x10\nhalt").unwrap();
        assert_eq!(p.data, vec![1, 2, -3, 16]);
        assert_eq!(p.instructions.len(), 1);
    }

    #[test]
    fn register_aliases() {
        let p = assemble("addi ra, zero, 1").unwrap();
        assert_eq!(
            p.instructions[0],
            Instruction::Addi {
                rd: Reg::RA,
                rs: Reg::ZERO,
                imm: 1
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let p = assemble("; leading comment\n\n# another\n nop ; trailing\n").unwrap();
        assert_eq!(p.instructions, vec![Instruction::Nop]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nfrobnicate r1").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("unknown mnemonic"));

        let err = assemble("beq r1, r2, nowhere").unwrap_err();
        assert!(err.to_string().contains("undefined label"));

        let err = assemble("add r1, r2").unwrap_err();
        assert!(err.to_string().contains("expects 3 operands"));

        let err = assemble("a: nop\na: nop").unwrap_err();
        assert!(err.to_string().contains("duplicate label"));

        let err = assemble("li r99, 1").unwrap_err();
        assert!(err.to_string().contains("not a register"));

        let err = assemble("li r1, abc").unwrap_err();
        assert!(err.to_string().contains("not an immediate"));
    }

    #[test]
    fn negative_hex_immediates() {
        let p = assemble("li r1, -0x10").unwrap();
        assert_eq!(
            p.instructions[0],
            Instruction::Addi {
                rd: Reg::new(1),
                rs: Reg::ZERO,
                imm: -16
            }
        );
    }
}
