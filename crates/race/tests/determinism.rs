//! Satellite: scheduler determinism under replay.
//!
//! Property: for arbitrary small models, replaying a recorded schedule
//! byte-for-byte reproduces the same grant sequence, the same final
//! shared state, and the same failure (or clean pass). This is what
//! makes a checker hit actionable — the failing schedule IS the
//! reproduction.

use bpred_race::sched::{explore, replay, Options, Schedule};
use bpred_race::shim::{thread, AtomicUsize};
use bpred_race::sync::Ordering;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

const OBJECTS: usize = 3;

/// One straight-line operation of a generated model thread:
/// `(kind, object, value)` with kind 0 = load, 1 = store, 2 = fetch_add.
type Op = (u8, usize, usize);

/// A generated model: two threads of straight-line atomic ops over
/// three shared counters, plus an assertion threshold the main thread
/// checks after joining — small thresholds fail on some schedules,
/// which is exactly what the replay property needs to exercise.
#[derive(Debug, Clone)]
struct Program {
    threads: Vec<Vec<Op>>,
    limit: usize,
}

/// Runs `program` as a model closure, appending the final counter
/// snapshot of every *completed* execution to `trace`.
fn run_program(program: &Program, trace: &Arc<Mutex<Vec<[usize; OBJECTS]>>>) {
    let objects: Arc<Vec<AtomicUsize>> =
        Arc::new((0..OBJECTS).map(|_| AtomicUsize::new(0)).collect());
    let handles: Vec<_> = program
        .threads
        .iter()
        .map(|ops| {
            let objects = Arc::clone(&objects);
            let ops = ops.clone();
            thread::spawn(move || {
                for &(kind, obj, value) in &ops {
                    let target = &objects[obj % OBJECTS];
                    match kind % 3 {
                        0 => {
                            let _ = target.load(Ordering::Relaxed);
                        }
                        1 => target.store(value, Ordering::Relaxed),
                        _ => {
                            let _ = target.fetch_add(value, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().ok();
    }
    let mut snapshot = [0usize; OBJECTS];
    for (slot, object) in snapshot.iter_mut().zip(objects.iter()) {
        *slot = object.load(Ordering::Relaxed);
    }
    match trace.lock() {
        Ok(mut log) => log.push(snapshot),
        Err(_) => unreachable!("trace mutex never poisoned: pushes cannot panic"),
    }
    let total: usize = snapshot.iter().sum();
    assert!(
        total <= program.limit,
        "generated invariant violated: counter total {total} exceeds {}",
        program.limit
    );
}

fn opts() -> Options {
    Options {
        preemptions: 2,
        max_executions: 5_000,
        max_steps: 5_000,
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..3, 0usize..OBJECTS, 1usize..4)
}

proptest! {
    /// Replaying any recorded schedule (failing or passing) twice
    /// reproduces the identical grant sequence, final state, and
    /// outcome.
    #[test]
    fn replay_is_deterministic(
        ops_a in proptest::collection::vec(op_strategy(), 0..4),
        ops_b in proptest::collection::vec(op_strategy(), 0..4),
        limit in 0usize..12,
    ) {
        let program = Program { threads: vec![ops_a, ops_b], limit };

        let explore_trace = Arc::new(Mutex::new(Vec::new()));
        let exploration = {
            let program = program.clone();
            let trace = Arc::clone(&explore_trace);
            explore(move || run_program(&program, &trace), &opts())
        };

        // The schedule to replay: the failing one if the generated
        // invariant broke, else the last fully-explored schedule.
        let (schedule, expect_failure): (Schedule, bool) = match &exploration.failure {
            Some(failure) => (failure.schedule.clone(), true),
            None => (exploration.last_schedule.clone(), false),
        };

        let mut reference: Option<(Option<String>, Schedule, Option<[usize; OBJECTS]>)> = None;
        for _ in 0..2 {
            let trace = Arc::new(Mutex::new(Vec::new()));
            let outcome = {
                let program = program.clone();
                let trace = Arc::clone(&trace);
                replay(move || run_program(&program, &trace), &schedule)
            };
            let state = match trace.lock() {
                Ok(log) => log.last().copied(),
                Err(_) => None,
            };
            prop_assert_eq!(outcome.failure.is_some(), expect_failure);
            prop_assert_eq!(&outcome.schedule, &schedule);
            match &reference {
                None => reference = Some((outcome.failure, outcome.schedule, state)),
                Some((ref_failure, ref_schedule, ref_state)) => {
                    prop_assert_eq!(&outcome.failure, ref_failure);
                    prop_assert_eq!(&outcome.schedule, ref_schedule);
                    prop_assert_eq!(&state, ref_state);
                }
            }
        }
    }
}
