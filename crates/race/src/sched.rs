//! The cooperative scheduler: exhaustive schedule exploration with a
//! preemption bound, sleep-set pruning, and deterministic replay.
//!
//! # Execution model
//!
//! A *model* is a closure that builds its shared state from
//! [`crate::shim`] types and spawns threads through
//! [`crate::shim::thread`]. Every shared-memory operation (atomic
//! load/store/RMW, mutex lock/unlock, spawn, join) is a *yield point*:
//! the thread announces the operation it is about to perform and parks
//! until the scheduler grants it. Exactly one model thread runs at a
//! time, so every execution is sequentially consistent and the grant
//! sequence — the [`Schedule`] — fully determines the run.
//!
//! # Exploration
//!
//! [`explore`] re-executes the model under depth-first enumeration of
//! the grant choices. Three standard bounds keep small models tractable
//! in seconds:
//!
//! * **Preemption bound** ([`Options::preemptions`]): switching away
//!   from a thread that could have continued costs one preemption;
//!   schedules exceeding the bound are not explored. Switches forced by
//!   a block (mutex wait, join) or by thread exit are free. Bound 2
//!   catches the overwhelming majority of real interleaving bugs
//!   (Musuvathi & Qadeer's CHESS observation) while keeping the tree
//!   polynomial.
//! * **Sleep sets**: after fully exploring choice `t` at a state, `t`
//!   is put to sleep there; sibling subtrees re-explore it only after a
//!   *dependent* operation (same object, at least one write) wakes it.
//!   This prunes commuting permutations of independent operations
//!   without missing any reachable local state.
//! * **Execution / step caps** ([`Options::max_executions`],
//!   [`Options::max_steps`]): hard stops so a runaway model reports
//!   `complete: false` instead of hanging the verify run.
//!
//! # Failure and replay
//!
//! A model failure is a panic in any model thread (assertion macros
//! work unchanged) or a deadlock (no thread enabled). The failing
//! [`Schedule`] is captured and [`replay`] re-executes it
//! byte-for-byte, which is how a checker hit is turned into a
//! deterministic regression test.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, OnceLock};

/// Object id meaning "not registered with any execution" — operations
/// on such objects run uninstrumented (plain std behaviour).
pub(crate) const NO_OBJECT: usize = usize::MAX;

/// What a parked thread is about to do, for enabledness and
/// independence decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpDesc {
    /// The operation class.
    pub kind: OpKind,
    /// The shared object acted on ([`NO_OBJECT`] for thread-lifecycle
    /// operations).
    pub object: usize,
    /// Join target thread id (unused otherwise).
    pub target: u32,
}

/// Operation classes at yield points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Atomic read.
    Load,
    /// Atomic write.
    Store,
    /// Atomic read-modify-write.
    Rmw,
    /// Mutex acquisition (enabled only while the mutex is free).
    Lock,
    /// Mutex release.
    Unlock,
    /// Join on another thread (enabled only once it finished).
    Join,
    /// A thread was just spawned by this thread (continuation point).
    Spawn,
    /// A registered thread that has not yet executed its first
    /// operation.
    Start,
    /// An explicit scheduling point with no memory effect
    /// ([`crate::shim::thread::yield_now`]).
    Yield,
}

impl OpDesc {
    fn start() -> Self {
        OpDesc {
            kind: OpKind::Start,
            object: NO_OBJECT,
            target: 0,
        }
    }

    /// Whether two operations commute: reordering adjacent independent
    /// operations cannot change any thread's observations, which is
    /// what licenses sleep-set pruning. Conservative: anything without
    /// a registered object (spawn/join/start/yield) is dependent on
    /// everything.
    fn independent(&self, other: &OpDesc) -> bool {
        if self.object == NO_OBJECT || other.object == NO_OBJECT {
            return false;
        }
        if self.object != other.object {
            return true;
        }
        // Same object: only two pure reads commute.
        matches!(self.kind, OpKind::Load) && matches!(other.kind, OpKind::Load)
    }
}

/// A complete grant sequence: the thread id scheduled at every step of
/// one execution. Replaying it byte-for-byte reproduces the execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule(pub Vec<u32>);

impl Schedule {
    /// Number of grants in the schedule.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A model violation found during exploration.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The panic message (or deadlock description).
    pub message: String,
    /// The grant sequence that produced it; feed to [`replay`].
    pub schedule: Schedule,
}

/// The result of exhaustively exploring a model.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Executions run to completion or failure.
    pub executions: u64,
    /// Executions cut short by sleep-set pruning (their subtrees were
    /// already covered elsewhere).
    pub pruned: u64,
    /// The first violation found, if any (exploration stops at it).
    pub failure: Option<Failure>,
    /// Whether the state space was exhausted within the caps; `false`
    /// means the caps fired first.
    pub complete: bool,
    /// The grant sequence of the last execution that ran to completion
    /// (pruned partial executions excluded, so this always replays
    /// cleanly; used by determinism tests).
    pub last_schedule: Schedule,
}

/// The result of replaying one recorded schedule.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The failure the replay reproduced, if any.
    pub failure: Option<String>,
    /// The grant sequence actually executed.
    pub schedule: Schedule,
}

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct Options {
    /// Maximum preemptive context switches per schedule.
    pub preemptions: usize,
    /// Hard cap on executions before exploration reports
    /// `complete: false`.
    pub max_executions: u64,
    /// Hard cap on grants within one execution (livelock guard).
    pub max_steps: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            preemptions: preemptions_from_env(),
            max_executions: 1_000_000,
            max_steps: 100_000,
        }
    }
}

/// The preemption bound from `BPRED_RACE_PREEMPTIONS`, defaulting to 2
/// (the CHESS small-bound hypothesis; CI pins it explicitly).
#[must_use]
pub fn preemptions_from_env() -> usize {
    std::env::var("BPRED_RACE_PREEMPTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

// ---- thread-side runtime ----

/// Sentinel panic payload used to unwind model threads when an
/// execution is aborted (failure found elsewhere, or pruning); never
/// reported as a model failure.
pub(crate) struct AbortToken;

pub(crate) struct Shared {
    events: Sender<Event>,
    abort: AtomicBool,
    next_object: AtomicUsize,
    next_tid: AtomicUsize,
}

pub(crate) enum Event {
    /// `tid` parked, about to perform `op` when next granted.
    Yield { tid: u32, op: OpDesc },
    /// `parent` spawned `child_tid` (which is parked at its start) and
    /// parked itself.
    Spawn {
        parent: u32,
        child_tid: u32,
        go: Sender<()>,
    },
    /// `tid` exited; `panic` carries a real model failure message
    /// (aborted unwinds report `None`).
    Finished { tid: u32, panic: Option<String> },
}

pub(crate) struct Ctx {
    pub(crate) shared: Arc<Shared>,
    pub(crate) tid: u32,
    go: Receiver<()>,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Whether the calling thread is a model thread of an active execution.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Allocates a fresh object id if called from a model thread (ids are
/// deterministic along a schedule prefix because only one model thread
/// runs at a time); [`NO_OBJECT`] otherwise.
pub(crate) fn register_object() -> usize {
    CTX.with(|c| {
        c.borrow().as_ref().map_or(NO_OBJECT, |ctx| {
            ctx.shared.next_object.fetch_add(1, Ordering::SeqCst)
            // ordering-audited: scheduler-internal allocator; SeqCst keeps the checker itself trivially data-race-free
        })
    })
}

fn panic_abort() -> ! {
    std::panic::panic_any(AbortToken)
}

/// The yield point every shim operation passes through. No-op outside
/// a model thread, while unwinding (drop handlers during a panic must
/// not re-park), or for unregistered objects.
pub(crate) fn yield_op(kind: OpKind, object: usize, target: u32) {
    if object == NO_OBJECT && !matches!(kind, OpKind::Join | OpKind::Yield) {
        return;
    }
    if std::thread::panicking() {
        return;
    }
    let parked = CTX.with(|c| {
        let borrow = c.borrow();
        let Some(ctx) = borrow.as_ref() else {
            return Ok(());
        };
        if ctx.shared.abort.load(Ordering::SeqCst) {
            // ordering-audited: abort flag is scheduler-internal; SeqCst for checker simplicity
            return Err(());
        }
        let op = OpDesc {
            kind,
            object,
            target,
        };
        if ctx
            .shared
            .events
            .send(Event::Yield { tid: ctx.tid, op })
            .is_err()
        {
            return Err(());
        }
        if ctx.go.recv().is_err() {
            return Err(());
        }
        if ctx.shared.abort.load(Ordering::SeqCst) {
            // ordering-audited: see above; re-checked after wake so drained threads unwind immediately
            return Err(());
        }
        Ok(())
    });
    if parked.is_err() {
        panic_abort();
    }
}

/// Installs (once) a panic hook that silences expected model-thread
/// panics: exploration of a seeded mutant produces thousands of caught
/// assertion failures, and the default hook would spam stderr.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !in_model() {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model panicked with a non-string payload".to_owned()
    }
}

/// Runs `body` as model thread `tid`: installs the context, waits for
/// the first grant, catches panics, and reports `Finished`.
pub(crate) fn run_model_thread<T>(
    shared: Arc<Shared>,
    tid: u32,
    go: Receiver<()>,
    body: impl FnOnce() -> T,
) -> Result<T, Box<dyn std::any::Any + Send>> {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            shared: Arc::clone(&shared),
            tid,
            go,
        })
    });
    let first_grant = CTX.with(|c| c.borrow().as_ref().is_some_and(|ctx| ctx.go.recv().is_ok()));
    let result = if first_grant && !shared.abort.load(Ordering::SeqCst) {
        // ordering-audited: abort flag, scheduler-internal, SeqCst for simplicity
        catch_unwind(AssertUnwindSafe(body))
    } else {
        Err(Box::new(AbortToken) as Box<dyn std::any::Any + Send>)
    };
    let panic = match &result {
        Err(payload) if !payload.is::<AbortToken>() => Some(panic_message(payload.as_ref())),
        _ => None,
    };
    // Best-effort: the controller hanging up mid-drain is not an error.
    let _ = shared.events.send(Event::Finished { tid, panic });
    CTX.with(|c| *c.borrow_mut() = None);
    result
}

/// Spawn-side registration used by [`crate::shim::thread::spawn`]:
/// allocates the child tid and go-channel, and parks the parent after
/// announcing the spawn.
pub(crate) fn current_for_spawn() -> Option<(Arc<Shared>, u32)> {
    if std::thread::panicking() {
        return None;
    }
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| (Arc::clone(&ctx.shared), ctx.tid))
    })
}

pub(crate) fn alloc_tid(shared: &Shared) -> u32 {
    let raw = shared.next_tid.fetch_add(1, Ordering::SeqCst);
    // ordering-audited: scheduler-internal allocator, SeqCst for simplicity
    u32::try_from(raw).unwrap_or_else(|_| panic_abort())
}

pub(crate) fn make_go_channel() -> (Sender<()>, Receiver<()>) {
    channel()
}

/// Announces a spawn to the controller and parks the parent (spawn is
/// a yield point). Aborts the thread if the controller is gone.
pub(crate) fn announce_spawn(shared: &Arc<Shared>, parent: u32, child_tid: u32, go: Sender<()>) {
    if shared
        .events
        .send(Event::Spawn {
            parent,
            child_tid,
            go,
        })
        .is_err()
    {
        panic_abort();
    }
    let parked = CTX.with(|c| {
        c.borrow()
            .as_ref()
            .is_some_and(|ctx| ctx.go.recv().is_ok() && !ctx.shared.abort.load(Ordering::SeqCst))
        // ordering-audited: abort flag, scheduler-internal, SeqCst for simplicity
    });
    if !parked {
        panic_abort();
    }
}

// ---- controller ----

#[derive(Debug)]
enum Status {
    Parked(OpDesc),
    Running,
    Done,
}

struct ThreadRec {
    go: Sender<()>,
    status: Status,
}

/// One decision point with more than one explorable choice, kept on
/// the DFS stack across re-executions.
struct Frame {
    /// Enabled, bound-respecting, non-sleeping choices at this state.
    choices: Vec<(u32, OpDesc)>,
    /// Index into `choices` of the branch currently being explored;
    /// `choices[..chosen]` are fully explored (and hence asleep for
    /// the current branch).
    chosen: usize,
    /// Sleep set on entry to this state.
    base_sleep: Vec<(u32, OpDesc)>,
}

enum Mode<'a> {
    Explore {
        frames: &'a mut Vec<Frame>,
        opts: &'a Options,
    },
    Replay {
        schedule: &'a [u32],
    },
}

struct RunResult {
    schedule: Vec<u32>,
    failure: Option<String>,
    pruned: bool,
}

fn describe_blocked(threads: &[ThreadRec]) -> String {
    let blocked: Vec<String> = threads
        .iter()
        .enumerate()
        .filter_map(|(tid, t)| match &t.status {
            Status::Parked(op) => Some(format!("t{tid} at {:?}(obj {})", op.kind, op.object)),
            _ => None,
        })
        .collect();
    format!("deadlock: no enabled thread ({})", blocked.join(", "))
}

fn run_one<F>(model: &Arc<F>, mut mode: Mode) -> RunResult
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let (events_tx, events) = channel::<Event>();
    let shared = Arc::new(Shared {
        events: events_tx,
        abort: AtomicBool::new(false),
        next_object: AtomicUsize::new(0),
        next_tid: AtomicUsize::new(1),
    });
    let (go0, go0_rx) = channel();
    let thread0 = {
        let model = Arc::clone(model);
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("race-model".to_owned())
            .spawn(move || {
                let _ = run_model_thread(shared, 0, go0_rx, move || model());
            })
            .expect("OS refused to spawn the model thread") // panic-audited: resource exhaustion in the test environment, not a model behaviour
    };

    let mut threads = vec![ThreadRec {
        go: go0,
        status: Status::Parked(OpDesc::start()),
    }];
    let mut held: Vec<(usize, u32)> = Vec::new();
    let mut schedule: Vec<u32> = Vec::new();
    let mut sleep: Vec<(u32, OpDesc)> = Vec::new();
    let mut running: Option<u32> = None;
    let mut preemptions = 0usize;
    let mut frame_ix = 0usize;
    let mut failure: Option<String> = None;
    let mut pruned = false;

    loop {
        if threads.iter().all(|t| matches!(t.status, Status::Done)) {
            break;
        }
        // Enabled parked threads with their pending operations.
        let enabled: Vec<(u32, OpDesc)> = threads
            .iter()
            .enumerate()
            .filter_map(|(tid, t)| {
                let Status::Parked(op) = t.status else {
                    return None;
                };
                let ok = match op.kind {
                    OpKind::Lock => !held.iter().any(|&(m, _)| m == op.object),
                    OpKind::Join => {
                        let target = op.target;
                        threads
                            .get(target as usize) // cast-note: tids are sequential indices
                            .is_some_and(|t| matches!(t.status, Status::Done))
                    }
                    _ => true,
                };
                let tid = u32::try_from(tid).ok()?;
                ok.then_some((tid, op))
            })
            .collect();
        if enabled.is_empty() {
            failure = Some(describe_blocked(&threads));
            break;
        }

        let (chosen, chosen_op, next_sleep) = match &mut mode {
            Mode::Replay { schedule: tape } => {
                let Some(&tid) = tape.get(schedule.len()) else {
                    failure = Some(format!(
                        "replay diverged: schedule exhausted after {} grants with threads still live",
                        schedule.len()
                    ));
                    break;
                };
                let Some(&(_, op)) = enabled.iter().find(|&&(t, _)| t == tid) else {
                    failure = Some(format!(
                        "replay diverged: t{tid} not enabled at grant {}",
                        schedule.len()
                    ));
                    break;
                };
                (tid, op, Vec::new())
            }
            Mode::Explore { frames, opts } => {
                // Preemption filter: leaving an enabled `running` thread
                // costs one preemption; at the bound only it may go on.
                let at_bound = preemptions >= opts.preemptions;
                let running_enabled = running.is_some_and(|r| enabled.iter().any(|&(t, _)| t == r));
                let allowed: Vec<(u32, OpDesc)> = enabled
                    .iter()
                    .copied()
                    .filter(|&(t, _)| !(at_bound && running_enabled && Some(t) != running))
                    .collect();
                let candidates: Vec<(u32, OpDesc)> = allowed
                    .iter()
                    .copied()
                    .filter(|&(t, _)| !sleep.iter().any(|&(s, _)| s == t))
                    .collect();
                if candidates.is_empty() {
                    // Every enabled choice is asleep: this state's
                    // subtree was fully covered on a sibling branch.
                    pruned = true;
                    break;
                }
                if candidates.len() == 1 {
                    let (t, op) = candidates[0];
                    let next = sleep_after(&sleep, &[], op);
                    (t, op, next)
                } else if frame_ix < frames.len() {
                    // Re-executing a prefix decided on an earlier run.
                    let frame = &frames[frame_ix];
                    frame_ix += 1;
                    let (t, op) = frame.choices[frame.chosen];
                    let explored = &frame.choices[..frame.chosen];
                    let next = sleep_after(&frame.base_sleep, explored, op);
                    (t, op, next)
                } else {
                    // Fresh decision point: prefer continuing the
                    // running thread (costs no preemption), else the
                    // lowest thread id. The preferred choice is rotated
                    // to the front so DFS backtracking (`chosen + 1`)
                    // still visits every sibling.
                    let mut choices = candidates;
                    if let Some(pick) =
                        running.and_then(|r| choices.iter().position(|&(t, _)| t == r))
                    {
                        choices.swap(0, pick);
                    }
                    let (t, op) = choices[0];
                    let next = sleep_after(&sleep, &[], op);
                    frames.push(Frame {
                        choices,
                        chosen: 0,
                        base_sleep: sleep.clone(),
                    });
                    frame_ix += 1;
                    (t, op, next)
                }
            }
        };
        sleep = next_sleep;

        // A switch away from a thread that could have continued is a
        // preemption; switches forced by blocking or exit are free.
        if let Some(r) = running {
            if r != chosen && enabled.iter().any(|&(t, _)| t == r) {
                preemptions += 1;
            }
        }

        // The grant is where the operation "happens" for bookkeeping.
        match chosen_op.kind {
            OpKind::Lock => held.push((chosen_op.object, chosen)),
            OpKind::Unlock => {
                held.retain(|&(m, owner)| !(m == chosen_op.object && owner == chosen))
            }
            _ => {}
        }
        schedule.push(chosen);
        let max_steps = match &mode {
            Mode::Explore { opts, .. } => opts.max_steps,
            Mode::Replay { .. } => usize::MAX,
        };
        if schedule.len() > max_steps {
            failure = Some(format!("step bound exceeded ({max_steps}): livelock?"));
            break;
        }
        let grant_ok = {
            let rec = &mut threads[chosen as usize]; // cast-note: tids are sequential indices
            rec.status = Status::Running;
            rec.go.send(()).is_ok()
        };
        running = Some(chosen);
        if !grant_ok {
            failure = Some(format!("t{chosen} vanished while parked"));
            break;
        }

        // Wait for the granted thread to park, spawn, or finish.
        match events.recv() {
            Ok(Event::Yield { tid, op }) => {
                threads[tid as usize].status = Status::Parked(op); // cast-note: tids are sequential indices
            }
            Ok(Event::Spawn {
                parent,
                child_tid,
                go,
            }) => {
                threads[parent as usize].status = Status::Parked(OpDesc {
                    // cast-note: tids are sequential indices
                    kind: OpKind::Spawn,
                    object: NO_OBJECT,
                    target: child_tid,
                });
                debug_assert_eq!(child_tid as usize, threads.len());
                threads.push(ThreadRec {
                    go,
                    status: Status::Parked(OpDesc::start()),
                });
            }
            Ok(Event::Finished { tid, panic }) => {
                threads[tid as usize].status = Status::Done; // cast-note: tids are sequential indices
                if let Some(message) = panic {
                    failure = Some(message);
                    break;
                }
            }
            Err(_) => {
                failure = Some("model threads hung up unexpectedly".to_owned());
                break;
            }
        }
    }

    // Drain: wake every surviving thread into an abort unwind so the
    // next execution starts from a clean slate.
    shared.abort.store(true, Ordering::SeqCst);
    // ordering-audited: abort flag, scheduler-internal, SeqCst for simplicity
    loop {
        let mut live = false;
        for rec in &mut threads {
            match rec.status {
                Status::Parked(_) => {
                    let _ = rec.go.send(());
                    rec.status = Status::Running;
                    live = true;
                }
                Status::Running => live = true,
                Status::Done => {}
            }
        }
        if !live {
            break;
        }
        match events.recv() {
            Ok(Event::Finished { tid, .. }) => {
                threads[tid as usize].status = Status::Done; // cast-note: tids are sequential indices
            }
            Ok(Event::Yield { tid, .. }) => {
                threads[tid as usize].status = Status::Parked(OpDesc::start()); // cast-note: tids are sequential indices
            }
            Ok(Event::Spawn {
                parent,
                child_tid,
                go,
            }) => {
                threads[parent as usize].status = Status::Parked(OpDesc::start()); // cast-note: tids are sequential indices
                debug_assert_eq!(child_tid as usize, threads.len());
                threads.push(ThreadRec {
                    go,
                    status: Status::Parked(OpDesc::start()),
                });
            }
            Err(_) => break,
        }
    }
    let _ = thread0.join();

    RunResult {
        schedule,
        failure,
        pruned,
    }
}

/// The sleep set entering the state reached by granting `chosen_op`:
/// previously sleeping threads plus the already-explored siblings, with
/// everything dependent on the granted operation woken.
fn sleep_after(
    base: &[(u32, OpDesc)],
    explored: &[(u32, OpDesc)],
    chosen_op: OpDesc,
) -> Vec<(u32, OpDesc)> {
    base.iter()
        .chain(explored.iter())
        .copied()
        .filter(|(_, op)| op.independent(&chosen_op))
        .collect()
}

/// Exhaustively explores `model` under the given bounds, stopping at
/// the first failure. The model closure is re-run once per explored
/// schedule and must be deterministic apart from scheduling: build all
/// shared state inside the closure from [`crate::shim`] types.
pub fn explore<F>(model: F, opts: &Options) -> Exploration
where
    F: Fn() + Send + Sync + 'static,
{
    let model = Arc::new(model);
    let mut frames: Vec<Frame> = Vec::new();
    let mut executions = 0u64;
    let mut pruned = 0u64;
    // The first execution never prunes (the sleep set starts empty and
    // only explored siblings populate it), so this is always a real,
    // replayable schedule by the time any return path reads it.
    let mut last_schedule = Schedule::default();

    loop {
        let run = run_one(
            &model,
            Mode::Explore {
                frames: &mut frames,
                opts,
            },
        );
        executions += 1;
        if run.pruned {
            pruned += 1;
        } else {
            last_schedule = Schedule(run.schedule.clone());
        }
        let last_schedule = last_schedule.clone();
        if let Some(message) = run.failure {
            return Exploration {
                executions,
                pruned,
                failure: Some(Failure {
                    message,
                    schedule: Schedule(run.schedule),
                }),
                complete: false,
                last_schedule,
            };
        }
        if executions >= opts.max_executions {
            return Exploration {
                executions,
                pruned,
                failure: None,
                complete: false,
                last_schedule,
            };
        }
        // Backtrack: advance the deepest frame with an untried choice.
        let advanced = loop {
            let Some(frame) = frames.last_mut() else {
                break false;
            };
            if frame.chosen + 1 < frame.choices.len() {
                frame.chosen += 1;
                break true;
            }
            frames.pop();
        };
        if !advanced {
            return Exploration {
                executions,
                pruned,
                failure: None,
                complete: true,
                last_schedule,
            };
        }
    }
}

/// Replays one recorded schedule byte-for-byte: the same grants produce
/// the same operations, the same final state, and the same failure (or
/// clean pass). Reports a divergence failure if the schedule does not
/// fit the model.
pub fn replay<F>(model: F, schedule: &Schedule) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let model = Arc::new(model);
    let run = run_one(
        &model,
        Mode::Replay {
            schedule: &schedule.0,
        },
    );
    Outcome {
        failure: run.failure,
        schedule: Schedule(run.schedule),
    }
}
