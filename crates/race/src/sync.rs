//! The synchronization facade: the one import point for every shared
//! -state hot path in the workspace.
//!
//! Normal builds re-export the `std` types unchanged — zero cost, the
//! compiler sees exactly the code it saw before the facade existed.
//! Under `RUSTFLAGS="--cfg bpred_race"` the same names resolve to the
//! instrumented shims in [`crate::shim`], so the identical hot-path
//! source runs under the model checker's scheduler.
//!
//! The repo lint (`lint/sync`) denies direct `std::sync::atomic` /
//! `std::thread` / `std::sync::Mutex` use everywhere except this crate,
//! which is what keeps the seam airtight: code that compiles is code
//! the checker can schedule.

/// `Ordering` is shared verbatim: the shims accept it for signature
/// compatibility and execute `SeqCst` (the checker explores sequential
/// consistency), while normal builds pass it straight to std.
pub use std::sync::atomic::Ordering;

#[cfg(not(bpred_race))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize};

#[cfg(bpred_race)]
pub use crate::shim::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize};

#[cfg(bpred_race)]
pub use crate::shim::{Mutex, MutexGuard};

/// Poison-free mutex for normal builds: the hot paths treat a panicked
/// holder as recoverable (the protected state is repaired or
/// discarded by the caller), and the instrumented shim has no poison
/// concept, so the facade erases it on both sides.
#[cfg(not(bpred_race))]
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

#[cfg(not(bpred_race))]
impl<T> Mutex<T> {
    /// Creates a new mutex (const, like std).
    #[must_use]
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Guard type for the normal-build [`Mutex`].
#[cfg(not(bpred_race))]
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Thread facade: `spawn`/`scope`/`yield_now`/`available_parallelism`.
///
/// `scope` (and its `Scope`/`JoinHandle` types) stays the std version
/// on both sides of the cfg: scoped threads borrow from the parent
/// stack, which an instrumented spawn cannot support without `unsafe`
/// (this crate is `forbid(unsafe_code)`). Checked models follow the
/// loom convention instead — `Arc`-owned state with
/// [`crate::shim::thread::spawn`] — so nothing is lost: the *algorithms*
/// behind the scopes are modelled, while the facade keeps production
/// call sites compiling identically under `--cfg bpred_race`.
pub mod thread {
    pub use std::thread::{available_parallelism, scope, JoinHandle, Scope};

    #[cfg(not(bpred_race))]
    pub use std::thread::{spawn, yield_now};

    #[cfg(bpred_race)]
    pub use crate::shim::thread::{spawn, yield_now};
}
