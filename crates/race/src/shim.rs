//! Instrumented stand-ins for the `std::sync` / `std::thread` types
//! used by the codebase. API-compatible with the std originals (for
//! the subset the facade exposes) so the hot-path code compiles
//! unchanged under `--cfg bpred_race`.
//!
//! Every operation passes through [`crate::sched::yield_op`] before it
//! executes, which parks the thread until the scheduler grants it.
//! Because exactly one model thread runs at a time, the real operation
//! can then execute with plain `SeqCst` std atomics: exclusivity makes
//! the whole execution sequentially consistent regardless of the
//! `Ordering` the caller requested, which is exactly the memory model
//! the checker explores. The caller's `Ordering` argument is accepted
//! (signature compatibility) and deliberately ignored.
//!
//! Outside a model execution (no scheduler on this thread) every type
//! degrades to a plain std passthrough, so instrumented builds still
//! run their ordinary unit tests.

use crate::sched::{self, OpKind, NO_OBJECT};
use std::sync::atomic::Ordering;
use std::sync::OnceLock;

/// Lazily registers the object with the active execution on first
/// touch. `Atomic*::new` must stay `const` (the hot paths use
/// `static` initializers), so the id cannot be allocated at
/// construction time; a `OnceLock` allocates it at the first operation
/// instead. Statics therefore get [`NO_OBJECT`] when first touched
/// outside a model and stay uninstrumented — model state must be
/// built inside the model closure, which is the documented contract.
#[derive(Debug, Default)]
struct ObjectId(OnceLock<usize>);

impl ObjectId {
    const fn new() -> Self {
        ObjectId(OnceLock::new())
    }

    fn get(&self) -> usize {
        *self.0.get_or_init(sched::register_object)
    }
}

macro_rules! instrumented_atomic {
    ($name:ident, $inner:path, $prim:ty) => {
        /// Instrumented atomic: yields to the scheduler before every
        /// operation, then executes it for real under exclusivity.
        #[derive(Debug)]
        pub struct $name {
            value: $inner,
            id: ObjectId,
        }

        impl $name {
            /// Creates a new atomic (const, like std).
            #[must_use]
            pub const fn new(value: $prim) -> Self {
                Self {
                    value: <$inner>::new(value),
                    id: ObjectId::new(),
                }
            }

            /// Atomic load; the `Ordering` is accepted for signature
            /// compatibility and executed as `SeqCst`.
            pub fn load(&self, _order: Ordering) -> $prim {
                sched::yield_op(OpKind::Load, self.id.get(), 0);
                self.value.load(Ordering::SeqCst)
                // ordering-audited: shim executes under scheduler exclusivity; SeqCst realizes the sequentially-consistent model the checker explores
            }

            /// Atomic store; executed as `SeqCst` (see [`Self::load`]).
            pub fn store(&self, value: $prim, _order: Ordering) {
                sched::yield_op(OpKind::Store, self.id.get(), 0);
                self.value.store(value, Ordering::SeqCst);
                // ordering-audited: shim executes under scheduler exclusivity; SeqCst realizes the sequentially-consistent model the checker explores
            }

            /// Atomic add; executed as `SeqCst` (see [`Self::load`]).
            pub fn fetch_add(&self, value: $prim, _order: Ordering) -> $prim {
                sched::yield_op(OpKind::Rmw, self.id.get(), 0);
                self.value.fetch_add(value, Ordering::SeqCst)
                // ordering-audited: shim executes under scheduler exclusivity; SeqCst realizes the sequentially-consistent model the checker explores
            }

            /// Atomic subtract; executed as `SeqCst` (see [`Self::load`]).
            pub fn fetch_sub(&self, value: $prim, _order: Ordering) -> $prim {
                sched::yield_op(OpKind::Rmw, self.id.get(), 0);
                self.value.fetch_sub(value, Ordering::SeqCst)
                // ordering-audited: shim executes under scheduler exclusivity; SeqCst realizes the sequentially-consistent model the checker explores
            }

            /// Atomic swap; executed as `SeqCst` (see [`Self::load`]).
            pub fn swap(&self, value: $prim, _order: Ordering) -> $prim {
                sched::yield_op(OpKind::Rmw, self.id.get(), 0);
                self.value.swap(value, Ordering::SeqCst)
                // ordering-audited: shim executes under scheduler exclusivity; SeqCst realizes the sequentially-consistent model the checker explores
            }

            /// Atomic max; executed as `SeqCst` (see [`Self::load`]).
            pub fn fetch_max(&self, value: $prim, _order: Ordering) -> $prim {
                sched::yield_op(OpKind::Rmw, self.id.get(), 0);
                self.value.fetch_max(value, Ordering::SeqCst)
                // ordering-audited: shim executes under scheduler exclusivity; SeqCst realizes the sequentially-consistent model the checker explores
            }

            /// Atomic compare-exchange; executed as `SeqCst` (see
            /// [`Self::load`]).
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$prim, $prim> {
                sched::yield_op(OpKind::Rmw, self.id.get(), 0);
                self.value
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                // ordering-audited: shim executes under scheduler exclusivity; SeqCst realizes the sequentially-consistent model the checker explores
            }
        }
    };
}

instrumented_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
instrumented_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
instrumented_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);

/// Instrumented boolean atomic (separate because `fetch_add`/`fetch_max`
/// do not exist on `std`'s `AtomicBool`).
#[derive(Debug)]
pub struct AtomicBool {
    value: std::sync::atomic::AtomicBool,
    id: ObjectId,
}

impl AtomicBool {
    /// Creates a new atomic bool (const, like std).
    #[must_use]
    pub const fn new(value: bool) -> Self {
        AtomicBool {
            value: std::sync::atomic::AtomicBool::new(value),
            id: ObjectId::new(),
        }
    }

    /// Atomic load; the `Ordering` is accepted for signature
    /// compatibility and executed as `SeqCst`.
    pub fn load(&self, _order: Ordering) -> bool {
        sched::yield_op(OpKind::Load, self.id.get(), 0);
        self.value.load(Ordering::SeqCst)
        // ordering-audited: shim executes under scheduler exclusivity; SeqCst realizes the sequentially-consistent model the checker explores
    }

    /// Atomic store; executed as `SeqCst` (see [`Self::load`]).
    pub fn store(&self, value: bool, _order: Ordering) {
        sched::yield_op(OpKind::Store, self.id.get(), 0);
        self.value.store(value, Ordering::SeqCst);
        // ordering-audited: shim executes under scheduler exclusivity; SeqCst realizes the sequentially-consistent model the checker explores
    }

    /// Atomic swap; executed as `SeqCst` (see [`Self::load`]).
    pub fn swap(&self, value: bool, _order: Ordering) -> bool {
        sched::yield_op(OpKind::Rmw, self.id.get(), 0);
        self.value.swap(value, Ordering::SeqCst)
        // ordering-audited: shim executes under scheduler exclusivity; SeqCst realizes the sequentially-consistent model the checker explores
    }
}

/// Instrumented mutex. Lock acquisition is a yield point whose
/// enabledness the scheduler tracks (a thread parked on a held mutex
/// is simply never granted), so deadlocks surface as "no enabled
/// thread" failures rather than hangs.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    id: ObjectId,
}

/// Guard returned by [`Mutex::lock`]; releases at drop via an
/// `Unlock` yield point.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
    object: usize,
}

impl<T> Mutex<T> {
    /// Creates a new mutex (const, like std).
    #[must_use]
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
            id: ObjectId::new(),
        }
    }

    /// Acquires the mutex. Never blocks inside a model (the scheduler
    /// only grants the lock when it is free); mirrors the facade's
    /// poison-free std wrapper outside one.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let object = self.id.get();
        sched::yield_op(OpKind::Lock, object, 0);
        let guard = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard {
            guard: Some(guard),
            object,
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.guard {
            Some(guard) => guard,
            // Guard is Some from construction until drop.
            None => unreachable!(),
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.guard {
            Some(guard) => guard,
            None => unreachable!(),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then announce: if the unlock
        // yield aborts this thread (unwind), the std mutex must not
        // stay held or the drained sibling threads would block forever
        // inside `Mutex::lock`.
        drop(self.guard.take());
        if self.object != NO_OBJECT {
            sched::yield_op(OpKind::Unlock, self.object, 0);
        }
    }
}

/// Instrumented `std::thread` subset: `spawn`/`join`, `yield_now`, and
/// a scoped-spawn shape compatible with how the hot paths use
/// `std::thread::scope`.
pub mod thread {
    use crate::sched::{self, OpKind, NO_OBJECT};
    use std::sync::mpsc::{channel, Receiver};

    /// Handle to a spawned model thread.
    #[derive(Debug)]
    pub struct JoinHandle<T> {
        tid: u32,
        result: Receiver<std::thread::Result<T>>,
        os: Option<std::thread::JoinHandle<()>>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread. Inside a model this is a `Join` yield
        /// point: the scheduler grants it only after the target
        /// finished, so it never blocks.
        ///
        /// # Errors
        ///
        /// Returns the child's panic payload, like std.
        pub fn join(mut self) -> std::thread::Result<T> {
            sched::yield_op(OpKind::Join, NO_OBJECT, self.tid);
            let result = self
                .result
                .recv()
                .map_err(|e| Box::new(e) as Box<dyn std::any::Any + Send>);
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
            result?
        }
    }

    /// Spawns a model thread. Registered with the active scheduler when
    /// called from a model thread; a plain std spawn otherwise.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (result_tx, result_rx) = channel();
        match sched::current_for_spawn() {
            Some((shared, parent)) => {
                let tid = sched::alloc_tid(&shared);
                let (go_tx, go_rx) = sched::make_go_channel();
                let child_shared = std::sync::Arc::clone(&shared);
                let os = std::thread::Builder::new()
                    .name(format!("race-model-{tid}"))
                    .spawn(move || {
                        let out = sched::run_model_thread(child_shared, tid, go_rx, f);
                        let _ = result_tx.send(out);
                    })
                    .expect("OS refused to spawn a model thread"); // panic-audited: resource exhaustion in the test environment, not a model behaviour
                sched::announce_spawn(&shared, parent, tid, go_tx);
                JoinHandle {
                    tid,
                    result: result_rx,
                    os: Some(os),
                }
            }
            None => {
                let os = std::thread::Builder::new()
                    .spawn(move || {
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                        let _ = result_tx.send(out);
                    })
                    .expect("OS refused to spawn a thread"); // panic-audited: resource exhaustion, not a model behaviour
                JoinHandle {
                    tid: 0,
                    result: result_rx,
                    os: Some(os),
                }
            }
        }
    }

    /// An explicit scheduling point with no memory effect.
    pub fn yield_now() {
        sched::yield_op(OpKind::Yield, NO_OBJECT, 0);
    }

    /// Scope for borrowing spawns, mirroring `std::thread::scope`'s
    /// shape. The instrumented version requires `'static` closures in
    /// practice (model state lives in `Arc`s), but keeps the scope API
    /// so facade call sites read the same.
    #[derive(Debug)]
    pub struct Scope {
        handles: std::cell::RefCell<Vec<JoinHandle<()>>>,
    }

    impl Scope {
        /// Spawns a thread joined automatically at scope exit.
        pub fn spawn<F>(&self, f: F)
        where
            F: FnOnce() + Send + 'static,
        {
            self.handles.borrow_mut().push(spawn(f));
        }
    }

    /// Runs `f` with a scope; all threads spawned on it are joined
    /// (panics propagated) before `scope` returns, like std.
    pub fn scope<F, R>(f: F) -> R
    where
        F: FnOnce(&Scope) -> R,
    {
        let scope = Scope {
            handles: std::cell::RefCell::new(Vec::new()),
        };
        let out = f(&scope);
        let handles = scope.handles.take();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        out
    }

    /// Parallelism hint: model executions are cooperative, so the
    /// shim always reports the real value from std.
    ///
    /// # Errors
    ///
    /// Propagates the platform error from std.
    pub fn available_parallelism() -> std::io::Result<std::num::NonZeroUsize> {
        std::thread::available_parallelism()
    }
}
