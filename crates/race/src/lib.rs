//! `bpred-race` — deterministic-interleaving concurrency checker.
//!
//! A hand-rolled, dependency-free model checker in the style of loom /
//! CHESS, sized for the small shared-state algorithms this workspace
//! actually runs: the lock-free index claiming in `parallel::map`, the
//! metrics counters, and the result store's publish/recovery paths.
//!
//! Three pieces:
//!
//! * [`sched`] — the cooperative scheduler: exhaustive DFS over thread
//!   interleavings under sequential consistency, with a preemption
//!   bound, sleep-set pruning, and byte-for-byte schedule replay.
//! * [`shim`] — instrumented `Atomic*` / `Mutex` / `thread` types that
//!   yield to the scheduler before every operation. Checked models are
//!   written directly against these.
//! * [`sync`] — the facade the rest of the workspace imports: std
//!   re-exports in normal builds, the shims under
//!   `RUSTFLAGS="--cfg bpred_race"`. The repo lint denies raw
//!   `std::sync::atomic` / `std::thread` / `std::sync::Mutex` outside
//!   this seam.
//!
//! # Writing a model
//!
//! ```
//! use bpred_race::sched::{explore, Options};
//! use bpred_race::shim::{thread, AtomicUsize};
//! use bpred_race::sync::Ordering;
//! use std::sync::Arc;
//!
//! let result = explore(
//!     || {
//!         let n = Arc::new(AtomicUsize::new(0));
//!         let handles: Vec<_> = (0..2)
//!             .map(|_| {
//!                 let n = Arc::clone(&n);
//!                 thread::spawn(move || {
//!                     n.fetch_add(1, Ordering::Relaxed);
//!                 })
//!             })
//!             .collect();
//!         for h in handles {
//!             h.join().ok();
//!         }
//!         assert_eq!(n.load(Ordering::Relaxed), 2);
//!     },
//!     &Options::default(),
//! );
//! assert!(result.failure.is_none());
//! assert!(result.complete);
//! ```
//!
//! All shared state must be built **inside** the model closure (the
//! closure re-runs once per explored schedule); assertion macros work
//! unchanged — a panic on any model thread is reported as a
//! [`sched::Failure`] carrying the [`sched::Schedule`] that produced
//! it, which [`sched::replay`] reproduces deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod sched;
pub mod shim;
pub mod sync;

#[cfg(test)]
mod tests {
    use crate::sched::{explore, preemptions_from_env, replay, Options};
    use crate::shim::{thread, AtomicUsize, Mutex};
    use crate::sync::Ordering;
    use std::sync::Arc;

    fn opts(preemptions: usize) -> Options {
        Options {
            preemptions,
            max_executions: 200_000,
            max_steps: 10_000,
        }
    }

    /// Two atomic increments: correct under every schedule.
    #[test]
    fn atomic_increment_is_clean_under_all_schedules() {
        let result = explore(
            || {
                let n = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = Arc::clone(&n);
                        thread::spawn(move || {
                            n.fetch_add(1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().ok();
                }
                assert_eq!(n.load(Ordering::Relaxed), 2);
            },
            &opts(2),
        );
        assert!(result.failure.is_none(), "{:?}", result.failure);
        assert!(result.complete);
        assert!(result.executions >= 1);
    }

    /// The canonical lost update: load-then-store increments lose a
    /// count when interleaved. The checker must find it.
    #[test]
    fn finds_the_classic_lost_update() {
        let result = explore(
            || {
                let n = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = Arc::clone(&n);
                        thread::spawn(move || {
                            let v = n.load(Ordering::Relaxed);
                            n.store(v + 1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().ok();
                }
                assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
            },
            &opts(2),
        );
        let failure = result.failure.expect("checker must find the lost update"); // panic-audited: test assertion
        assert!(
            failure.message.contains("lost update"),
            "{}",
            failure.message
        );
        assert!(!failure.schedule.is_empty());
    }

    /// A single preemption is required to lose the update; bound 0
    /// (non-preemptive) must miss it, which demonstrates the bound is
    /// actually enforced.
    #[test]
    fn preemption_bound_zero_misses_the_lost_update() {
        let result = explore(
            || {
                let n = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = Arc::clone(&n);
                        thread::spawn(move || {
                            let v = n.load(Ordering::Relaxed);
                            n.store(v + 1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().ok();
                }
                assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
            },
            &opts(0),
        );
        assert!(
            result.failure.is_none(),
            "bound 0 runs threads to completion in turn; no interleaving, no bug"
        );
        assert!(result.complete);
    }

    /// Mutex-protected increments: safe under every schedule.
    #[test]
    fn mutex_increment_is_clean() {
        let result = explore(
            || {
                let n = Arc::new(Mutex::new(0usize));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = Arc::clone(&n);
                        thread::spawn(move || {
                            let mut guard = n.lock();
                            *guard += 1;
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().ok();
                }
                assert_eq!(*n.lock(), 2);
            },
            &opts(2),
        );
        assert!(result.failure.is_none(), "{:?}", result.failure);
        assert!(result.complete);
    }

    /// Classic AB-BA lock ordering: the checker reports the deadlock
    /// schedule instead of hanging.
    #[test]
    fn detects_abba_deadlock() {
        let result = explore(
            || {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t1 = thread::spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.lock();
                });
                let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
                let t2 = thread::spawn(move || {
                    let _gb = b3.lock();
                    let _ga = a3.lock();
                });
                t1.join().ok();
                t2.join().ok();
            },
            &opts(2),
        );
        let failure = result
            .failure
            .expect("checker must find the AB-BA deadlock"); // panic-audited: test assertion
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }

    /// Replaying the failing schedule reproduces the same failure;
    /// replaying a passing schedule reproduces a clean run.
    #[test]
    fn replay_reproduces_the_recorded_outcome() {
        let model = || {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::Relaxed);
                        n.store(v + 1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().ok();
            }
            assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
        };
        let result = explore(model, &opts(2));
        let failure = result.failure.expect("lost update must be found"); // panic-audited: test assertion
        for _ in 0..3 {
            let outcome = replay(model, &failure.schedule);
            let replayed = outcome.failure.expect("replay must reproduce the failure"); // panic-audited: test assertion
            assert!(replayed.contains("lost update"), "{replayed}");
            assert_eq!(outcome.schedule, failure.schedule);
        }
    }

    /// Sleep sets prune commuting permutations: two threads touching
    /// disjoint objects have exactly one distinguishable execution, so
    /// pruning must cut the raw interleaving count down.
    #[test]
    fn sleep_sets_prune_independent_interleavings() {
        let result = explore(
            || {
                let a = Arc::new(AtomicUsize::new(0));
                let b = Arc::new(AtomicUsize::new(0));
                let a2 = Arc::clone(&a);
                let t1 = thread::spawn(move || {
                    a2.fetch_add(1, Ordering::Relaxed);
                    a2.fetch_add(1, Ordering::Relaxed);
                });
                let b2 = Arc::clone(&b);
                let t2 = thread::spawn(move || {
                    b2.fetch_add(1, Ordering::Relaxed);
                    b2.fetch_add(1, Ordering::Relaxed);
                });
                t1.join().ok();
                t2.join().ok();
                assert_eq!(a.load(Ordering::Relaxed), 2);
                assert_eq!(b.load(Ordering::Relaxed), 2);
            },
            &opts(4),
        );
        assert!(result.failure.is_none(), "{:?}", result.failure);
        assert!(result.complete);
        assert!(result.pruned > 0, "expected sleep-set pruning to fire");
    }

    /// Outside a model the shims are plain passthroughs: normal unit
    /// tests can use facade types without a scheduler.
    #[test]
    fn shims_degrade_to_std_outside_a_model() {
        let n = AtomicUsize::new(7);
        assert_eq!(n.fetch_add(1, Ordering::Relaxed), 7);
        assert_eq!(n.load(Ordering::Relaxed), 8);
        let m = Mutex::new(3usize);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
        let h = thread::spawn(|| 41 + 1);
        assert_eq!(h.join().ok(), Some(42));
    }

    /// The env knob parses and defaults to 2.
    #[test]
    fn preemption_bound_defaults_to_two() {
        // Only checks the default path when the env var is unset in the
        // test environment; CI pins it to 2 explicitly anyway.
        if std::env::var("BPRED_RACE_PREEMPTIONS").is_err() {
            assert_eq!(preemptions_from_env(), 2);
        }
    }
}
