//! Property test: every [`PredictorSpec`] variant round-trips
//! `parse → Display → parse` losslessly, for arbitrary parameter
//! values, not just the hand-picked configs the unit tests cover.
//!
//! The spec grammar is the only interface between the harness CLI, the
//! sweep registry, and the predictors themselves; a variant whose
//! rendering drops a parameter (or renders one unparseably) would make
//! sweep results unreproducible from their own labels.

use bpred_core::{BankInit, BiModeConfig, ChoiceUpdate, HistorySource, IndexShare, PredictorSpec};
use proptest::prelude::*;

/// Table/history sizing bits: `1..=14` spans smoke scale to beyond the
/// paper's largest (8K-entry) configurations.
fn bits() -> impl Strategy<Value = u32> {
    1u32..15
}

/// A strategy generating every `PredictorSpec` variant, with each
/// enum-valued knob (choice update, bank init, index sharing, history
/// source, total-update flag) drawn independently.
fn spec() -> impl Strategy<Value = PredictorSpec> {
    let two_level = (
        prop_oneof![
            Just(HistorySource::Global),
            bits().prop_map(|index_bits| HistorySource::PerAddress { index_bits }),
            (bits(), 0u32..7)
                .prop_map(|(index_bits, shift)| HistorySource::PerSet { index_bits, shift }),
        ],
        0u32..7,
        bits(),
    )
        .prop_map(
            |(source, address_bits, history_bits)| PredictorSpec::TwoLevel {
                source,
                address_bits,
                history_bits,
            },
        );
    let bimode = (bits(), bits(), bits(), 0u8..2, 0u8..2, 0u8..2).prop_map(
        |(direction_bits, choice_bits, history_bits, update, init, share)| {
            let mut config = BiModeConfig::new(direction_bits, choice_bits, history_bits);
            if update == 1 {
                config.choice_update = ChoiceUpdate::Always;
            }
            if init == 1 {
                config.bank_init = BankInit::UniformWeaklyTaken;
            }
            if share == 1 {
                config.index_share = IndexShare::SkewedPerBank;
            }
            PredictorSpec::BiMode(config)
        },
    );
    let tage = (1u32..9, 1u32..64, 1u32..13, bits()).prop_map(
        |(tables, max_history, tag_bits, entry_bits)| PredictorSpec::Tage {
            tables,
            max_history,
            tag_bits,
            entry_bits,
        },
    );
    let perceptron = (bits(), 1u32..25, 1u32..200).prop_map(|(rows_bits, history_bits, theta)| {
        PredictorSpec::Perceptron {
            rows_bits,
            history_bits,
            theta,
        }
    });
    // Cascade stages draw from the non-cascade grammar (nesting is
    // rejected at parse time), so the stage pool here is a sample of
    // leaf families rather than a recursive strategy.
    let cascade = {
        let stage = prop_oneof![
            bits().prop_map(|table_bits| PredictorSpec::Bimodal { table_bits }),
            (bits(), bits()).prop_map(|(table_bits, history_bits)| PredictorSpec::Gshare {
                table_bits,
                history_bits
            }),
            (1u32..5, 1u32..33, 1u32..13, bits()).prop_map(
                |(tables, max_history, tag_bits, entry_bits)| PredictorSpec::Tage {
                    tables,
                    max_history,
                    tag_bits,
                    entry_bits,
                }
            ),
            (bits(), 1u32..17, 1u32..100).prop_map(|(rows_bits, history_bits, theta)| {
                PredictorSpec::Perceptron {
                    rows_bits,
                    history_bits,
                    theta,
                }
            }),
        ];
        prop::collection::vec(stage, 2..5).prop_map(PredictorSpec::Cascade)
    };
    prop_oneof![
        Just(PredictorSpec::AlwaysTaken),
        Just(PredictorSpec::AlwaysNotTaken),
        Just(PredictorSpec::Btfnt),
        bits().prop_map(|table_bits| PredictorSpec::Bimodal { table_bits }),
        (bits(), bits()).prop_map(|(table_bits, history_bits)| PredictorSpec::Gshare {
            table_bits,
            history_bits
        }),
        (bits(), bits()).prop_map(|(address_bits, history_bits)| PredictorSpec::Gselect {
            address_bits,
            history_bits
        }),
        two_level,
        bimode,
        (bits(), bits(), bits()).prop_map(|(table_bits, history_bits, bias_bits)| {
            PredictorSpec::Agree {
                table_bits,
                history_bits,
                bias_bits,
            }
        }),
        (bits(), bits(), 0u8..2).prop_map(|(bank_bits, history_bits, total)| {
            PredictorSpec::Gskew {
                bank_bits,
                history_bits,
                total_update: total == 1,
            }
        }),
        (bits(), bits(), bits(), 1u32..9).prop_map(
            |(choice_bits, cache_bits, history_bits, tag_bits)| PredictorSpec::Yags {
                choice_bits,
                cache_bits,
                history_bits,
                tag_bits,
            }
        ),
        bits().prop_map(|table_bits| PredictorSpec::Tournament { table_bits }),
        (bits(), bits(), bits()).prop_map(|(direction_bits, choice_bits, history_bits)| {
            PredictorSpec::TriMode {
                direction_bits,
                choice_bits,
                history_bits,
            }
        }),
        (bits(), bits()).prop_map(|(bank_bits, history_bits)| PredictorSpec::TwoBcGskew {
            bank_bits,
            history_bits
        }),
        tage,
        perceptron,
        cascade,
    ]
}

proptest! {
    /// `Display` must render every generated spec to a string the
    /// grammar parses back to an equal spec, and the rendering must be
    /// a fixed point (render → parse → render is stable).
    #[test]
    fn every_variant_roundtrips_losslessly(generated in spec()) {
        let rendered = generated.to_string();
        let reparsed: PredictorSpec = rendered
            .parse()
            .unwrap_or_else(|e| panic!("`{rendered}` does not re-parse: {e}"));
        prop_assert_eq!(&reparsed, &generated, "round-trip through `{}`", rendered);
        prop_assert_eq!(reparsed.to_string(), rendered, "rendering must be stable");
    }

    /// The grammar ignores incidental whitespace around names, keys,
    /// and values, so hand-written sweep files stay robust.
    #[test]
    fn rendered_specs_survive_added_whitespace(generated in spec()) {
        let spaced: String = generated
            .to_string()
            .replace(':', " : ")
            .replace(',', " , ")
            .replace('=', " = ");
        let reparsed: PredictorSpec = spaced
            .parse()
            .unwrap_or_else(|e| panic!("`{spaced}` does not parse: {e}"));
        prop_assert_eq!(reparsed, generated);
    }
}
