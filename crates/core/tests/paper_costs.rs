//! Regression test: `cost().state_kib()` for the paper's table and
//! figure configurations, against hand-computed sizes.
//!
//! Every comparison in Figures 2–4 is an equal-cost comparison, so a
//! drifting cost model would silently shift which predictors get
//! compared at each budget. The expected values below are worked by
//! hand from the structures (2 bits per counter, 1 bit per agree bias
//! entry, 3 bits per tri-mode conflict entry) and are all exact binary
//! fractions, so `assert_eq!` on the `f64` is exact.

use bpred_core::PredictorSpec;

#[test]
fn paper_configuration_costs_match_hand_computed_kib() {
    // (spec, hand-computed KiB of prediction state)
    let expected = [
        // Bimodal: 2^12 counters x 2 bits = 8192 bits.
        ("bimodal:s=12", 1.0),
        // gshare: 2^14 counters x 2 bits = 32768 bits.
        ("gshare:s=14,h=14", 4.0),
        ("gshare:s=11,h=11", 0.5),
        // gselect 6/6: one 2^(6+6)-counter table.
        ("gselect:a=6,h=6", 1.0),
        // GAg: a single 2^12-entry PHT.
        ("gag:h=12", 1.0),
        // PAs 6/4/6: 2^(4+6) counters (history registers are not
        // prediction state in the paper's size accounting).
        ("pas:i=6,a=4,h=6", 0.25),
        // Bi-mode: choice 2^13 + two banks of 2^13, x 2 bits = 49152.
        ("bimode:d=13,c=13,h=13", 6.0),
        // The doc-example size: 3K counters = 768 bytes.
        ("bimode:d=10,c=10,h=10", 0.75),
        // Agree: 2^12 counters x 2 bits + 2^12 bias bits = 12288.
        ("agree:s=12,h=10,b=12", 1.5),
        // gskew: three 2^12-counter banks = 24576 bits.
        ("gskew:s=12,h=10", 3.0),
        // YAGS: 2^12-counter choice + two 2^10-counter caches = 12288.
        ("yags:c=12,e=10,h=10,t=6", 1.5),
        // Tournament: three 2^12-counter tables = 24576 bits.
        ("tournament:s=12", 3.0),
        // Tri-mode: 2 bits choice + 3 bits conflict per 2^12 entries,
        // plus three 2^12-counter banks = (2+3+6) x 2^12 = 45056 bits.
        ("trimode:d=12,c=12,h=12", 5.5),
        // 2bc-gskew: four 2^12-counter banks = 32768 bits.
        ("2bcgskew:s=12,h=12", 4.0),
        // TAGE: a 2-bit base table plus four tagged tables of 3-bit
        // counters, all 2^10 entries = (2 + 3x4) x 2^10 = 14336 bits
        // (tags and useful bits are metadata, like histories).
        ("tage:t=4,h=32,tag=8,e=10", 1.75),
        // Perceptron: 2^7 rows x 16 weights x 8 bits = 16384 bits.
        ("perceptron:n=7,h=16,theta=44", 2.0),
        // Cascade: bimodal 2x2^10 + tage (2+3x2)x2^8 + one 2-bit gate
        // table of 2^6 entries = 2048 + 2048 + 128 = 4224 bits.
        ("cascade:bimodal:s=10;tage:t=2,h=8,tag=6,e=8", 0.515625),
        // Statics carry no prediction state at all.
        ("always-taken", 0.0),
        ("btfnt", 0.0),
    ];
    for (s, kib) in expected {
        let spec: PredictorSpec = s.parse().unwrap_or_else(|e| panic!("`{s}`: {e}"));
        let cost = spec.build().cost();
        assert_eq!(
            cost.state_kib(),
            kib,
            "`{s}` reports {} state bits = {} KiB, hand computation says {} KiB",
            cost.state_bits,
            cost.state_kib(),
            kib
        );
    }
}

#[test]
fn bimode_costs_1_5x_the_same_index_width_gshare() {
    // Section 3.3: bi-mode at index width d is three same-size tables
    // (choice + two banks), so it costs 3x the d-bit gshare and 1.5x
    // the (d+1)-bit gshare — the ratio behind the equal-cost x-axis of
    // Figures 2-4. Pin both so the sweep grids stay honest.
    for d in [8u32, 10, 12] {
        let bimode: PredictorSpec = format!("bimode:d={d},c={d},h={d}")
            .parse()
            .expect("valid spec");
        let same: PredictorSpec = format!("gshare:s={d},h={d}").parse().expect("valid spec");
        let next: PredictorSpec = format!("gshare:s={},h={}", d + 1, d + 1)
            .parse()
            .expect("valid spec");
        let b = bimode.build().cost().state_bits;
        assert_eq!(b, 3 * same.build().cost().state_bits);
        assert_eq!(2 * b, 3 * next.build().cost().state_bits);
    }
}
