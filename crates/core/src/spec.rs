//! Textual predictor specifications: a small `name:key=value,...` grammar
//! used by the experiment harness CLI and the sweep generators, so that a
//! configuration can round-trip through a command line or a results file.

use std::fmt;
use std::str::FromStr;

use crate::predictor::Predictor;
use crate::predictors::agree::Agree;
use crate::predictors::bimodal::Bimodal;
use crate::predictors::bimode::{BankInit, BiMode, BiModeConfig, ChoiceUpdate, IndexShare};
use crate::predictors::cascade::Cascade;
use crate::predictors::gselect::Gselect;
use crate::predictors::gshare::Gshare;
use crate::predictors::gskew::{Gskew, GskewUpdate};
use crate::predictors::perceptron::Perceptron;
use crate::predictors::statics::{AlwaysNotTaken, AlwaysTaken, Btfnt};
use crate::predictors::tage::Tage;
use crate::predictors::tournament::Tournament;
use crate::predictors::trimode::{TriMode, TriModeConfig};
use crate::predictors::two_level::{HistorySource, TwoLevel};
use crate::predictors::twobcgskew::TwoBcGskew;
use crate::predictors::yags::Yags;

/// A buildable predictor configuration.
///
/// ```
/// use bpred_core::PredictorSpec;
///
/// let spec: PredictorSpec = "bimode:d=10,c=10,h=10".parse()?;
/// let p = spec.build();
/// assert_eq!(p.cost().state_kib(), 0.75);
/// # Ok::<(), bpred_core::ParseSpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictorSpec {
    /// Static taken.
    AlwaysTaken,
    /// Static not-taken.
    AlwaysNotTaken,
    /// Static backward-taken / forward-not-taken.
    Btfnt,
    /// Smith bimodal: `2^table_bits` counters.
    Bimodal {
        /// log2 table size.
        table_bits: u32,
    },
    /// gshare: `2^table_bits` counters, `history_bits` of history.
    Gshare {
        /// log2 table size.
        table_bits: u32,
        /// Global history length.
        history_bits: u32,
    },
    /// gselect: address and history concatenated.
    Gselect {
        /// Address bits in the index.
        address_bits: u32,
        /// History bits in the index.
        history_bits: u32,
    },
    /// Yeh–Patt two-level predictor.
    TwoLevel {
        /// First-level history organisation.
        source: HistorySource,
        /// PHT-selecting address bits.
        address_bits: u32,
        /// History length.
        history_bits: u32,
    },
    /// The bi-mode predictor.
    BiMode(BiModeConfig),
    /// The agree predictor.
    Agree {
        /// log2 agreement-PHT size.
        table_bits: u32,
        /// History length.
        history_bits: u32,
        /// log2 bias-bit table size.
        bias_bits: u32,
    },
    /// Three-bank skewed predictor.
    Gskew {
        /// log2 per-bank size.
        bank_bits: u32,
        /// History length.
        history_bits: u32,
        /// Train all banks every branch instead of partial update.
        total_update: bool,
    },
    /// YAGS exception-cache predictor.
    Yags {
        /// log2 choice-PHT size.
        choice_bits: u32,
        /// log2 exception-cache size.
        cache_bits: u32,
        /// History length.
        history_bits: u32,
        /// Partial tag width.
        tag_bits: u32,
    },
    /// Classic McFarling tournament: bimodal + single-PHT gshare of the
    /// given size with a same-size meta table.
    Tournament {
        /// log2 size shared by both components and the meta table.
        table_bits: u32,
    },
    /// The tri-mode extension (bi-mode plus a weak bank).
    TriMode {
        /// log2 of each direction bank.
        direction_bits: u32,
        /// log2 of the choice/conflict tables.
        choice_bits: u32,
        /// History length.
        history_bits: u32,
    },
    /// The 2bc-gskew hybrid (bimodal + two skewed banks + meta).
    TwoBcGskew {
        /// log2 per-bank size (four banks).
        bank_bits: u32,
        /// Long history length (the short one is half).
        history_bits: u32,
    },
    /// TAGE: bimodal base plus tagged geometric-history tables.
    Tage {
        /// Number of tagged component tables.
        tables: u32,
        /// History length of the longest component.
        max_history: u32,
        /// Partial tag width per entry.
        tag_bits: u32,
        /// log2 entries per table (base included).
        entry_bits: u32,
    },
    /// Perceptron: `2^rows_bits` rows of signed per-history-bit weights.
    Perceptron {
        /// log2 row count.
        rows_bits: u32,
        /// History length (= weights per row).
        history_bits: u32,
        /// Training threshold.
        theta: u32,
    },
    /// Confidence-gated cascade over `;`-separated component specs
    /// (themselves drawn from this grammar; cascades do not nest).
    Cascade(Vec<PredictorSpec>),
}

impl PredictorSpec {
    /// Builds the predictor this spec describes.
    ///
    /// # Panics
    ///
    /// Panics when the parameters violate a predictor's constructor
    /// constraints (for example `history_bits > table_bits` for gshare);
    /// specs produced by [`FromStr`] parsing are *not* pre-validated
    /// against those constraints.
    #[must_use]
    pub fn build(&self) -> Box<dyn Predictor> {
        match *self {
            PredictorSpec::AlwaysTaken => Box::new(AlwaysTaken),
            PredictorSpec::AlwaysNotTaken => Box::new(AlwaysNotTaken),
            PredictorSpec::Btfnt => Box::new(Btfnt),
            PredictorSpec::Bimodal { table_bits } => Box::new(Bimodal::new(table_bits)),
            PredictorSpec::Gshare {
                table_bits,
                history_bits,
            } => Box::new(Gshare::new(table_bits, history_bits)),
            PredictorSpec::Gselect {
                address_bits,
                history_bits,
            } => Box::new(Gselect::new(address_bits, history_bits)),
            PredictorSpec::TwoLevel {
                source,
                address_bits,
                history_bits,
            } => Box::new(TwoLevel::new(source, address_bits, history_bits)),
            PredictorSpec::BiMode(config) => Box::new(BiMode::new(config)),
            PredictorSpec::Agree {
                table_bits,
                history_bits,
                bias_bits,
            } => Box::new(Agree::new(table_bits, history_bits, bias_bits)),
            PredictorSpec::Gskew {
                bank_bits,
                history_bits,
                total_update,
            } => {
                let update = if total_update {
                    GskewUpdate::Total
                } else {
                    GskewUpdate::Partial
                };
                Box::new(Gskew::with_update(bank_bits, history_bits, update))
            }
            PredictorSpec::Yags {
                choice_bits,
                cache_bits,
                history_bits,
                tag_bits,
            } => Box::new(Yags::new(choice_bits, cache_bits, history_bits, tag_bits)),
            PredictorSpec::Tournament { table_bits } => Box::new(Tournament::new(
                Box::new(Bimodal::new(table_bits)),
                Box::new(Gshare::new(table_bits, table_bits)),
                table_bits,
            )),
            PredictorSpec::TriMode {
                direction_bits,
                choice_bits,
                history_bits,
            } => Box::new(TriMode::new(TriModeConfig::new(
                direction_bits,
                choice_bits,
                history_bits,
            ))),
            PredictorSpec::TwoBcGskew {
                bank_bits,
                history_bits,
            } => Box::new(TwoBcGskew::new(bank_bits, history_bits)),
            PredictorSpec::Tage {
                tables,
                max_history,
                tag_bits,
                entry_bits,
            } => Box::new(Tage::new(tables, max_history, tag_bits, entry_bits)),
            PredictorSpec::Perceptron {
                rows_bits,
                history_bits,
                theta,
            } => Box::new(Perceptron::new(rows_bits, history_bits, theta)),
            PredictorSpec::Cascade(ref stages) => Box::new(Cascade::new(
                stages.iter().map(PredictorSpec::build).collect(),
            )),
        }
    }

    /// Stable content fingerprint of this spec: FNV-1a-64 over the
    /// canonical grammar string ([`fmt::Display`]). Because `Display`
    /// round-trips through [`FromStr`] (property-tested below and in
    /// `bpred-check`'s grammar audit), the fingerprint covers every
    /// cost-bearing field — two specs hash alike exactly when they
    /// describe the same predictor — and stays stable across processes
    /// and compiler versions, unlike `std::hash::Hash`. The harness
    /// uses it as the configuration half of a result-store job key.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = FNV_OFFSET;
        for b in self.to_string().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

/// Error returned when a predictor spec string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    message: String,
}

impl ParseSpecError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid predictor spec: {}", self.message)
    }
}

impl std::error::Error for ParseSpecError {}

/// Key=value parameter list parsed from the part after `:`, carrying
/// the predictor name and its valid keys so every error can say which
/// key offended and what the grammar accepts there.
struct Params<'a> {
    name: &'a str,
    valid_keys: &'static [&'static str],
    pairs: Vec<(&'a str, &'a str)>,
}

/// Renders a valid-key list for error messages.
fn keys_desc(valid_keys: &[&str]) -> String {
    if valid_keys.is_empty() {
        "takes no parameters".to_owned()
    } else {
        format!("valid keys: {}", valid_keys.join(", "))
    }
}

impl<'a> Params<'a> {
    fn parse(
        name: &'a str,
        valid_keys: &'static [&'static str],
        s: &'a str,
    ) -> Result<Self, ParseSpecError> {
        let mut pairs = Vec::new();
        if !s.is_empty() {
            for item in s.split(',') {
                let (k, v) = item.split_once('=').ok_or_else(|| {
                    ParseSpecError::new(format!(
                        "`{name}`: expected key=value, got `{item}` ({})",
                        keys_desc(valid_keys)
                    ))
                })?;
                pairs.push((k.trim(), v.trim()));
            }
        }
        let params = Self {
            name,
            valid_keys,
            pairs,
        };
        if let Some((k, _)) = params.pairs.iter().find(|(k, _)| !valid_keys.contains(k)) {
            return Err(ParseSpecError::new(format!(
                "unknown key `{k}` for `{name}` ({})",
                keys_desc(valid_keys)
            )));
        }
        Ok(params)
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn num(&self, key: &str) -> Result<u32, ParseSpecError> {
        let v = self.get(key).ok_or_else(|| {
            ParseSpecError::new(format!(
                "missing parameter `{key}` for `{}` ({})",
                self.name,
                keys_desc(self.valid_keys)
            ))
        })?;
        v.parse().map_err(|_| {
            ParseSpecError::new(format!(
                "`{}`: parameter `{key}`: `{v}` is not a number",
                self.name
            ))
        })
    }

    fn num_or(&self, key: &str, default: u32) -> Result<u32, ParseSpecError> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| {
                ParseSpecError::new(format!(
                    "`{}`: parameter `{key}`: `{v}` is not a number",
                    self.name
                ))
            }),
            None => Ok(default),
        }
    }
}

/// The spec grammar: every recognised predictor name paired with the
/// keys its parameter list accepts, in registry order.
///
/// This is the single source of truth the parser validates against and
/// the `bpred-check` registry audit cross-checks for completeness.
pub const GRAMMAR: &[(&str, &[&str])] = &[
    ("always-taken", &[]),
    ("always-not-taken", &[]),
    ("btfnt", &[]),
    ("bimodal", &["s"]),
    ("gshare", &["s", "h"]),
    ("gselect", &["a", "h"]),
    ("gag", &["h"]),
    ("gas", &["a", "h"]),
    ("pag", &["i", "h"]),
    ("pas", &["i", "a", "h"]),
    ("sag", &["i", "k", "h"]),
    ("sas", &["i", "k", "a", "h"]),
    ("bimode", &["d", "c", "h", "choice", "init", "index"]),
    ("agree", &["s", "h", "b"]),
    ("gskew", &["s", "h", "update"]),
    ("yags", &["c", "e", "h", "t"]),
    ("tournament", &["s"]),
    ("2bcgskew", &["s", "h"]),
    ("trimode", &["d", "c", "h"]),
    ("tage", &["t", "h", "tag", "e"]),
    ("perceptron", &["n", "h", "theta"]),
    // `cascade` takes `;`-separated stage specs, not key=value pairs;
    // the parser special-cases it before parameter splitting.
    ("cascade", &[]),
];

/// The valid keys for a grammar name, if the name is recognised.
fn grammar_keys(name: &str) -> Option<&'static [&'static str]> {
    GRAMMAR
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, keys)| *keys)
}

impl FromStr for PredictorSpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, rest) = match s.split_once(':') {
            Some((n, r)) => (n.trim(), r.trim()),
            None => (s.trim(), ""),
        };
        let keys = grammar_keys(name).ok_or_else(|| {
            ParseSpecError::new(format!(
                "unknown predictor `{name}` (known: {})",
                GRAMMAR
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
        // The cascade body is a `;`-separated list of stage specs from
        // this same grammar (each containing its own `:` and `,`), so
        // it never goes through the key=value splitter.
        if name == "cascade" {
            if rest.is_empty() {
                return Err(ParseSpecError::new(
                    "`cascade` wants at least two `;`-separated stage specs",
                ));
            }
            let stages = rest
                .split(';')
                .map(|stage| stage.trim().parse::<PredictorSpec>())
                .collect::<Result<Vec<_>, _>>()?;
            if stages.len() < 2 {
                return Err(ParseSpecError::new(format!(
                    "`cascade` wants at least two stages, got {}",
                    stages.len()
                )));
            }
            if stages
                .iter()
                .any(|s| matches!(s, PredictorSpec::Cascade(_)))
            {
                return Err(ParseSpecError::new(
                    "cascade stages cannot be nested cascades",
                ));
            }
            return Ok(PredictorSpec::Cascade(stages));
        }
        let p = Params::parse(name, keys, rest)?;
        match name {
            "always-taken" => Ok(PredictorSpec::AlwaysTaken),
            "always-not-taken" => Ok(PredictorSpec::AlwaysNotTaken),
            "btfnt" => Ok(PredictorSpec::Btfnt),
            "bimodal" => Ok(PredictorSpec::Bimodal {
                table_bits: p.num("s")?,
            }),
            "gshare" => Ok(PredictorSpec::Gshare {
                table_bits: p.num("s")?,
                history_bits: p.num("h")?,
            }),
            "gselect" => Ok(PredictorSpec::Gselect {
                address_bits: p.num("a")?,
                history_bits: p.num("h")?,
            }),
            "gag" => Ok(PredictorSpec::TwoLevel {
                source: HistorySource::Global,
                address_bits: 0,
                history_bits: p.num("h")?,
            }),
            "gas" => Ok(PredictorSpec::TwoLevel {
                source: HistorySource::Global,
                address_bits: p.num("a")?,
                history_bits: p.num("h")?,
            }),
            "pag" => Ok(PredictorSpec::TwoLevel {
                source: HistorySource::PerAddress {
                    index_bits: p.num("i")?,
                },
                address_bits: 0,
                history_bits: p.num("h")?,
            }),
            "pas" => Ok(PredictorSpec::TwoLevel {
                source: HistorySource::PerAddress {
                    index_bits: p.num("i")?,
                },
                address_bits: p.num("a")?,
                history_bits: p.num("h")?,
            }),
            "sag" => Ok(PredictorSpec::TwoLevel {
                source: HistorySource::PerSet {
                    index_bits: p.num("i")?,
                    shift: p.num_or("k", 6)?,
                },
                address_bits: 0,
                history_bits: p.num("h")?,
            }),
            "sas" => Ok(PredictorSpec::TwoLevel {
                source: HistorySource::PerSet {
                    index_bits: p.num("i")?,
                    shift: p.num_or("k", 6)?,
                },
                address_bits: p.num("a")?,
                history_bits: p.num("h")?,
            }),
            "bimode" => {
                let d = p.num("d")?;
                let mut config = BiModeConfig::new(d, p.num_or("c", d)?, p.num_or("h", d)?);
                config.choice_update = match p.get("choice") {
                    None | Some("partial") => ChoiceUpdate::Partial,
                    Some("always") => ChoiceUpdate::Always,
                    Some(v) => {
                        return Err(ParseSpecError::new(format!(
                            "choice must be partial|always, got `{v}`"
                        )))
                    }
                };
                config.bank_init = match p.get("init") {
                    None | Some("split") => BankInit::Split,
                    Some("uniform") => BankInit::UniformWeaklyTaken,
                    Some(v) => {
                        return Err(ParseSpecError::new(format!(
                            "init must be split|uniform, got `{v}`"
                        )))
                    }
                };
                config.index_share = match p.get("index") {
                    None | Some("shared") => IndexShare::Shared,
                    Some("skewed") => IndexShare::SkewedPerBank,
                    Some(v) => {
                        return Err(ParseSpecError::new(format!(
                            "index must be shared|skewed, got `{v}`"
                        )))
                    }
                };
                Ok(PredictorSpec::BiMode(config))
            }
            "agree" => Ok(PredictorSpec::Agree {
                table_bits: p.num("s")?,
                history_bits: p.num("h")?,
                bias_bits: p.num_or("b", p.num("s")?)?,
            }),
            "gskew" => Ok(PredictorSpec::Gskew {
                bank_bits: p.num("s")?,
                history_bits: p.num("h")?,
                total_update: match p.get("update") {
                    None | Some("partial") => false,
                    Some("total") => true,
                    Some(v) => {
                        return Err(ParseSpecError::new(format!(
                            "update must be partial|total, got `{v}`"
                        )))
                    }
                },
            }),
            "yags" => Ok(PredictorSpec::Yags {
                choice_bits: p.num("c")?,
                cache_bits: p.num("e")?,
                history_bits: p.num("h")?,
                tag_bits: p.num_or("t", 6)?,
            }),
            "tournament" => Ok(PredictorSpec::Tournament {
                table_bits: p.num("s")?,
            }),
            "2bcgskew" => Ok(PredictorSpec::TwoBcGskew {
                bank_bits: p.num("s")?,
                history_bits: p.num("h")?,
            }),
            "trimode" => {
                let d = p.num("d")?;
                Ok(PredictorSpec::TriMode {
                    direction_bits: d,
                    choice_bits: p.num_or("c", d)?,
                    history_bits: p.num_or("h", d)?,
                })
            }
            "tage" => Ok(PredictorSpec::Tage {
                tables: p.num("t")?,
                max_history: p.num("h")?,
                tag_bits: p.num_or("tag", 8)?,
                entry_bits: p.num("e")?,
            }),
            "perceptron" => {
                let h = p.num("h")?;
                Ok(PredictorSpec::Perceptron {
                    rows_bits: p.num("n")?,
                    history_bits: h,
                    theta: p.num_or("theta", Perceptron::default_theta(h))?,
                })
            }
            other => Err(ParseSpecError::new(format!("unknown predictor `{other}`"))),
        }
    }
}

impl fmt::Display for PredictorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictorSpec::AlwaysTaken => f.write_str("always-taken"),
            PredictorSpec::AlwaysNotTaken => f.write_str("always-not-taken"),
            PredictorSpec::Btfnt => f.write_str("btfnt"),
            PredictorSpec::Bimodal { table_bits } => write!(f, "bimodal:s={table_bits}"),
            PredictorSpec::Gshare {
                table_bits,
                history_bits,
            } => {
                write!(f, "gshare:s={table_bits},h={history_bits}")
            }
            PredictorSpec::Gselect {
                address_bits,
                history_bits,
            } => {
                write!(f, "gselect:a={address_bits},h={history_bits}")
            }
            PredictorSpec::TwoLevel {
                source,
                address_bits,
                history_bits,
            } => match source {
                HistorySource::Global if *address_bits == 0 => {
                    write!(f, "gag:h={history_bits}")
                }
                HistorySource::Global => write!(f, "gas:a={address_bits},h={history_bits}"),
                HistorySource::PerAddress { index_bits } if *address_bits == 0 => {
                    write!(f, "pag:i={index_bits},h={history_bits}")
                }
                HistorySource::PerAddress { index_bits } => {
                    write!(f, "pas:i={index_bits},a={address_bits},h={history_bits}")
                }
                HistorySource::PerSet { index_bits, shift } if *address_bits == 0 => {
                    write!(f, "sag:i={index_bits},k={shift},h={history_bits}")
                }
                HistorySource::PerSet { index_bits, shift } => {
                    write!(
                        f,
                        "sas:i={index_bits},k={shift},a={address_bits},h={history_bits}"
                    )
                }
            },
            PredictorSpec::BiMode(c) => {
                write!(
                    f,
                    "bimode:d={},c={},h={}",
                    c.direction_bits, c.choice_bits, c.history_bits
                )?;
                if c.choice_update == ChoiceUpdate::Always {
                    f.write_str(",choice=always")?;
                }
                if c.bank_init == BankInit::UniformWeaklyTaken {
                    f.write_str(",init=uniform")?;
                }
                if c.index_share == IndexShare::SkewedPerBank {
                    f.write_str(",index=skewed")?;
                }
                Ok(())
            }
            PredictorSpec::Agree {
                table_bits,
                history_bits,
                bias_bits,
            } => {
                write!(f, "agree:s={table_bits},h={history_bits},b={bias_bits}")
            }
            PredictorSpec::Gskew {
                bank_bits,
                history_bits,
                total_update,
            } => {
                write!(f, "gskew:s={bank_bits},h={history_bits}")?;
                if *total_update {
                    f.write_str(",update=total")?;
                }
                Ok(())
            }
            PredictorSpec::Yags {
                choice_bits,
                cache_bits,
                history_bits,
                tag_bits,
            } => {
                write!(
                    f,
                    "yags:c={choice_bits},e={cache_bits},h={history_bits},t={tag_bits}"
                )
            }
            PredictorSpec::Tournament { table_bits } => write!(f, "tournament:s={table_bits}"),
            PredictorSpec::TriMode {
                direction_bits,
                choice_bits,
                history_bits,
            } => {
                write!(
                    f,
                    "trimode:d={direction_bits},c={choice_bits},h={history_bits}"
                )
            }
            PredictorSpec::TwoBcGskew {
                bank_bits,
                history_bits,
            } => {
                write!(f, "2bcgskew:s={bank_bits},h={history_bits}")
            }
            PredictorSpec::Tage {
                tables,
                max_history,
                tag_bits,
                entry_bits,
            } => {
                write!(
                    f,
                    "tage:t={tables},h={max_history},tag={tag_bits},e={entry_bits}"
                )
            }
            PredictorSpec::Perceptron {
                rows_bits,
                history_bits,
                theta,
            } => {
                // theta is always rendered so the canonical string (and
                // with it the fingerprint) does not depend on whether
                // the default was spelled out.
                write!(f, "perceptron:n={rows_bits},h={history_bits},theta={theta}")
            }
            PredictorSpec::Cascade(stages) => {
                f.write_str("cascade:")?;
                for (i, stage) in stages.iter().enumerate() {
                    if i > 0 {
                        f.write_str(";")?;
                    }
                    write!(f, "{stage}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) -> PredictorSpec {
        let spec: PredictorSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
        let shown = spec.to_string();
        let again: PredictorSpec = shown.parse().unwrap();
        assert_eq!(spec, again, "display/parse roundtrip for {s} via {shown}");
        spec
    }

    #[test]
    fn every_scheme_roundtrips_and_builds() {
        for s in [
            "always-taken",
            "always-not-taken",
            "btfnt",
            "bimodal:s=8",
            "gshare:s=10,h=8",
            "gselect:a=3,h=5",
            "gag:h=10",
            "gas:a=2,h=8",
            "pag:i=4,h=6",
            "pas:i=4,a=2,h=6",
            "sag:i=4,k=5,h=6",
            "sas:i=4,k=5,a=2,h=6",
            "bimode:d=8,c=8,h=8",
            "bimode:d=8,c=6,h=7,choice=always,init=uniform,index=skewed",
            "agree:s=10,h=8,b=9",
            "gskew:s=8,h=8",
            "gskew:s=8,h=8,update=total",
            "yags:c=8,e=6,h=6,t=6",
            "tournament:s=8",
            "trimode:d=8,c=8,h=8",
            "2bcgskew:s=8,h=8",
            "tage:t=4,h=32,tag=8,e=8",
            "perceptron:n=6,h=12,theta=37",
            "cascade:bimodal:s=6;tage:t=2,h=8,tag=6,e=5;perceptron:n=4,h=8,theta=29",
        ] {
            let spec = roundtrip(s);
            let p = spec.build();
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn bimode_defaults_choice_and_history_to_direction() {
        let spec: PredictorSpec = "bimode:d=9".parse().unwrap();
        assert_eq!(spec, PredictorSpec::BiMode(BiModeConfig::paper_default(9)));
    }

    #[test]
    fn built_names_match_schemes() {
        let p = PredictorSpec::from_str("gshare:s=10,h=7").unwrap().build();
        assert_eq!(p.name(), "gshare(s=10,h=7)");
        let p = PredictorSpec::from_str("bimode:d=7").unwrap().build();
        assert_eq!(p.name(), "bi-mode(d=7,c=7,h=7)");
    }

    #[test]
    fn parse_errors_are_descriptive() {
        let err = PredictorSpec::from_str("nonsense:x=1").unwrap_err();
        assert!(err.to_string().contains("unknown predictor"));
        assert!(
            err.to_string().contains("bimode"),
            "unknown-name errors list the known names: {err}"
        );
        let err = PredictorSpec::from_str("gshare:s=10").unwrap_err();
        assert!(err.to_string().contains("missing parameter `h`"));
        assert!(
            err.to_string().contains("valid keys: s, h"),
            "missing-key errors list the valid keys: {err}"
        );
        let err = PredictorSpec::from_str("gshare:s=ten,h=2").unwrap_err();
        assert!(err.to_string().contains("not a number"));
        let err = PredictorSpec::from_str("gshare:s").unwrap_err();
        assert!(err.to_string().contains("key=value"));
        let err = PredictorSpec::from_str("bimode:d=8,choice=sometimes").unwrap_err();
        assert!(err.to_string().contains("partial|always"));
    }

    #[test]
    fn unknown_keys_are_rejected_naming_key_and_valid_set() {
        // One misspelled or foreign key per variant: each error must name
        // the offending key, the predictor, and that predictor's keys.
        let cases = [
            ("bimodal:s=8,z=1", "z", "valid keys: s"),
            ("gshare:s=8,h=8,size=4", "size", "valid keys: s, h"),
            ("gselect:a=3,h=5,s=2", "s", "valid keys: a, h"),
            ("gag:h=4,a=1", "a", "valid keys: h"),
            ("gas:a=2,h=4,i=3", "i", "valid keys: a, h"),
            ("pag:i=4,h=6,a=2", "a", "valid keys: i, h"),
            ("pas:i=4,a=2,h=6,k=1", "k", "valid keys: i, a, h"),
            ("sag:i=4,k=5,h=6,t=2", "t", "valid keys: i, k, h"),
            ("sas:i=4,k=5,a=2,h=6,b=1", "b", "valid keys: i, k, a, h"),
            (
                "bimode:d=8,dir=skewed",
                "dir",
                "valid keys: d, c, h, choice, init, index",
            ),
            ("agree:s=8,h=8,bias=8", "bias", "valid keys: s, h, b"),
            (
                "gskew:s=8,h=8,mode=total",
                "mode",
                "valid keys: s, h, update",
            ),
            ("yags:c=8,e=6,h=6,tag=4", "tag", "valid keys: c, e, h, t"),
            ("tournament:s=8,m=8", "m", "valid keys: s"),
            ("2bcgskew:s=8,h=8,g=2", "g", "valid keys: s, h"),
            ("trimode:d=8,w=2", "w", "valid keys: d, c, h"),
            (
                "tage:t=4,h=16,tag=8,e=8,u=2",
                "u",
                "valid keys: t, h, tag, e",
            ),
            ("perceptron:n=6,h=12,w=8", "w", "valid keys: n, h, theta"),
        ];
        for (input, bad_key, valid) in cases {
            let err = PredictorSpec::from_str(input).unwrap_err().to_string();
            assert!(
                err.contains(&format!("unknown key `{bad_key}`")),
                "{input}: error must name the offending key: {err}"
            );
            assert!(
                err.contains(valid),
                "{input}: error must list the valid keys: {err}"
            );
        }
    }

    #[test]
    fn static_predictors_reject_any_parameters() {
        for input in ["always-taken:s=1", "always-not-taken:x=2", "btfnt:h=3"] {
            let err = PredictorSpec::from_str(input).unwrap_err().to_string();
            assert!(err.contains("unknown key"), "{input}: {err}");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let spec: PredictorSpec = " gshare : s=10 , h=4 ".parse().unwrap();
        assert_eq!(
            spec,
            PredictorSpec::Gshare {
                table_bits: 10,
                history_bits: 4
            }
        );
    }

    #[test]
    fn tage_defaults_tag_to_eight_and_perceptron_theta_to_the_paper_fit() {
        let spec: PredictorSpec = "tage:t=4,h=16,e=9".parse().unwrap();
        assert_eq!(
            spec,
            PredictorSpec::Tage {
                tables: 4,
                max_history: 16,
                tag_bits: 8,
                entry_bits: 9
            }
        );
        let spec: PredictorSpec = "perceptron:n=7,h=16".parse().unwrap();
        assert_eq!(
            spec,
            PredictorSpec::Perceptron {
                rows_bits: 7,
                history_bits: 16,
                theta: 44
            }
        );
        // The default and its spelled-out form are the same spec, so
        // they share one canonical string and one fingerprint.
        let explicit: PredictorSpec = "perceptron:n=7,h=16,theta=44".parse().unwrap();
        assert_eq!(spec.to_string(), explicit.to_string());
        assert_eq!(spec.fingerprint(), explicit.fingerprint());
    }

    #[test]
    fn cascade_parses_stage_lists_and_rejects_degenerate_forms() {
        let spec: PredictorSpec = "cascade: bimodal:s=8 ; gshare:s=9,h=9 ".parse().unwrap();
        assert_eq!(
            spec,
            PredictorSpec::Cascade(vec![
                PredictorSpec::Bimodal { table_bits: 8 },
                PredictorSpec::Gshare {
                    table_bits: 9,
                    history_bits: 9
                },
            ])
        );
        let err = "cascade".parse::<PredictorSpec>().unwrap_err().to_string();
        assert!(err.contains("at least two"), "{err}");
        let err = "cascade:bimodal:s=8"
            .parse::<PredictorSpec>()
            .unwrap_err()
            .to_string();
        assert!(err.contains("at least two stages"), "{err}");
        let err = "cascade:bimodal:s=8;nonsense:x=1"
            .parse::<PredictorSpec>()
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown predictor"), "{err}");
    }

    #[test]
    fn cascades_do_not_nest() {
        // The `;` split is flat, so an inner `cascade:` can never
        // gather two stages of its own: any nesting spelling fails to
        // parse one way or the other, keeping Display unambiguous.
        for s in [
            "cascade:bimodal:s=8;cascade:bimodal:s=4;gshare:s=4,h=4",
            "cascade:cascade:bimodal:s=4;gshare:s=4,h=4",
        ] {
            assert!(s.parse::<PredictorSpec>().is_err(), "{s} must not parse");
        }
    }

    #[test]
    fn fingerprint_is_canonical_not_textual() {
        // Spelling variants of the same spec agree; the canonical
        // string is what gets hashed, not the user's input.
        let a: PredictorSpec = "gshare:s=10,h=4".parse().unwrap();
        let b: PredictorSpec = " gshare : h=4 , s=10 ".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // And it round-trips: re-parsing the canonical string preserves
        // the fingerprint.
        let reparsed: PredictorSpec = a.to_string().parse().unwrap();
        assert_eq!(reparsed.fingerprint(), a.fingerprint());
    }

    #[test]
    fn fingerprint_separates_every_cost_bearing_field() {
        // Pairwise-distinct fingerprints across parameter tweaks of one
        // family and across families.
        let specs = [
            "gshare:s=10,h=4",
            "gshare:s=10,h=5",
            "gshare:s=11,h=4",
            "bimodal:s=10",
            "bimode:d=10",
            "bimode:d=10,choice=always",
            "bimode:d=10,init=uniform",
            "bimode:d=10,index=skewed",
            "bimode:d=10,c=9",
            "bimode:d=10,h=9",
            "trimode:d=10",
            "gskew:s=10,h=10",
            "gskew:s=10,h=10,update=total",
            "tage:t=4,h=32,tag=8,e=10",
            "tage:t=4,h=32,tag=8,e=11",
            "tage:t=5,h=32,tag=8,e=10",
            "tage:t=4,h=33,tag=8,e=10",
            "tage:t=4,h=32,tag=9,e=10",
            "perceptron:n=7,h=16,theta=44",
            "perceptron:n=8,h=16,theta=44",
            "perceptron:n=7,h=17,theta=44",
            "perceptron:n=7,h=16,theta=45",
            "cascade:bimodal:s=10;gshare:s=10,h=10",
            "cascade:bimodal:s=10;gshare:s=10,h=9",
            "cascade:gshare:s=10,h=10;bimodal:s=10",
        ];
        let mut seen = std::collections::HashMap::new();
        for s in specs {
            let spec: PredictorSpec = s.parse().unwrap();
            if let Some(prev) = seen.insert(spec.fingerprint(), s) {
                panic!("fingerprint collision: `{prev}` vs `{s}`");
            }
        }
    }
}
