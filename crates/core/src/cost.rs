//! Hardware cost accounting in the paper's units.
//!
//! Section 3.3: "Cost is measured by counting the number of bytes used in
//! the 2-bit counters." History registers and tags are excluded from this
//! headline figure but reported separately, so the crate tracks both.

use std::fmt;

/// Hardware cost of a predictor, split the way the paper reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Bits of prediction-state storage (two-bit counters, and one-bit
    /// state for schemes that use it). This is the paper's cost metric.
    pub state_bits: u64,
    /// Bits of everything else: history registers, tags, valid bits.
    /// Excluded from the paper's byte counts.
    pub metadata_bits: u64,
}

impl Cost {
    /// Cost with only counter state.
    #[must_use]
    pub fn state(bits: u64) -> Self {
        Self {
            state_bits: bits,
            metadata_bits: 0,
        }
    }

    /// The paper's headline figure: counter state in bytes.
    #[must_use]
    pub fn state_bytes(self) -> f64 {
        self.state_bits as f64 / 8.0
    }

    /// Counter state in kilobytes (the x-axis of Figures 2-4).
    #[must_use]
    pub fn state_kib(self) -> f64 {
        self.state_bits as f64 / 8192.0
    }

    /// Component-wise sum of two costs.
    #[must_use]
    pub fn plus(self, other: Cost) -> Cost {
        Cost {
            state_bits: self.state_bits + other.state_bits,
            metadata_bits: self.metadata_bits + other.metadata_bits,
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} KB state (+{} bits metadata)",
            self.state_kib(),
            self.metadata_bits
        )
    }
}

/// The predictor size ladder of Figures 2-4: 0.25 KB to 32 KB of two-bit
/// counters, i.e. table index widths 10 through 17.
///
/// Returns `(index_bits, kib)` pairs; a gshare with `index_bits`-bit index
/// costs exactly `kib` kilobytes.
#[must_use]
pub fn paper_size_ladder() -> Vec<(u32, f64)> {
    (10..=17)
        .map(|s| (s, 2f64.powi(s as i32) / 4096.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_bytes_and_kib() {
        let c = Cost::state(2 * 1024); // 1K two-bit counters
        assert_eq!(c.state_bytes(), 256.0);
        assert_eq!(c.state_kib(), 0.25);
    }

    #[test]
    fn plus_sums_componentwise() {
        let a = Cost {
            state_bits: 10,
            metadata_bits: 3,
        };
        let b = Cost {
            state_bits: 5,
            metadata_bits: 7,
        };
        assert_eq!(
            a.plus(b),
            Cost {
                state_bits: 15,
                metadata_bits: 10
            }
        );
    }

    #[test]
    fn ladder_spans_quarter_to_thirty_two_kib() {
        let ladder = paper_size_ladder();
        assert_eq!(ladder.first(), Some(&(10, 0.25)));
        assert_eq!(ladder.last(), Some(&(17, 32.0)));
        assert_eq!(ladder.len(), 8);
    }

    #[test]
    fn display_mentions_kib() {
        let c = Cost {
            state_bits: 8192,
            metadata_bits: 12,
        };
        assert_eq!(c.to_string(), "1.000 KB state (+12 bits metadata)");
    }
}
