//! The Yeh–Patt two-level adaptive predictor family: GAg, GAs, PAg, PAs
//! (\[YehPatt91\], \[YehPatt92\]).
//!
//! The first level is a branch history (global, or a table of per-address
//! histories); the second level is a set of PHTs selected by branch
//! address bits. In this crate the second level is one physical table
//! indexed by `address_bits` concatenated above `history_bits`
//! (see [`crate::index::gselect_index`]), which is the standard
//! multiple-PHT formulation: the address selects the PHT, the history the
//! entry.

use crate::cost::Cost;
use crate::counter::Counter2;
use crate::history::{GlobalHistory, PerAddressHistories};
use crate::index::gselect_index;
use crate::predictor::{CounterId, Predictor};
use crate::table::CounterTable;

/// Which first-level history the scheme uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistorySource {
    /// One global history register shared by all branches (GAg/GAs).
    Global,
    /// A `2^index_bits`-entry table of per-address histories (PAg/PAs).
    PerAddress {
        /// log2 of the number of first-level history registers.
        index_bits: u32,
    },
    /// A `2^index_bits`-entry table of per-*set* histories (SAg/SAs):
    /// branches are grouped into sets by higher PC bits, so whole code
    /// regions share one history register — the third Yeh–Patt
    /// indexing family from \[YehPatt93\].
    PerSet {
        /// log2 of the number of first-level history registers.
        index_bits: u32,
        /// How many low word-PC bits to skip before taking the set
        /// index (set grouping granularity: a set spans `2^shift`
        /// words).
        shift: u32,
    },
}

/// The Yeh–Patt naming for a [`TwoLevel`] configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoLevelKind {
    /// Global history, single PHT.
    GAg,
    /// Global history, per-address-selected PHTs.
    GAs,
    /// Per-address history, single PHT.
    PAg,
    /// Per-address history, per-address-selected PHTs.
    PAs,
    /// Per-set history, single PHT.
    SAg,
    /// Per-set history, per-address-selected PHTs.
    SAs,
}

impl std::fmt::Display for TwoLevelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TwoLevelKind::GAg => "GAg",
            TwoLevelKind::GAs => "GAs",
            TwoLevelKind::PAg => "PAg",
            TwoLevelKind::PAs => "PAs",
            TwoLevelKind::SAg => "SAg",
            TwoLevelKind::SAs => "SAs",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Clone)]
enum Histories {
    Global(GlobalHistory),
    PerAddress(PerAddressHistories),
    PerSet {
        table: PerAddressHistories,
        shift: u32,
    },
}

/// A two-level adaptive predictor.
///
/// ```
/// use bpred_core::{HistorySource, Predictor, TwoLevel};
///
/// // A GAs with 4 PHTs of 256 entries: 2 address bits, 8 history bits.
/// let mut p = TwoLevel::new(HistorySource::Global, 2, 8);
/// assert_eq!(p.kind().to_string(), "GAs");
/// // Global correlation: an alternating branch becomes predictable.
/// let pc = 0x1000;
/// for i in 0..64 { p.update(pc, i % 2 == 0); }
/// assert_eq!(p.predict(pc), true); // history NTNT... maps to "next is T"
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevel {
    histories: Histories,
    address_bits: u32,
    history_bits: u32,
    table: CounterTable,
}

impl TwoLevel {
    /// Creates a two-level predictor with `2^address_bits` PHTs of
    /// `2^history_bits` entries each.
    ///
    /// # Panics
    ///
    /// Panics if `address_bits + history_bits > 30`, or if a per-address
    /// first level is requested with `index_bits > 30`.
    #[must_use]
    pub fn new(source: HistorySource, address_bits: u32, history_bits: u32) -> Self {
        let histories = match source {
            HistorySource::Global => Histories::Global(GlobalHistory::new(history_bits)),
            HistorySource::PerAddress { index_bits } => {
                Histories::PerAddress(PerAddressHistories::new(index_bits, history_bits))
            }
            HistorySource::PerSet { index_bits, shift } => Histories::PerSet {
                table: PerAddressHistories::new(index_bits, history_bits),
                shift,
            },
        };
        Self {
            histories,
            address_bits,
            history_bits,
            table: CounterTable::new(address_bits + history_bits, Counter2::WEAKLY_TAKEN),
        }
    }

    /// The Yeh–Patt name of this configuration.
    #[must_use]
    pub fn kind(&self) -> TwoLevelKind {
        match (&self.histories, self.address_bits) {
            (Histories::Global(_), 0) => TwoLevelKind::GAg,
            (Histories::Global(_), _) => TwoLevelKind::GAs,
            (Histories::PerAddress(_), 0) => TwoLevelKind::PAg,
            (Histories::PerAddress(_), _) => TwoLevelKind::PAs,
            (Histories::PerSet { .. }, 0) => TwoLevelKind::SAg,
            (Histories::PerSet { .. }, _) => TwoLevelKind::SAs,
        }
    }

    fn history_for(&self, pc: u64) -> u64 {
        match &self.histories {
            Histories::Global(h) => h.value(),
            Histories::PerAddress(t) => t.history(pc).value(),
            Histories::PerSet { table, shift } => table.history(pc >> shift).value(),
        }
    }

    /// The second-level table index consulted for `pc` in the current
    /// state.
    #[must_use]
    pub fn index(&self, pc: u64) -> usize {
        gselect_index(
            pc,
            self.history_for(pc),
            self.address_bits,
            self.history_bits,
        )
    }
}

impl Predictor for TwoLevel {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!(
            "{}(a={},h={})",
            self.kind(),
            self.address_bits,
            self.history_bits
        )
    }

    fn predict(&self, pc: u64) -> bool {
        self.table.predict(self.index(pc))
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table.update(idx, taken);
        match &mut self.histories {
            Histories::Global(h) => h.push(taken),
            Histories::PerAddress(t) => t.push(pc, taken),
            Histories::PerSet { table, shift } => table.push(pc >> *shift, taken),
        }
    }

    fn cost(&self) -> Cost {
        let meta = match &self.histories {
            Histories::Global(h) => u64::from(h.bits()),
            Histories::PerAddress(t) | Histories::PerSet { table: t, .. } => t.storage_bits(),
        };
        Cost {
            state_bits: self.table.storage_bits(),
            metadata_bits: meta,
        }
    }

    fn reset(&mut self) {
        self.table.reset();
        match &mut self.histories {
            Histories::Global(h) => h.reset(),
            Histories::PerAddress(t) => t.reset(),
            Histories::PerSet { table, .. } => table.reset(),
        }
    }

    fn counter_id(&self, pc: u64) -> Option<CounterId> {
        Some(self.index(pc))
    }

    fn num_counters(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification_covers_the_taxonomy() {
        assert_eq!(
            TwoLevel::new(HistorySource::Global, 0, 8).kind(),
            TwoLevelKind::GAg
        );
        assert_eq!(
            TwoLevel::new(HistorySource::Global, 3, 8).kind(),
            TwoLevelKind::GAs
        );
        assert_eq!(
            TwoLevel::new(HistorySource::PerAddress { index_bits: 4 }, 0, 6).kind(),
            TwoLevelKind::PAg
        );
        assert_eq!(
            TwoLevel::new(HistorySource::PerAddress { index_bits: 4 }, 3, 6).kind(),
            TwoLevelKind::PAs
        );
    }

    #[test]
    fn per_set_histories_are_shared_within_a_set() {
        // shift=4: 16 words per set. Two branches in the same set share
        // a history register; a branch in the next set does not.
        let mut p = TwoLevel::new(
            HistorySource::PerSet {
                index_bits: 4,
                shift: 4,
            },
            2,
            4,
        );
        assert_eq!(p.kind(), TwoLevelKind::SAs);
        let (a, b, other) = (0x1000u64, 0x1004u64, 0x1040u64);
        p.update(a, true);
        p.update(a, true);
        // b shares a's set history; other does not.
        assert_eq!(p.history_for(b), 0b11);
        assert_eq!(p.history_for(other), 0);
    }

    #[test]
    fn sag_learns_set_local_patterns() {
        let mut p = TwoLevel::new(
            HistorySource::PerSet {
                index_bits: 4,
                shift: 6,
            },
            0,
            4,
        );
        assert_eq!(p.kind(), TwoLevelKind::SAg);
        let pc = 0x2000;
        let mut late_miss = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            if i >= 100 && p.predict(pc) != taken {
                late_miss += 1;
            }
            p.update(pc, taken);
        }
        assert_eq!(late_miss, 0, "SAg must learn the alternation");
    }

    #[test]
    fn gag_learns_a_global_alternating_pattern() {
        let mut p = TwoLevel::new(HistorySource::Global, 0, 4);
        let pc = 0x100;
        let mut late_miss = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            if i >= 50 && p.predict(pc) != taken {
                late_miss += 1;
            }
            p.update(pc, taken);
        }
        assert_eq!(late_miss, 0, "GAg must lock onto a period-2 pattern");
    }

    #[test]
    fn pag_learns_per_branch_periodic_patterns_despite_interleaving() {
        // Two interleaved branches with different periods: per-address
        // history separates them, which a short global history cannot.
        let mut p = TwoLevel::new(HistorySource::PerAddress { index_bits: 6 }, 0, 6);
        // Adjacent words: distinct first-level history registers.
        let (a, b) = (0x100u64, 0x104u64);
        let mut late_miss = 0;
        for i in 0..600 {
            let ta = i % 2 == 0; // period 2
            let tb = i % 3 == 0; // period 3
            for (pc, t) in [(a, ta), (b, tb)] {
                if i >= 100 && p.predict(pc) != t {
                    late_miss += 1;
                }
                p.update(pc, t);
            }
        }
        assert_eq!(late_miss, 0, "PAg must learn both periodic branches");
    }

    #[test]
    fn gas_address_bits_separate_colliding_branches() {
        // Two branches that always see the same global history pattern
        // (forced by a run of always-taken filler branches that fills the
        // 4-bit history) but have opposite outcomes: GAg (a=0)
        // destructively aliases them at the TTTT counter, GAs (a>0)
        // separates them by address. This is the Section 2.1 problem.
        let run = |address_bits: u32| {
            let mut p = TwoLevel::new(HistorySource::Global, address_bits, 4);
            let (a, b, filler) = (0x1000u64, 0x1004u64, 0x1008u64);
            let mut late_miss = 0;
            for i in 0..400 {
                for (pc, t) in [(a, true), (b, false)] {
                    for _ in 0..4 {
                        p.update(filler, true); // refill history with TTTT
                    }
                    if i >= 100 && p.predict(pc) != t {
                        late_miss += 1;
                    }
                    p.update(pc, t);
                }
            }
            late_miss
        };
        // The aliased counter oscillates between weakly- and strongly-
        // taken, so essentially every execution of the not-taken branch
        // mispredicts (~300 of 600 counted).
        assert!(run(0) >= 290, "GAg should thrash on opposite-bias aliases");
        assert_eq!(run(4), 0, "GAs should separate them");
    }

    #[test]
    fn cost_includes_history_metadata() {
        let g = TwoLevel::new(HistorySource::Global, 2, 8);
        assert_eq!(g.cost().state_bits, 2 * 1024);
        assert_eq!(g.cost().metadata_bits, 8);

        let p = TwoLevel::new(HistorySource::PerAddress { index_bits: 5 }, 0, 8);
        assert_eq!(p.cost().metadata_bits, 32 * 8);
    }

    #[test]
    fn reset_clears_history_and_table() {
        let mut p = TwoLevel::new(HistorySource::Global, 0, 4);
        for i in 0..50 {
            p.update(0x40, i % 2 == 0);
        }
        p.reset();
        let fresh = TwoLevel::new(HistorySource::Global, 0, 4);
        assert_eq!(p.predict(0x40), fresh.predict(0x40));
        assert_eq!(p.index(0x40), fresh.index(0x40));
    }

    #[test]
    fn names_follow_taxonomy() {
        assert_eq!(
            TwoLevel::new(HistorySource::Global, 2, 8).name(),
            "GAs(a=2,h=8)"
        );
        assert_eq!(
            TwoLevel::new(HistorySource::PerAddress { index_bits: 4 }, 0, 6).name(),
            "PAg(a=0,h=6)"
        );
    }
}
