//! Perceptron predictor (Jiménez & Lin, 2001): each branch hashes to a
//! row of signed weights, one per global-history bit; the prediction
//! is the sign of the dot product of weights and history, and training
//! nudges each weight toward agreement with the outcome whenever the
//! prediction was wrong or the margin was below a threshold.
//!
//! Included in the zoo as the neural point on the bi-mode cost axis:
//! its state grows *linearly* with history length where PHT schemes
//! grow exponentially, which is exactly the trade the `zoo.cost`
//! equal-cost sweep interrogates.

use crate::cost::Cost;
use crate::history::{GlobalHistory, MAX_HISTORY_BITS};
use crate::index::{low_bits, pc_word, to_index};
use crate::predictor::Predictor;

/// Signed weight width in bits; i8 weights are the hardware-standard
/// choice and what the cost model charges per (row, history-bit) cell.
pub const WEIGHT_BITS: u32 = 8;

/// A perceptron predictor: `2^rows_bits` rows of `history_bits` signed
/// 8-bit weights (no bias weight, so cost is exactly
/// rows × history bits × 8).
#[derive(Debug, Clone)]
pub struct Perceptron {
    rows: Vec<Vec<i8>>,
    history: GlobalHistory,
    rows_bits: u32,
    history_bits: u32,
    theta: u32,
}

impl Perceptron {
    /// Creates a perceptron table with `2^rows_bits` rows,
    /// `history_bits` of global history and training threshold
    /// `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `rows_bits > 20` or `history_bits` is not 1..=63.
    #[must_use]
    pub fn new(rows_bits: u32, history_bits: u32, theta: u32) -> Self {
        assert!(
            rows_bits <= 20,
            "perceptron row index must be <= 20 bits, got {rows_bits}"
        );
        assert!(
            (1..=MAX_HISTORY_BITS).contains(&history_bits),
            "perceptron history must be 1..=63 bits, got {history_bits}"
        );
        Self {
            rows: vec![vec![0i8; history_bits as usize]; 1usize << rows_bits],
            history: GlobalHistory::new(history_bits),
            rows_bits,
            history_bits,
            theta,
        }
    }

    /// The paper's threshold fit, in integer arithmetic:
    /// `⌊1.93 h + 14⌋`.
    #[must_use]
    pub fn default_theta(history_bits: u32) -> u32 {
        (193 * history_bits + 1400) / 100
    }

    fn row_of(&self, pc: u64) -> usize {
        to_index(low_bits(pc_word(pc), self.rows_bits))
    }

    /// The dot product of the row's weights with the ±1-encoded
    /// history (bit i of the register pairs with weight i).
    fn output(&self, pc: u64) -> i32 {
        let h = self.history.value();
        self.rows[self.row_of(pc)]
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                if (h >> i) & 1 == 1 {
                    i32::from(w)
                } else {
                    -i32::from(w)
                }
            })
            .sum()
    }
}

impl Predictor for Perceptron {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!(
            "perceptron(n={},h={},theta={})",
            self.rows_bits, self.history_bits, self.theta
        )
    }

    fn predict(&self, pc: u64) -> bool {
        self.output(pc) >= 0
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let y = self.output(pc);
        let predicted = y >= 0;
        // Train on any misprediction, and on low-margin correct
        // predictions (|y| <= theta), saturating each weight at the i8
        // rails.
        if predicted != taken || y.unsigned_abs() <= self.theta {
            let h = self.history.value();
            let row = self.row_of(pc);
            for (i, w) in self.rows[row].iter_mut().enumerate() {
                let agrees = ((h >> i) & 1 == 1) == taken;
                *w = if agrees {
                    w.saturating_add(1)
                } else {
                    w.saturating_sub(1)
                };
            }
        }
        self.history.push(taken);
    }

    fn cost(&self) -> Cost {
        Cost {
            // The weights are the prediction state: rows × history
            // bits × 8-bit cells on the paper's state axis.
            state_bits: (u64::from(self.history_bits) * u64::from(WEIGHT_BITS)) << self.rows_bits,
            metadata_bits: u64::from(self.history_bits),
        }
    }

    fn reset(&mut self) {
        for row in &mut self.rows {
            row.iter_mut().for_each(|w| *w = 0);
        }
        self.history.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_rows_times_history_times_weight_bits() {
        let p = Perceptron::new(7, 16, 44);
        assert_eq!(p.cost().state_bits, 128 * 16 * 8);
        assert_eq!(p.cost().metadata_bits, 16);
    }

    #[test]
    fn default_theta_matches_the_paper_fit() {
        assert_eq!(Perceptron::default_theta(16), 44); // 1.93*16+14 = 44.88
        assert_eq!(Perceptron::default_theta(32), 75); // 1.93*32+14 = 75.76
        assert_eq!(Perceptron::default_theta(1), 15);
    }

    #[test]
    fn fresh_perceptron_predicts_taken() {
        // All-zero weights give a zero dot product; ties go taken.
        let p = Perceptron::new(4, 8, 29);
        assert!(p.predict(0x1000));
    }

    #[test]
    fn learns_a_linearly_separable_pattern() {
        // taken = history bit 0 (last outcome repeats): one weight
        // carries the whole function, the perceptron's home turf.
        let mut p = Perceptron::new(4, 8, 29);
        let pc = 0x2000;
        let mut last = true;
        let mut late_miss = 0;
        for i in 0..2000u32 {
            let taken = last;
            if i >= 200 && p.predict(pc) != taken {
                late_miss += 1;
            }
            p.update(pc, taken);
            last = taken;
        }
        assert_eq!(late_miss, 0, "repeat-last is linearly separable");
    }

    #[test]
    fn learns_parity_of_one_bit_against_bias() {
        // taken = NOT bit 1 of history: weights must go negative.
        let mut p = Perceptron::new(2, 4, 21);
        let pc = 0x3000;
        let mut outcomes = [true, true];
        let mut late_miss = 0;
        for i in 0..3000u32 {
            let taken = !outcomes[0];
            if i >= 500 && p.predict(pc) != taken {
                late_miss += 1;
            }
            p.update(pc, taken);
            outcomes = [outcomes[1], taken];
        }
        assert!(late_miss <= 2, "inverted-bit pattern lost ({late_miss})");
    }

    #[test]
    fn weights_saturate_at_the_i8_rails() {
        let mut p = Perceptron::new(1, 2, 1000);
        // theta larger than any margin: every branch trains, and 600
        // same-direction updates drive the weights into saturation
        // (saturating_add, not wraparound — this would panic or flip
        // sign otherwise).
        for _ in 0..600 {
            p.update(0x1000, true);
        }
        assert_eq!(p.rows[0], [127, 127]);
    }

    #[test]
    fn reset_restores_power_on() {
        let mut p = Perceptron::new(3, 6, 25);
        for i in 0..400u64 {
            p.update(0x1000 + (i % 9) * 4, i % 3 == 0);
        }
        p.reset();
        let fresh = Perceptron::new(3, 6, 25);
        for pc in (0..32u64).map(|i| 0x1000 + i * 4) {
            assert_eq!(p.predict(pc), fresh.predict(pc));
        }
    }
}
