//! Static baseline predictors: no state, no learning.

use crate::cost::Cost;
use crate::predictor::Predictor;

/// Predicts every branch taken. The classic static lower bound
/// (\[Smith81\] baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlwaysTaken;

impl Predictor for AlwaysTaken {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(*self)
    }

    fn name(&self) -> String {
        "always-taken".to_owned()
    }

    fn predict(&self, _pc: u64) -> bool {
        true
    }

    fn update(&mut self, _pc: u64, _taken: bool) {}

    fn cost(&self) -> Cost {
        Cost::default()
    }

    fn reset(&mut self) {}
}

/// Predicts every branch not-taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlwaysNotTaken;

impl Predictor for AlwaysNotTaken {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(*self)
    }

    fn name(&self) -> String {
        "always-not-taken".to_owned()
    }

    fn predict(&self, _pc: u64) -> bool {
        false
    }

    fn update(&mut self, _pc: u64, _taken: bool) {}

    fn cost(&self) -> Cost {
        Cost::default()
    }

    fn reset(&mut self) {}
}

/// Backward-taken / forward-not-taken: the classic static heuristic
/// (loop-closing branches jump backwards and are usually taken; forward
/// branches guard exceptional paths and are usually not). Needs the
/// decoded target, so it predicts through
/// [`Predictor::predict_with_target`]; plain `predict` (no target)
/// falls back to taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Btfnt;

impl Predictor for Btfnt {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(*self)
    }

    fn name(&self) -> String {
        "btfnt".to_owned()
    }

    fn predict(&self, _pc: u64) -> bool {
        true
    }

    fn predict_with_target(&self, pc: u64, target: u64) -> bool {
        target < pc
    }

    fn update(&mut self, _pc: u64, _taken: bool) {}

    fn cost(&self) -> Cost {
        Cost::default()
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btfnt_follows_the_target_direction() {
        let p = Btfnt;
        assert!(p.predict_with_target(0x1000, 0x0F00), "backward -> taken");
        assert!(
            !p.predict_with_target(0x1000, 0x1100),
            "forward -> not taken"
        );
        assert!(
            !p.predict_with_target(0x1000, 0x1000),
            "self-loop counts as forward"
        );
        assert!(p.predict(0x1000), "without a target, fall back to taken");
        assert_eq!(p.cost().state_bits, 0);
    }

    #[test]
    fn statics_are_constant_and_free() {
        let mut t = AlwaysTaken;
        let mut n = AlwaysNotTaken;
        for pc in [0u64, 4, 0x8000_0000] {
            assert!(t.predict(pc));
            assert!(!n.predict(pc));
            t.update(pc, false);
            n.update(pc, true);
        }
        assert!(t.predict(0));
        assert!(!n.predict(0));
        assert_eq!(t.cost().state_bits, 0);
        assert_eq!(n.cost().state_bits, 0);
    }
}
