//! 2bc-gskew (Seznec & Michaud's de-aliased hybrid, the Alpha EV8
//! lineage): a bimodal bank, two skewed global-history banks with
//! different history lengths, and a meta chooser between the bimodal
//! prediction and the three-way e-gskew majority.
//!
//! Included as the end point of the de-aliasing lineage the bi-mode
//! paper opens (Section 2.1 cites the skewed predictor; 2bc-gskew is
//! its hybrid refinement), for the `compare-dealias` experiment.

use crate::cost::Cost;
use crate::counter::Counter2;
use crate::history::GlobalHistory;
use crate::index::{gshare_index, low_bits, pc_word, skew_index};
use crate::predictor::{CounterId, Predictor};
use crate::table::CounterTable;

/// A 2bc-gskew predictor: four `2^bank_bits` banks (BIM, G0, G1, META).
#[derive(Debug, Clone)]
pub struct TwoBcGskew {
    bim: CounterTable,
    g0: CounterTable,
    g1: CounterTable,
    meta: CounterTable,
    history: GlobalHistory,
    bank_bits: u32,
    short_history: u32,
    long_history: u32,
}

#[derive(Debug, Clone, Copy)]
struct Lookup {
    bim_index: usize,
    g0_index: usize,
    g1_index: usize,
    meta_index: usize,
    bim: bool,
    g0: bool,
    g1: bool,
    egskew: bool,
    use_egskew: bool,
    prediction: bool,
}

impl TwoBcGskew {
    /// Creates a 2bc-gskew with `2^bank_bits` counters per bank and a
    /// `long_history`-bit global history (the short history is half of
    /// it).
    ///
    /// # Panics
    ///
    /// Panics if `bank_bits` is zero or greater than 30, or
    /// `long_history > bank_bits`.
    #[must_use]
    pub fn new(bank_bits: u32, long_history: u32) -> Self {
        assert!(
            long_history <= bank_bits,
            "2bc-gskew history ({long_history}) must not exceed bank index bits ({bank_bits})"
        );
        Self {
            bim: CounterTable::new(bank_bits, Counter2::WEAKLY_TAKEN),
            g0: CounterTable::new(bank_bits, Counter2::WEAKLY_TAKEN),
            g1: CounterTable::new(bank_bits, Counter2::WEAKLY_TAKEN),
            meta: CounterTable::new(bank_bits, Counter2::WEAKLY_TAKEN),
            history: GlobalHistory::new(long_history),
            bank_bits,
            short_history: long_history / 2,
            long_history,
        }
    }

    fn lookup(&self, pc: u64) -> Lookup {
        let hist = self.history.value();
        let bim_index = low_bits(pc_word(pc), self.bank_bits) as usize;
        let g0_index = skew_index(pc, hist, self.bank_bits, self.short_history, 1);
        let g1_index = skew_index(pc, hist, self.bank_bits, self.long_history, 2);
        let meta_index = gshare_index(pc, hist, self.bank_bits, self.short_history);
        let bim = self.bim.predict(bim_index);
        let g0 = self.g0.predict(g0_index);
        let g1 = self.g1.predict(g1_index);
        let egskew = (u8::from(bim) + u8::from(g0) + u8::from(g1)) >= 2;
        let use_egskew = self.meta.predict(meta_index);
        let prediction = if use_egskew { egskew } else { bim };
        Lookup {
            bim_index,
            g0_index,
            g1_index,
            meta_index,
            bim,
            g0,
            g1,
            egskew,
            use_egskew,
            prediction,
        }
    }

    /// Whether the meta chooser currently selects the e-gskew majority
    /// (rather than the bimodal bank) for `pc`.
    #[must_use]
    pub fn uses_egskew(&self, pc: u64) -> bool {
        self.lookup(pc).use_egskew
    }
}

impl Predictor for TwoBcGskew {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("2bc-gskew(s={},h={})", self.bank_bits, self.long_history)
    }

    fn predict(&self, pc: u64) -> bool {
        self.lookup(pc).prediction
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let l = self.lookup(pc);
        let correct = l.prediction == taken;

        // Meta: trains only when the two components disagree, toward
        // whichever was right.
        if l.bim != l.egskew {
            self.meta.update(l.meta_index, l.egskew == taken);
        }

        if correct {
            // Partial update: strengthen only the participating banks
            // that voted for the (correct) prediction.
            if l.use_egskew {
                if l.bim == taken {
                    self.bim.update(l.bim_index, taken);
                }
                if l.g0 == taken {
                    self.g0.update(l.g0_index, taken);
                }
                if l.g1 == taken {
                    self.g1.update(l.g1_index, taken);
                }
            } else {
                self.bim.update(l.bim_index, taken);
            }
        } else {
            // Total reallocation on a misprediction.
            self.bim.update(l.bim_index, taken);
            self.g0.update(l.g0_index, taken);
            self.g1.update(l.g1_index, taken);
        }

        self.history.push(taken);
    }

    fn cost(&self) -> Cost {
        Cost {
            state_bits: self.bim.storage_bits()
                + self.g0.storage_bits()
                + self.g1.storage_bits()
                + self.meta.storage_bits(),
            metadata_bits: u64::from(self.long_history),
        }
    }

    fn reset(&mut self) {
        self.bim.reset();
        self.g0.reset();
        self.g1.reset();
        self.meta.reset();
        self.history.reset();
    }

    // Majority voting has no single final-direction counter when the
    // e-gskew side is selected, so the bias analysis does not apply.
    fn counter_id(&self, _pc: u64) -> Option<CounterId> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches() {
        // Measure in program order (predict immediately before update),
        // so each query sees the same history context it trains in.
        let mut p = TwoBcGskew::new(8, 8);
        let (a, b) = (0x1000u64, 0x1004u64);
        let mut late_miss = 0;
        for i in 0..200 {
            for (pc, taken) in [(a, true), (b, false)] {
                if i >= 20 && p.predict(pc) != taken {
                    late_miss += 1;
                }
                p.update(pc, taken);
            }
        }
        assert_eq!(late_miss, 0, "both biased branches must be learned");
    }

    #[test]
    fn learns_history_patterns_through_the_g_banks() {
        let mut p = TwoBcGskew::new(10, 10);
        let pc = 0x2000;
        let mut late_miss = 0;
        for i in 0..2000 {
            let taken = i % 4 == 0;
            if i >= 500 && p.predict(pc) != taken {
                late_miss += 1;
            }
            p.update(pc, taken);
        }
        assert!(
            late_miss <= 4,
            "period-4 pattern must be learned ({late_miss})"
        );
    }

    #[test]
    fn meta_rescues_bimodal_friendly_branches_under_history_noise() {
        // One strongly biased branch surrounded by noise branches that
        // churn the global history: the tiny G banks alias, the bimodal
        // bank is stable, so the meta chooser must protect the branch.
        let mut p = TwoBcGskew::new(5, 5); // 32-entry banks
        let target = 0x4000u64;
        let mut x = 0x12345u64;
        let mut late_miss = 0;
        for i in 0..4000 {
            // three noise branches with pseudo-random outcomes
            for n in 0..3u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                p.update(0x5000 + n * 4, x & 1 == 1);
            }
            if i >= 1000 && !p.predict(target) {
                late_miss += 1;
            }
            p.update(target, true);
        }
        assert!(
            late_miss <= 40,
            "meta must shield the biased branch from G-bank noise ({late_miss}/3000)"
        );
    }

    #[test]
    fn update_is_partial_on_correct_predictions() {
        let mut p = TwoBcGskew::new(6, 6);
        let pc = 0x1000;
        for _ in 0..6 {
            p.update(pc, true);
        }
        // Force G0 to dissent, then predict correctly via majority.
        let l = p.lookup(pc);
        for _ in 0..3 {
            p.g0.update(l.g0_index, false);
        }
        let dissent = p.g0.counter(p.lookup(pc).g0_index);
        let before_meta = p.meta.counter(p.lookup(pc).meta_index);
        p.update(pc, true); // correct (bim=g1=taken)
        assert_eq!(
            p.g0.counter(l.g0_index),
            dissent,
            "a dissenting bank must not strengthen on a correct prediction"
        );
        let _ = before_meta;
    }

    #[test]
    fn all_banks_train_on_misprediction() {
        let mut p = TwoBcGskew::new(6, 0);
        let pc = 0x1000;
        let l = p.lookup(pc);
        assert!(l.prediction, "fresh state predicts taken");
        p.update(pc, false);
        let l2 = p.lookup(pc);
        // With zero history the indices are unchanged; every bank must
        // have moved one step toward not-taken.
        assert_eq!(p.bim.counter(l2.bim_index).state(), 1);
        assert_eq!(p.g0.counter(l2.g0_index).state(), 1);
        assert_eq!(p.g1.counter(l2.g1_index).state(), 1);
    }

    #[test]
    fn cost_counts_four_banks() {
        let p = TwoBcGskew::new(8, 8);
        assert_eq!(p.cost().state_bits, 4 * 2 * 256);
        assert_eq!(p.cost().metadata_bits, 8);
        assert_eq!(p.num_counters(), 0, "majority vote: no single counter");
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut p = TwoBcGskew::new(6, 6);
        for i in 0..300u64 {
            p.update(0x1000 + (i % 11) * 4, i % 3 == 0);
        }
        p.reset();
        let fresh = TwoBcGskew::new(6, 6);
        for pc in (0..64u64).map(|i| 0x1000 + i * 4) {
            assert_eq!(p.predict(pc), fresh.predict(pc));
        }
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn rejects_overlong_history() {
        let _ = TwoBcGskew::new(6, 7);
    }
}
