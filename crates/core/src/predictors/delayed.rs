//! A delayed-update wrapper: models the pipeline reality that a
//! predictor's tables are only trained when a branch *resolves*, many
//! fetches after the prediction was made.
//!
//! The paper's methodology (like most trace-driven studies of its era)
//! updates immediately after each prediction; this wrapper quantifies
//! how much that idealisation matters by holding every update in a
//! FIFO of configurable depth. With `delay = 0` the wrapper is an
//! identity.

use std::collections::VecDeque;

use crate::cost::Cost;
use crate::predictor::{CounterId, Predictor};

/// Wraps a predictor so updates take effect `delay` branches late.
#[derive(Debug, Clone)]
pub struct DelayedUpdate<P> {
    inner: P,
    delay: usize,
    in_flight: VecDeque<(u64, bool)>,
}

impl<P: Predictor> DelayedUpdate<P> {
    /// Wraps `inner` with a resolution latency of `delay` branches.
    #[must_use]
    pub fn new(inner: P, delay: usize) -> Self {
        Self {
            inner,
            delay,
            in_flight: VecDeque::with_capacity(delay + 1),
        }
    }

    /// The configured latency.
    #[must_use]
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Gives back the wrapped predictor, discarding unresolved updates.
    #[must_use]
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Predictor + Clone + 'static> Predictor for DelayedUpdate<P> {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("{}+delay={}", self.inner.name(), self.delay)
    }

    fn predict(&self, pc: u64) -> bool {
        self.inner.predict(pc)
    }

    fn predict_with_target(&self, pc: u64, target: u64) -> bool {
        self.inner.predict_with_target(pc, target)
    }

    fn update(&mut self, pc: u64, taken: bool) {
        self.in_flight.push_back((pc, taken));
        if self.in_flight.len() > self.delay {
            if let Some((resolved_pc, resolved_taken)) = self.in_flight.pop_front() {
                self.inner.update(resolved_pc, resolved_taken);
            }
        }
    }

    fn cost(&self) -> Cost {
        // The FIFO is pipeline bookkeeping: PC + outcome per slot.
        let mut cost = self.inner.cost();
        cost.metadata_bits += self.delay as u64 * 65;
        cost
    }

    fn reset(&mut self) {
        self.in_flight.clear();
        self.inner.reset();
    }

    fn counter_id(&self, pc: u64) -> Option<CounterId> {
        self.inner.counter_id(pc)
    }

    fn num_counters(&self) -> usize {
        self.inner.num_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::bimodal::Bimodal;
    use crate::predictors::gshare::Gshare;

    #[test]
    fn zero_delay_is_identity() {
        let mut wrapped = DelayedUpdate::new(Gshare::new(8, 8), 0);
        let mut plain = Gshare::new(8, 8);
        for i in 0..500u64 {
            let pc = 0x1000 + (i % 37) * 4;
            let taken = i % 3 == 0;
            assert_eq!(wrapped.predict(pc), plain.predict(pc), "step {i}");
            wrapped.update(pc, taken);
            plain.update(pc, taken);
        }
    }

    #[test]
    fn updates_arrive_exactly_delay_late() {
        let mut p = DelayedUpdate::new(Bimodal::new(6), 3);
        let pc = 0x100;
        // Three not-taken outcomes queued; none applied yet.
        for _ in 0..3 {
            p.update(pc, false);
        }
        assert!(p.predict(pc), "inner table must still be at init");
        // The fourth update releases the first.
        p.update(pc, false);
        assert!(!p.predict(pc), "first outcome must now be visible");
    }

    #[test]
    fn delay_hurts_sticky_stochastic_branches() {
        // A "sticky" stochastic branch (outcome repeats the previous
        // one with p ~ 0.9): fresh history predicts continuation well,
        // but with a deep update delay the effective history is stale
        // and the correlation has decayed. Deterministic xorshift noise
        // keeps the test reproducible.
        let run = |delay: usize| {
            let mut p = DelayedUpdate::new(Gshare::new(10, 10), delay);
            let mut x = 0x9E3779B97F4A7C15u64;
            let mut taken = true;
            let mut miss = 0;
            for i in 0..20_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x.is_multiple_of(10) {
                    taken = !taken; // switch runs ~10% of the time
                }
                if i >= 2_000 && p.predict(0x40) != taken {
                    miss += 1;
                }
                p.update(0x40, taken);
            }
            miss
        };
        let immediate = run(0);
        let delayed = run(16);
        assert!(
            delayed > immediate + immediate / 4,
            "16-deep delay should clearly cost accuracy: {immediate} vs {delayed}"
        );
    }

    #[test]
    fn reset_drops_in_flight_updates() {
        let mut p = DelayedUpdate::new(Bimodal::new(6), 4);
        for _ in 0..3 {
            p.update(0x40, false);
        }
        p.reset();
        p.update(0x40, true); // queue: 1 entry, nothing released
        assert!(p.predict(0x40), "reset must have cleared the queue");
    }

    #[test]
    fn name_and_cost_reflect_the_wrapper() {
        let p = DelayedUpdate::new(Bimodal::new(8), 5);
        assert_eq!(p.name(), "bimodal(s=8)+delay=5");
        assert_eq!(p.cost().metadata_bits, 5 * 65);
        assert_eq!(p.delay(), 5);
        let inner = p.into_inner();
        assert_eq!(inner.name(), "bimodal(s=8)");
    }
}
