//! The agree predictor (\[Sprangle97\], cited in Section 2.1): PHT counters
//! predict *agreement with a per-branch bias bit* instead of a direction,
//! converting destructive aliasing between opposite-biased branches into
//! harmless aliasing between agreeing ones.
//!
//! In hardware the bias bit lives in the BTB; here it is a direct-mapped
//! one-bit table set on first encounter (a standard simulation
//! idealisation, counted as predictor state plus a valid bit of
//! metadata).

use crate::cost::Cost;
use crate::counter::Counter2;
use crate::history::GlobalHistory;
use crate::index::{gshare_index, low_bits, pc_word};
use crate::predictor::{CounterId, Predictor};
use crate::table::CounterTable;

/// An agree predictor with a `2^table_bits` agreement PHT and a
/// `2^bias_bits` bias-bit table.
#[derive(Debug, Clone)]
pub struct Agree {
    pht: CounterTable,
    bias: Vec<bool>,
    seen: Vec<bool>,
    history: GlobalHistory,
    table_bits: u32,
    history_bits: u32,
    bias_bits: u32,
}

impl Agree {
    /// Creates an agree predictor. The agreement PHT is initialised
    /// weakly-agree; unseen branches are assumed biased taken.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits > 30`, `bias_bits > 30`, or
    /// `history_bits > table_bits`.
    #[must_use]
    pub fn new(table_bits: u32, history_bits: u32, bias_bits: u32) -> Self {
        assert!(
            history_bits <= table_bits,
            "agree history ({history_bits}) must not exceed PHT index bits ({table_bits})"
        );
        assert!(bias_bits <= 30, "bias table index must be <= 30 bits");
        Self {
            pht: CounterTable::new(table_bits, Counter2::WEAKLY_TAKEN),
            bias: vec![true; 1usize << bias_bits],
            seen: vec![false; 1usize << bias_bits],
            history: GlobalHistory::new(history_bits),
            table_bits,
            history_bits,
            bias_bits,
        }
    }

    fn pht_index(&self, pc: u64) -> usize {
        gshare_index(pc, self.history.value(), self.table_bits, self.history_bits)
    }

    fn bias_index(&self, pc: u64) -> usize {
        low_bits(pc_word(pc), self.bias_bits) as usize
    }

    /// The bias bit currently assigned to the branch at `pc`.
    #[must_use]
    pub fn bias_bit(&self, pc: u64) -> bool {
        self.bias[self.bias_index(pc)]
    }
}

impl Predictor for Agree {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!(
            "agree(s={},h={},b={})",
            self.table_bits, self.history_bits, self.bias_bits
        )
    }

    fn predict(&self, pc: u64) -> bool {
        let agree = self.pht.predict(self.pht_index(pc));
        let bias = self.bias[self.bias_index(pc)];
        if agree {
            bias
        } else {
            !bias
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let bi = self.bias_index(pc);
        if !self.seen[bi] {
            // First encounter sets the bias, so this branch agrees with
            // itself by construction.
            self.seen[bi] = true;
            self.bias[bi] = taken;
        }
        let agreed = taken == self.bias[bi];
        let pi = self.pht_index(pc);
        self.pht.update(pi, agreed);
        self.history.push(taken);
    }

    fn cost(&self) -> Cost {
        Cost {
            // Agreement counters plus the bias bits are prediction state.
            state_bits: self.pht.storage_bits() + self.bias.len() as u64,
            // Valid bits and the history register are bookkeeping.
            metadata_bits: self.seen.len() as u64 + u64::from(self.history_bits),
        }
    }

    fn reset(&mut self) {
        self.pht.reset();
        self.bias.iter_mut().for_each(|b| *b = true);
        self.seen.iter_mut().for_each(|s| *s = false);
        self.history.reset();
    }

    fn counter_id(&self, pc: u64) -> Option<CounterId> {
        Some(self.pht_index(pc))
    }

    fn num_counters(&self) -> usize {
        self.pht.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_outcome_sets_the_bias() {
        let mut p = Agree::new(8, 8, 8);
        p.update(0x1000, false);
        assert!(!p.bias_bit(0x1000));
        // Later flips do not move the bias bit.
        p.update(0x1000, true);
        assert!(!p.bias_bit(0x1000));
    }

    #[test]
    fn opposite_biased_aliases_become_harmless() {
        // Two branches colliding in the PHT with opposite biases: both
        // "agree" with their own bias, so the shared counter saturates at
        // agree and neither thrashes — the scheme's selling point.
        let s = 4u32;
        let mut p = Agree::new(s, 0, 10);
        let a = 0x1000u64;
        let b = a + (1u64 << (s + 2));
        assert_eq!(p.pht_index(a), p.pht_index(b));
        let mut late_miss = 0;
        for i in 0..400 {
            for (pc, t) in [(a, true), (b, false)] {
                if i >= 100 && p.predict(pc) != t {
                    late_miss += 1;
                }
                p.update(pc, t);
            }
        }
        assert_eq!(
            late_miss, 0,
            "agree should neutralise the opposite-bias alias"
        );
    }

    #[test]
    fn still_tracks_history_deviations_from_bias() {
        // A branch biased taken that goes not-taken whenever the last two
        // outcomes were taken: the agreement PHT learns the exception
        // pattern through history.
        let mut p = Agree::new(10, 10, 8);
        let pc = 0x2000;
        let mut late_miss = 0;
        let mut hist2 = (false, false);
        for i in 0..2000 {
            let taken = !(hist2.0 && hist2.1);
            if i >= 500 && p.predict(pc) != taken {
                late_miss += 1;
            }
            p.update(pc, taken);
            hist2 = (hist2.1, taken);
        }
        assert!(
            late_miss <= 4,
            "agree lost the exception pattern ({late_miss})"
        );
    }

    #[test]
    fn unseen_branches_default_to_taken_bias() {
        let p = Agree::new(6, 0, 6);
        assert!(p.predict(0x1234 & !3));
    }

    #[test]
    fn cost_accounts_bias_bits_as_state() {
        let p = Agree::new(10, 8, 9);
        assert_eq!(p.cost().state_bits, 2 * 1024 + 512);
        assert_eq!(p.cost().metadata_bits, 512 + 8);
    }

    #[test]
    fn reset_clears_bias_learning() {
        let mut p = Agree::new(8, 4, 8);
        p.update(0x1000, false);
        p.reset();
        assert!(p.bias_bit(0x1000), "bias must return to the unseen default");
    }
}
