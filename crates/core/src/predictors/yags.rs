//! YAGS — "Yet Another Global Scheme" (Eden & Mudge, 1998): the direct
//! successor of the bi-mode predictor from the same group, implementing
//! the paper's stated future-work direction of separating weakly-biased
//! substreams further. The direction banks become small *tagged caches*
//! that store only the exceptions to the choice predictor's bias.

use crate::cost::Cost;
use crate::counter::Counter2;
use crate::history::GlobalHistory;
use crate::index::{gshare_index, low_bits, pc_word};
use crate::predictor::{CounterId, Predictor};
use crate::table::CounterTable;

/// One entry of a YAGS direction cache.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    tag: u16,
    counter: Counter2,
    valid: bool,
}

impl CacheEntry {
    fn empty() -> Self {
        Self {
            tag: 0,
            counter: Counter2::WEAKLY_TAKEN,
            valid: false,
        }
    }
}

/// A tagged exception cache: records branches that deviate from the
/// choice predictor's bias under particular history patterns.
#[derive(Debug, Clone)]
struct DirectionCache {
    entries: Vec<CacheEntry>,
    index_bits: u32,
    tag_bits: u32,
}

impl DirectionCache {
    fn new(index_bits: u32, tag_bits: u32) -> Self {
        Self {
            entries: vec![CacheEntry::empty(); 1usize << index_bits],
            index_bits,
            tag_bits,
        }
    }

    fn tag_of(&self, pc: u64) -> u16 {
        low_bits(pc_word(pc), self.tag_bits) as u16
    }

    fn lookup(&self, pc: u64, history: u64, m: u32) -> (usize, Option<Counter2>) {
        let idx = gshare_index(pc, history, self.index_bits, m.min(self.index_bits));
        let e = self.entries[idx];
        let hit = e.valid && e.tag == self.tag_of(pc);
        (idx, hit.then_some(e.counter))
    }

    fn train(&mut self, idx: usize, pc: u64, taken: bool, allocate: bool) {
        let tag = self.tag_of(pc);
        let e = &mut self.entries[idx];
        if e.valid && e.tag == tag {
            e.counter.update(taken);
        } else if allocate {
            *e = CacheEntry {
                tag,
                counter: Counter2::from_state(if taken { 2 } else { 1 }),
                valid: true,
            };
        }
    }

    fn storage(&self) -> (u64, u64) {
        let n = self.entries.len() as u64;
        // counters are state; tags and valid bits are metadata
        (2 * n, n * (u64::from(self.tag_bits) + 1))
    }

    fn reset(&mut self) {
        self.entries
            .iter_mut()
            .for_each(|e| *e = CacheEntry::empty());
    }
}

/// A YAGS predictor: a bimodal choice PHT plus two tagged exception
/// caches (one per direction).
#[derive(Debug, Clone)]
pub struct Yags {
    choice: CounterTable,
    caches: [DirectionCache; 2], // [not-taken exceptions, taken exceptions]
    history: GlobalHistory,
    choice_bits: u32,
    cache_bits: u32,
    history_bits: u32,
    tag_bits: u32,
}

impl Yags {
    /// Creates a YAGS predictor with a `2^choice_bits` choice PHT, two
    /// `2^cache_bits` exception caches with `tag_bits`-bit partial tags,
    /// and `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if any width exceeds 30 bits or `tag_bits > 16`.
    #[must_use]
    pub fn new(choice_bits: u32, cache_bits: u32, history_bits: u32, tag_bits: u32) -> Self {
        assert!(
            tag_bits <= 16,
            "partial tags are at most 16 bits, got {tag_bits}"
        );
        Self {
            choice: CounterTable::new(choice_bits, Counter2::WEAKLY_TAKEN),
            caches: [
                DirectionCache::new(cache_bits, tag_bits),
                DirectionCache::new(cache_bits, tag_bits),
            ],
            history: GlobalHistory::new(history_bits),
            choice_bits,
            cache_bits,
            history_bits,
            tag_bits,
        }
    }

    fn choice_index(&self, pc: u64) -> usize {
        low_bits(pc_word(pc), self.choice_bits) as usize
    }

    /// (choice direction, consulted cache index, cache hit counter)
    fn lookup(&self, pc: u64) -> (bool, usize, Option<Counter2>) {
        let bias = self.choice.predict(self.choice_index(pc));
        // A taken bias consults the NOT-taken exception cache (cache 0),
        // and vice versa.
        let cache = usize::from(!bias);
        let (idx, hit) = self.caches[cache].lookup(pc, self.history.value(), self.history_bits);
        (bias, idx, hit)
    }
}

impl Predictor for Yags {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!(
            "yags(c={},e={},h={},t={})",
            self.choice_bits, self.cache_bits, self.history_bits, self.tag_bits
        )
    }

    fn predict(&self, pc: u64) -> bool {
        let (bias, _idx, hit) = self.lookup(pc);
        match hit {
            Some(counter) => counter.predict(),
            None => bias,
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let (bias, idx, hit) = self.lookup(pc);
        let prediction = hit.map_or(bias, Counter2::predict);
        let cache = usize::from(!bias);

        // Train the exception cache: always on a hit; allocate when the
        // outcome contradicts the bias (a new exception).
        let allocate = taken != bias;
        if hit.is_some() || allocate {
            self.caches[cache].train(idx, pc, taken, allocate);
        }

        // Choice PHT follows the bi-mode partial-update rule.
        let save = bias != taken && prediction == taken;
        if !save {
            let ci = self.choice_index(pc);
            self.choice.update(ci, taken);
        }

        self.history.push(taken);
    }

    fn cost(&self) -> Cost {
        let mut cost = Cost {
            state_bits: self.choice.storage_bits(),
            metadata_bits: u64::from(self.history_bits),
        };
        for c in &self.caches {
            let (state, meta) = c.storage();
            cost.state_bits += state;
            cost.metadata_bits += meta;
        }
        cost
    }

    fn reset(&mut self) {
        self.choice.reset();
        self.caches.iter_mut().for_each(DirectionCache::reset);
        self.history.reset();
    }

    fn counter_id(&self, pc: u64) -> Option<CounterId> {
        // The consulted counter is either a cache entry or the choice
        // counter; ids: [0, 2*cache_len) for caches, then choice.
        let (_bias, idx, hit) = self.lookup(pc);
        let cache_len = self.caches[0].entries.len();
        match hit {
            Some(_) => {
                let (bias, _, _) = self.lookup(pc);
                let cache = usize::from(!bias);
                Some(cache * cache_len + idx)
            }
            None => Some(2 * cache_len + self.choice_index(pc)),
        }
    }

    fn num_counters(&self) -> usize {
        2 * self.caches[0].entries.len() + self.choice.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_branch_never_allocates_exceptions() {
        let mut p = Yags::new(8, 6, 6, 6);
        let pc = 0x1000;
        for _ in 0..50 {
            p.update(pc, true);
        }
        assert!(p.predict(pc));
        assert!(
            p.caches.iter().all(|c| c.entries.iter().all(|e| !e.valid)),
            "an always-taken branch must not consume exception-cache space"
        );
    }

    #[test]
    fn exception_is_cached_and_predicted() {
        // Branch biased taken except when the last outcome was taken
        // twice in a row: exceptions land in the NT-cache.
        let mut p = Yags::new(8, 8, 8, 6);
        let pc = 0x2000;
        let mut hist2 = (false, false);
        let mut late_miss = 0;
        for i in 0..2000 {
            let taken = !(hist2.0 && hist2.1);
            if i >= 500 && p.predict(pc) != taken {
                late_miss += 1;
            }
            p.update(pc, taken);
            hist2 = (hist2.1, taken);
        }
        assert!(
            late_miss <= 4,
            "yags lost the exception pattern ({late_miss})"
        );
        assert!(
            p.caches[0].entries.iter().any(|e| e.valid),
            "exceptions must have been allocated in the NT cache"
        );
    }

    #[test]
    fn tags_separate_aliasing_exceptions() {
        // Two branches whose exceptions collide in the cache index but
        // differ in tag: the second allocation evicts, but a tag mismatch
        // never returns the wrong branch's counter.
        let p = Yags::new(6, 4, 0, 8);
        let a = 0x1000u64;
        let b = a + (1u64 << (4 + 2)); // same cache index, different tag
        let (ia, _) = p.caches[0].lookup(a, 0, 0);
        let (ib, _) = p.caches[0].lookup(b, 0, 0);
        assert_eq!(ia, ib);
        assert_ne!(p.caches[0].tag_of(a), p.caches[0].tag_of(b));
    }

    #[test]
    fn separates_destructive_aliases() {
        // Same microbenchmark as the bi-mode test: opposite-biased
        // branches sharing PHT slots.
        let mut p = Yags::new(8, 6, 0, 6);
        let a = 0x1000u64;
        let b = a + (1u64 << 8);
        let mut late_miss = 0;
        for i in 0..500 {
            for (pc, t) in [(a, true), (b, false)] {
                if i >= 100 && p.predict(pc) != t {
                    late_miss += 1;
                }
                p.update(pc, t);
            }
        }
        assert_eq!(late_miss, 0, "yags should separate opposite-biased aliases");
    }

    #[test]
    fn cost_counts_tags_as_metadata() {
        let p = Yags::new(10, 8, 8, 6);
        // choice 2*1024 + 2 caches * 2*256 state bits
        assert_eq!(p.cost().state_bits, 2048 + 1024);
        // tags+valid 2*256*7 + history 8
        assert_eq!(p.cost().metadata_bits, 2 * 256 * 7 + 8);
    }

    #[test]
    fn counter_ids_stay_in_range() {
        let mut p = Yags::new(6, 4, 4, 6);
        for i in 0..500u64 {
            let pc = 0x1000 + (i % 37) * 4;
            let id = p.counter_id(pc).unwrap();
            assert!(id < p.num_counters());
            p.update(pc, i % 3 != 0);
        }
    }

    #[test]
    fn reset_clears_caches() {
        let mut p = Yags::new(6, 4, 4, 6);
        for i in 0..200u64 {
            p.update(0x1000 + (i % 7) * 4, i % 2 == 0);
        }
        p.reset();
        assert!(p.caches.iter().all(|c| c.entries.iter().all(|e| !e.valid)));
    }
}
