//! McFarling's gselect predictor: address and history bits concatenated
//! rather than XOR-ed. Included as the address/history trade-off's other
//! pole in the design-space studies.

use crate::cost::Cost;
use crate::counter::Counter2;
use crate::history::GlobalHistory;
use crate::index::gselect_index;
use crate::predictor::{CounterId, Predictor};
use crate::table::CounterTable;

/// A gselect predictor with `2^(a+m)` counters: `a` address bits
/// concatenated above `m` global-history bits.
#[derive(Debug, Clone)]
pub struct Gselect {
    table: CounterTable,
    history: GlobalHistory,
    address_bits: u32,
    history_bits: u32,
}

impl Gselect {
    /// Creates a gselect predictor.
    ///
    /// # Panics
    ///
    /// Panics if `address_bits + history_bits > 30`.
    #[must_use]
    pub fn new(address_bits: u32, history_bits: u32) -> Self {
        Self {
            table: CounterTable::new(address_bits + history_bits, Counter2::WEAKLY_TAKEN),
            history: GlobalHistory::new(history_bits),
            address_bits,
            history_bits,
        }
    }

    /// The table index consulted for `pc` in the current state.
    #[must_use]
    pub fn index(&self, pc: u64) -> usize {
        gselect_index(
            pc,
            self.history.value(),
            self.address_bits,
            self.history_bits,
        )
    }
}

impl Predictor for Gselect {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("gselect(a={},h={})", self.address_bits, self.history_bits)
    }

    fn predict(&self, pc: u64) -> bool {
        self.table.predict(self.index(pc))
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table.update(idx, taken);
        self.history.push(taken);
    }

    fn cost(&self) -> Cost {
        Cost {
            state_bits: self.table.storage_bits(),
            metadata_bits: u64::from(self.history_bits),
        }
    }

    fn reset(&mut self) {
        self.table.reset();
        self.history.reset();
    }

    fn counter_id(&self, pc: u64) -> Option<CounterId> {
        Some(self.index(pc))
    }

    fn num_counters(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::two_level::{HistorySource, TwoLevel};

    #[test]
    fn gselect_is_a_gas_in_disguise() {
        // gselect(a, m) and GAs(a, m) compute the same index function and
        // must therefore behave identically on any stream.
        let mut gsel = Gselect::new(3, 5);
        let mut gas = TwoLevel::new(HistorySource::Global, 3, 5);
        for i in 0..500u64 {
            let pc = 0x1000 + (i % 13) * 4;
            let taken = (i * 5) % 7 < 3;
            assert_eq!(gsel.predict(pc), gas.predict(pc), "step {i}");
            assert_eq!(gsel.index(pc), gas.index(pc), "step {i}");
            gsel.update(pc, taken);
            gas.update(pc, taken);
        }
    }

    #[test]
    fn learns_history_patterns_within_one_branch() {
        let mut p = Gselect::new(2, 4);
        let pc = 0x400;
        let mut late_miss = 0;
        for i in 0..400 {
            let taken = i % 4 == 0; // period-4 pattern fits in 4 history bits
            if i >= 100 && p.predict(pc) != taken {
                late_miss += 1;
            }
            p.update(pc, taken);
        }
        assert_eq!(late_miss, 0);
    }

    #[test]
    fn cost_and_name() {
        let p = Gselect::new(4, 6);
        assert_eq!(p.cost().state_bits, 2 * 1024);
        assert_eq!(p.name(), "gselect(a=4,h=6)");
        assert_eq!(p.num_counters(), 1024);
    }
}
