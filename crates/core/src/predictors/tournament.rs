//! McFarling's combining (tournament) predictor (\[McFarling93\]): two
//! component predictors arbitrated by a per-address meta table of
//! two-bit counters. Included as the classic alternative way of spending
//! extra hardware that the bi-mode paper implicitly competes with.

use crate::cost::Cost;
use crate::counter::Counter2;
use crate::index::{low_bits, pc_word};
use crate::predictor::{CounterId, Predictor};
use crate::table::CounterTable;

/// A tournament predictor over two boxed components.
///
/// The meta table is indexed by branch address; each entry is a two-bit
/// counter whose direction means "prefer component B". The meta counter
/// trains only when the components disagree, towards whichever was
/// correct.
///
/// ```
/// use bpred_core::{Bimodal, Gshare, Predictor, Tournament};
///
/// let p = Tournament::new(
///     Box::new(Bimodal::new(10)),
///     Box::new(Gshare::new(10, 10)),
///     10,
/// );
/// assert!(p.name().starts_with("tournament("));
/// ```
#[derive(Debug, Clone)]
pub struct Tournament {
    a: Box<dyn Predictor>,
    b: Box<dyn Predictor>,
    meta: CounterTable,
    meta_bits: u32,
}

impl Tournament {
    /// Creates a tournament predictor. The meta table starts weakly
    /// preferring component B (conventionally the history-based one).
    ///
    /// # Panics
    ///
    /// Panics if `meta_bits > 30`.
    #[must_use]
    pub fn new(a: Box<dyn Predictor>, b: Box<dyn Predictor>, meta_bits: u32) -> Self {
        Self {
            a,
            b,
            meta: CounterTable::new(meta_bits, Counter2::WEAKLY_TAKEN),
            meta_bits,
        }
    }

    fn meta_index(&self, pc: u64) -> usize {
        low_bits(pc_word(pc), self.meta_bits) as usize
    }

    /// Whether component B is currently selected for `pc`.
    #[must_use]
    pub fn prefers_b(&self, pc: u64) -> bool {
        self.meta.predict(self.meta_index(pc))
    }
}

impl Predictor for Tournament {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!(
            "tournament({}|{},m={})",
            self.a.name(),
            self.b.name(),
            self.meta_bits
        )
    }

    fn predict(&self, pc: u64) -> bool {
        if self.prefers_b(pc) {
            self.b.predict(pc)
        } else {
            self.a.predict(pc)
        }
    }

    fn predict_with_target(&self, pc: u64, target: u64) -> bool {
        if self.prefers_b(pc) {
            self.b.predict_with_target(pc, target)
        } else {
            self.a.predict_with_target(pc, target)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let pa = self.a.predict(pc);
        let pb = self.b.predict(pc);
        if pa != pb {
            // Train the selector towards whichever component was right.
            let idx = self.meta_index(pc);
            self.meta.update(idx, pb == taken);
        }
        self.a.update(pc, taken);
        self.b.update(pc, taken);
    }

    fn cost(&self) -> Cost {
        self.a
            .cost()
            .plus(self.b.cost())
            .plus(Cost::state(self.meta.storage_bits()))
    }

    fn reset(&mut self) {
        self.a.reset();
        self.b.reset();
        self.meta.reset();
    }

    // The final counter lives inside whichever component is selected;
    // offset component B's ids above component A's id space.
    fn counter_id(&self, pc: u64) -> Option<CounterId> {
        if self.num_counters() == 0 {
            return None;
        }
        if self.prefers_b(pc) {
            Some(self.a.num_counters() + self.b.counter_id(pc)?)
        } else {
            self.a.counter_id(pc)
        }
    }

    fn num_counters(&self) -> usize {
        let (na, nb) = (self.a.num_counters(), self.b.num_counters());
        if na == 0 || nb == 0 {
            0
        } else {
            na + nb
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::bimodal::Bimodal;
    use crate::predictors::gshare::Gshare;
    use crate::predictors::statics::{AlwaysNotTaken, AlwaysTaken};

    fn bimodal_gshare() -> Tournament {
        Tournament::new(Box::new(Bimodal::new(8)), Box::new(Gshare::new(8, 8)), 8)
    }

    #[test]
    fn selects_the_component_that_works() {
        // An alternating branch: bimodal fails, gshare learns it. The
        // meta counter must migrate to gshare and stay there.
        let mut p = bimodal_gshare();
        let pc = 0x1000;
        let mut late_miss = 0;
        for i in 0..1000 {
            let taken = i % 2 == 0;
            if i >= 300 && p.predict(pc) != taken {
                late_miss += 1;
            }
            p.update(pc, taken);
        }
        assert!(p.prefers_b(pc));
        assert_eq!(late_miss, 0);
    }

    #[test]
    fn meta_trains_only_on_disagreement() {
        // Components that always agree never move the selector.
        let mut p = Tournament::new(Box::new(AlwaysTaken), Box::new(AlwaysTaken), 4);
        let before: Vec<Counter2> = p.meta.iter().copied().collect();
        for i in 0..100 {
            p.update(0x40, i % 2 == 0);
        }
        let after: Vec<Counter2> = p.meta.iter().copied().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn per_branch_selection_is_independent() {
        // Branch X suits component A (static taken), branch Y suits B
        // (static not-taken); the meta table must pick per branch.
        let mut p = Tournament::new(Box::new(AlwaysTaken), Box::new(AlwaysNotTaken), 6);
        // Adjacent words so the meta entries are distinct in 6 index bits.
        let (x, y) = (0x100u64, 0x104u64);
        for _ in 0..10 {
            p.update(x, true);
            p.update(y, false);
        }
        assert!(p.predict(x));
        assert!(!p.predict(y));
    }

    #[test]
    fn cost_sums_components_and_meta() {
        let p = bimodal_gshare();
        assert_eq!(p.cost().state_bits, 2 * 256 + 2 * 256 + 2 * 256);
        assert_eq!(p.cost().metadata_bits, 8);
    }

    #[test]
    fn counter_ids_offset_by_component() {
        let p = bimodal_gshare();
        assert_eq!(p.num_counters(), 512);
        let id = p.counter_id(0x1000).unwrap();
        assert!(id < 512);
    }

    #[test]
    fn counter_ids_unsupported_when_component_opaque() {
        let p = Tournament::new(Box::new(AlwaysTaken), Box::new(Bimodal::new(4)), 4);
        assert_eq!(p.num_counters(), 0);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut p = bimodal_gshare();
        for i in 0..500u64 {
            p.update(0x1000 + (i % 23) * 4, i % 2 == 0);
        }
        p.reset();
        let fresh = bimodal_gshare();
        for pc in (0..64u64).map(|i| 0x1000 + i * 4) {
            assert_eq!(p.predict(pc), fresh.predict(pc));
        }
    }
}
