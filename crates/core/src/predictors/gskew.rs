//! The skewed branch predictor (\[MichaudSeznecUhlig97\], the hardware-
//! hashing scheme Section 2.1 compares bi-mode against): three counter
//! banks indexed by distinct hash functions, combined by majority vote.
//!
//! Update follows the original partial-update policy: on a correct
//! prediction only the banks that voted with the majority are trained;
//! on a misprediction all three banks are trained (total reallocation).

use crate::cost::Cost;
use crate::counter::Counter2;
use crate::history::GlobalHistory;
use crate::index::skew_index;
use crate::predictor::{CounterId, Predictor};
use crate::table::CounterTable;

/// Per-bank training policy for [`Gskew`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GskewUpdate {
    /// Seznec's policy: train all banks on a misprediction, only the
    /// majority-agreeing banks on a correct prediction.
    #[default]
    Partial,
    /// Train every bank on every branch (ablation).
    Total,
}

/// A three-bank skewed predictor with `2^bank_bits` counters per bank.
#[derive(Debug, Clone)]
pub struct Gskew {
    banks: [CounterTable; 3],
    history: GlobalHistory,
    bank_bits: u32,
    history_bits: u32,
    update: GskewUpdate,
}

impl Gskew {
    /// Creates a gskew predictor with the default partial-update policy.
    ///
    /// # Panics
    ///
    /// Panics if `bank_bits` is zero or greater than 30.
    #[must_use]
    pub fn new(bank_bits: u32, history_bits: u32) -> Self {
        Self::with_update(bank_bits, history_bits, GskewUpdate::Partial)
    }

    /// Creates a gskew predictor with an explicit update policy.
    ///
    /// # Panics
    ///
    /// Panics if `bank_bits` is zero or greater than 30.
    #[must_use]
    pub fn with_update(bank_bits: u32, history_bits: u32, update: GskewUpdate) -> Self {
        Self {
            banks: std::array::from_fn(|_| CounterTable::new(bank_bits, Counter2::WEAKLY_TAKEN)),
            history: GlobalHistory::new(history_bits),
            bank_bits,
            history_bits,
            update,
        }
    }

    fn indices(&self, pc: u64) -> [usize; 3] {
        std::array::from_fn(|bank| {
            skew_index(
                pc,
                self.history.value(),
                self.bank_bits,
                self.history_bits,
                bank,
            )
        })
    }

    fn votes(&self, pc: u64) -> [bool; 3] {
        let idx = self.indices(pc);
        std::array::from_fn(|b| self.banks[b].predict(idx[b]))
    }
}

impl Predictor for Gskew {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("gskew(s={},h={})", self.bank_bits, self.history_bits)
    }

    fn predict(&self, pc: u64) -> bool {
        let v = self.votes(pc);
        (u8::from(v[0]) + u8::from(v[1]) + u8::from(v[2])) >= 2
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.indices(pc);
        let votes = self.votes(pc);
        let majority = self.predict(pc);
        let correct = majority == taken;
        for bank in 0..3 {
            let train = match self.update {
                GskewUpdate::Total => true,
                GskewUpdate::Partial => !correct || votes[bank] == majority,
            };
            if train {
                self.banks[bank].update(idx[bank], taken);
            }
        }
        self.history.push(taken);
    }

    fn cost(&self) -> Cost {
        Cost {
            state_bits: self.banks.iter().map(CounterTable::storage_bits).sum(),
            metadata_bits: u64::from(self.history_bits),
        }
    }

    fn reset(&mut self) {
        for b in &mut self.banks {
            b.reset();
        }
        self.history.reset();
    }

    // Majority voting has no single final-direction counter, so the
    // bias-class analysis does not apply; counter_id stays None.
    fn counter_id(&self, _pc: u64) -> Option<CounterId> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Gskew::new(8, 6);
        let pc = 0x1000;
        for _ in 0..8 {
            p.update(pc, false);
        }
        assert!(!p.predict(pc));
    }

    #[test]
    fn majority_tolerates_single_bank_corruption() {
        // Corrupt one bank's entry via an aliasing write pattern; the
        // other two banks out-vote it.
        let mut p = Gskew::new(6, 0);
        let pc = 0x1000;
        for _ in 0..4 {
            p.update(pc, true);
        }
        // Directly damage bank 0's counter for this pc.
        let idx = p.indices(pc);
        p.banks[0].update(idx[0], false);
        p.banks[0].update(idx[0], false);
        p.banks[0].update(idx[0], false);
        assert!(!p.banks[0].predict(idx[0]));
        assert!(
            p.predict(pc),
            "two honest banks must out-vote one corrupted bank"
        );
    }

    #[test]
    fn partial_update_leaves_dissenters_alone_on_correct_prediction() {
        let mut p = Gskew::new(6, 0);
        let pc = 0x1000;
        for _ in 0..4 {
            p.update(pc, true);
        }
        let idx = p.indices(pc);
        // Make bank 2 dissent.
        for _ in 0..3 {
            p.banks[2].update(idx[2], false);
        }
        let dissent_state = p.banks[2].counter(idx[2]);
        p.update(pc, true); // correct majority prediction
        assert_eq!(
            p.banks[2].counter(idx[2]),
            dissent_state,
            "dissenting bank must not be trained on a correct prediction"
        );
    }

    #[test]
    fn all_banks_train_on_misprediction() {
        let mut p = Gskew::new(6, 0);
        let pc = 0x1000;
        let idx = p.indices(pc);
        let before: Vec<Counter2> = (0..3).map(|b| p.banks[b].counter(idx[b])).collect();
        // Fresh state predicts taken; a not-taken outcome mispredicts.
        assert!(p.predict(pc));
        p.update(pc, false);
        for bank in 0..3 {
            assert_eq!(
                p.banks[bank].counter(idx[bank]),
                before[bank].updated(false),
                "bank {bank} must train on a misprediction"
            );
        }
    }

    #[test]
    fn survives_pairwise_aliasing_better_than_gshare() {
        // Many branches with mixed biases in a tiny table: majority
        // voting over skewed indices should beat a same-state gshare.
        use crate::predictors::gshare::Gshare;
        let mut gskew = Gskew::new(5, 5); // 3 * 32 counters = 96
        let mut gshare = Gshare::new(7, 7); // 128 counters (more state!)
        let mut skew_miss = 0u32;
        let mut share_miss = 0u32;
        let branches: Vec<(u64, bool)> = (0..48).map(|i| (0x4000 + i * 4, i % 2 == 0)).collect();
        for round in 0..200 {
            for &(pc, t) in &branches {
                if round >= 50 {
                    skew_miss += u32::from(gskew.predict(pc) != t);
                    share_miss += u32::from(gshare.predict(pc) != t);
                }
                gskew.update(pc, t);
                gshare.update(pc, t);
            }
        }
        assert!(
            skew_miss <= share_miss,
            "gskew ({skew_miss}) should not lose to gshare ({share_miss}) under heavy aliasing"
        );
    }

    #[test]
    fn cost_counts_three_banks() {
        let p = Gskew::new(8, 8);
        assert_eq!(p.cost().state_bits, 3 * 2 * 256);
        assert_eq!(p.counter_id(0x1000), None);
        assert_eq!(p.num_counters(), 0);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut p = Gskew::new(6, 4);
        for i in 0..100u64 {
            p.update(0x1000 + (i % 9) * 4, i % 2 == 0);
        }
        p.reset();
        let fresh = Gskew::new(6, 4);
        for pc in (0..64u64).map(|i| 0x1000 + i * 4) {
            assert_eq!(p.predict(pc), fresh.predict(pc));
        }
    }
}
