//! The bi-mode branch predictor — the contribution of Lee, Chen & Mudge
//! (MICRO-30, 1997).
//!
//! Section 2.2: the second-level table is split into two *direction*
//! banks, both indexed gshare-style (branch address XOR global history).
//! A *choice predictor* — a plain bimodal table indexed by branch address
//! only — selects which bank provides the final prediction. Branches are
//! thereby dynamically partitioned by their per-address bias before their
//! global-history behaviour is stored, separating destructive aliases
//! (same history pattern, opposite biases) while keeping harmless aliases
//! together.
//!
//! Update policy (verbatim from the paper):
//!
//! * only the **selected** direction counter is trained with the outcome;
//!   the unselected bank is untouched;
//! * the choice predictor is always trained with the outcome **except**
//!   when its choice disagrees with the outcome but the selected direction
//!   counter still predicted correctly (the *partial update* rule, "
//!   particularly effective when the total hardware budget is small");
//! * initialisation (footnote 2): choice counters weakly-taken, the
//!   not-taken bank weakly-not-taken, the taken bank weakly-taken.
//!
//! The configuration exposes each of these decisions as a knob so the
//! ablation experiments can isolate their contributions.

use crate::cost::Cost;
use crate::counter::Counter2;
use crate::history::GlobalHistory;
use crate::index::{gshare_index, low_bits, pc_word, skew_index};
use crate::predictor::{CounterId, Predictor};
use crate::table::CounterTable;

/// Choice-predictor training policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChoiceUpdate {
    /// The paper's rule: skip the choice update when the choice was wrong
    /// but the selected direction counter predicted correctly.
    #[default]
    Partial,
    /// Always train the choice predictor with the outcome (ablation).
    Always,
}

/// Direction-bank initialisation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BankInit {
    /// Footnote 2: bank 0 (not-taken bank) weakly-not-taken, bank 1
    /// (taken bank) weakly-taken.
    #[default]
    Split,
    /// Both banks weakly-taken (ablation).
    UniformWeaklyTaken,
}

/// Direction-bank index-sharing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexShare {
    /// The paper's design: both banks use the same gshare-style index.
    #[default]
    Shared,
    /// Each bank hashes (pc, history) with a distinct skewing function
    /// (ablation combining bi-mode with gskew-style dispersion).
    SkewedPerBank,
}

/// Configuration for a [`BiMode`] predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BiModeConfig {
    /// log2 of each direction bank's counter count.
    pub direction_bits: u32,
    /// log2 of the choice table's counter count.
    pub choice_bits: u32,
    /// Global history length in bits (`<= direction_bits` when
    /// [`IndexShare::Shared`]).
    pub history_bits: u32,
    /// Choice training policy.
    pub choice_update: ChoiceUpdate,
    /// Direction-bank initialisation.
    pub bank_init: BankInit,
    /// Direction-bank index construction.
    pub index_share: IndexShare,
}

impl BiModeConfig {
    /// A paper-default configuration: partial choice update, split bank
    /// initialisation, shared index.
    #[must_use]
    pub fn new(direction_bits: u32, choice_bits: u32, history_bits: u32) -> Self {
        Self {
            direction_bits,
            choice_bits,
            history_bits,
            choice_update: ChoiceUpdate::Partial,
            bank_init: BankInit::Split,
            index_share: IndexShare::Shared,
        }
    }

    /// The paper's standard sizing at a given direction-bank width:
    /// choice table the same size as one bank, history as long as the
    /// bank index (`m = d`), giving the 1.5x-of-next-smaller-gshare cost
    /// points of Figures 2–4.
    #[must_use]
    pub fn paper_default(direction_bits: u32) -> Self {
        Self::new(direction_bits, direction_bits, direction_bits)
    }
}

/// The bi-mode predictor.
///
/// ```
/// use bpred_core::{BiMode, BiModeConfig, Predictor};
///
/// let mut p = BiMode::new(BiModeConfig::paper_default(10));
/// // 2 banks of 1K + 1K choice = 3K counters = 0.75 KB of state.
/// assert_eq!(p.cost().state_kib(), 0.75);
/// let pc = 0x0040_0100;
/// let _ = p.predict(pc);
/// p.update(pc, false);
/// ```
#[derive(Debug, Clone)]
pub struct BiMode {
    config: BiModeConfig,
    choice: CounterTable,
    banks: [CounterTable; 2],
    history: GlobalHistory,
}

/// Internal record of the lookups a prediction performs; shared by
/// `predict` and `update` so both always agree on which counters are
/// involved.
#[derive(Debug, Clone, Copy)]
struct Lookup {
    choice_index: usize,
    choice_taken: bool,
    bank: usize,
    direction_index: usize,
    prediction: bool,
}

impl BiMode {
    /// Creates a bi-mode predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any table width exceeds 30 bits, or if
    /// `history_bits > direction_bits` with a shared index.
    #[must_use]
    pub fn new(config: BiModeConfig) -> Self {
        if config.index_share == IndexShare::Shared {
            assert!(
                config.history_bits <= config.direction_bits,
                "bi-mode history ({}) must not exceed direction index bits ({}) with a shared index",
                config.history_bits,
                config.direction_bits
            );
        }
        let (init0, init1) = match config.bank_init {
            BankInit::Split => (Counter2::WEAKLY_NOT_TAKEN, Counter2::WEAKLY_TAKEN),
            BankInit::UniformWeaklyTaken => (Counter2::WEAKLY_TAKEN, Counter2::WEAKLY_TAKEN),
        };
        Self {
            config,
            choice: CounterTable::new(config.choice_bits, Counter2::WEAKLY_TAKEN),
            banks: [
                CounterTable::new(config.direction_bits, init0),
                CounterTable::new(config.direction_bits, init1),
            ],
            history: GlobalHistory::new(config.history_bits),
        }
    }

    /// The configuration this predictor was built with.
    #[must_use]
    pub fn config(&self) -> &BiModeConfig {
        &self.config
    }

    /// Entries in one direction bank.
    #[must_use]
    pub fn bank_len(&self) -> usize {
        self.banks[0].len()
    }

    fn direction_index(&self, pc: u64, bank: usize) -> usize {
        match self.config.index_share {
            IndexShare::Shared => gshare_index(
                pc,
                self.history.value(),
                self.config.direction_bits,
                self.config.history_bits,
            ),
            IndexShare::SkewedPerBank => skew_index(
                pc,
                self.history.value(),
                self.config.direction_bits,
                self.config.history_bits,
                bank,
            ),
        }
    }

    fn lookup(&self, pc: u64) -> Lookup {
        let choice_index = low_bits(pc_word(pc), self.config.choice_bits) as usize;
        let choice_taken = self.choice.predict(choice_index);
        let bank = usize::from(choice_taken);
        let direction_index = self.direction_index(pc, bank);
        let prediction = self.banks[bank].predict(direction_index);
        Lookup {
            choice_index,
            choice_taken,
            bank,
            direction_index,
            prediction,
        }
    }

    /// The bank (0 = not-taken mode, 1 = taken mode) the choice predictor
    /// currently selects for `pc`.
    #[must_use]
    pub fn selected_bank(&self, pc: u64) -> usize {
        self.lookup(pc).bank
    }

    /// White-box snapshot of exactly the state one prediction consults,
    /// for the `bpred-check` policy oracle: the oracle records a probe
    /// before `update`, applies the paper's Section 2 update rules to it
    /// symbolically, and compares against the post-update state.
    #[must_use]
    pub fn probe(&self, pc: u64) -> BiModeProbe {
        let l = self.lookup(pc);
        BiModeProbe {
            choice_index: l.choice_index,
            choice_state: self.choice.counter(l.choice_index).state(),
            bank: l.bank,
            direction_index: l.direction_index,
            direction_state: self.banks[l.bank].counter(l.direction_index).state(),
            prediction: l.prediction,
            history: self.history.value(),
        }
    }

    /// The choice counter at `index` (oracle hook).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the choice table.
    #[must_use]
    pub fn choice_counter(&self, index: usize) -> Counter2 {
        self.choice.counter(index)
    }

    /// The direction counter at (`bank`, `index`) (oracle hook).
    ///
    /// # Panics
    ///
    /// Panics if `bank > 1` or `index` is out of range for the bank.
    #[must_use]
    pub fn direction_counter(&self, bank: usize, index: usize) -> Counter2 {
        self.banks[bank].counter(index)
    }

    /// The current global history pattern (oracle hook).
    #[must_use]
    pub fn history_value(&self) -> u64 {
        self.history.value()
    }
}

/// A white-box view of one bi-mode lookup, exposed so an external
/// policy oracle can verify the paper's update rules transition by
/// transition. See [`BiMode::probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BiModeProbe {
    /// Index consulted in the choice table.
    pub choice_index: usize,
    /// Raw state (`0..=3`) of that choice counter.
    pub choice_state: u8,
    /// Selected direction bank (0 = not-taken mode, 1 = taken mode).
    pub bank: usize,
    /// Index consulted in the selected bank.
    pub direction_index: usize,
    /// Raw state (`0..=3`) of the selected direction counter.
    pub direction_state: u8,
    /// The final prediction the lookup produces.
    pub prediction: bool,
    /// Global history value at lookup time.
    pub history: u64,
}

impl Predictor for BiMode {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        let mut name = format!(
            "bi-mode(d={},c={},h={})",
            self.config.direction_bits, self.config.choice_bits, self.config.history_bits
        );
        if self.config.choice_update == ChoiceUpdate::Always {
            name.push_str("+always-choice");
        }
        if self.config.bank_init == BankInit::UniformWeaklyTaken {
            name.push_str("+uniform-init");
        }
        if self.config.index_share == IndexShare::SkewedPerBank {
            name.push_str("+skewed");
        }
        name
    }

    fn predict(&self, pc: u64) -> bool {
        self.lookup(pc).prediction
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let l = self.lookup(pc);

        // Only the selected direction counter sees the outcome; the other
        // bank keeps its mode-specific contents unpolluted.
        self.banks[l.bank].update(l.direction_index, taken);

        let train_choice = match self.config.choice_update {
            ChoiceUpdate::Always => true,
            // Partial update: keep the (wrong) choice when the selected
            // direction counter nevertheless predicted correctly.
            ChoiceUpdate::Partial => !(l.choice_taken != taken && l.prediction == taken),
        };
        if train_choice {
            self.choice.update(l.choice_index, taken);
        }

        self.history.push(taken);
    }

    fn cost(&self) -> Cost {
        Cost {
            state_bits: self.choice.storage_bits()
                + self.banks[0].storage_bits()
                + self.banks[1].storage_bits(),
            metadata_bits: u64::from(self.config.history_bits),
        }
    }

    fn reset(&mut self) {
        self.choice.reset();
        self.banks[0].reset();
        self.banks[1].reset();
        self.history.reset();
    }

    /// The selected direction counter: ids `0..bank_len` are the
    /// not-taken bank, `bank_len..2*bank_len` the taken bank.
    fn counter_id(&self, pc: u64) -> Option<CounterId> {
        let l = self.lookup(pc);
        Some(l.bank * self.bank_len() + l.direction_index)
    }

    fn num_counters(&self) -> usize {
        2 * self.bank_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BiMode {
        BiMode::new(BiModeConfig::paper_default(6))
    }

    #[test]
    fn initialisation_follows_footnote_2() {
        let p = small();
        assert!(p.choice.iter().all(|c| *c == Counter2::WEAKLY_TAKEN));
        assert!(p.banks[0].iter().all(|c| *c == Counter2::WEAKLY_NOT_TAKEN));
        assert!(p.banks[1].iter().all(|c| *c == Counter2::WEAKLY_TAKEN));
    }

    #[test]
    fn only_selected_bank_is_trained() {
        let mut p = small();
        let pc = 0x1000;
        let bank0_before = p.banks[0].clone();
        // Fresh choice is weakly-taken, so bank 1 is selected.
        assert_eq!(p.selected_bank(pc), 1);
        p.update(pc, true);
        assert_eq!(p.banks[0], bank0_before, "unselected bank must not change");
    }

    #[test]
    fn partial_update_skips_choice_on_saved_misprediction() {
        // Construct: choice says taken (bank 1), outcome is not-taken,
        // but the selected counter in bank 1 already predicts not-taken.
        // The paper's rule: do NOT train the choice predictor.
        let mut p = small();
        let pc = 0x1000;
        let l = p.lookup(pc);
        assert!(l.choice_taken);
        // Drive the selected counter to not-taken without moving the
        // choice out of taken mode: alternate so choice stays >= WT.
        // Simpler: poke the bank directly.
        let idx = p.direction_index(pc, 1);
        p.banks[1].update(idx, false); // WT -> WN
        let choice_before = p.choice.counter(l.choice_index);
        p.update(pc, false); // choice wrong (taken), prediction right (NT)
        assert_eq!(
            p.choice.counter(l.choice_index),
            choice_before,
            "choice must be frozen when the direction counter covered for it"
        );
    }

    #[test]
    fn choice_is_trained_when_prediction_also_wrong() {
        let mut p = small();
        let pc = 0x1000;
        let l = p.lookup(pc);
        assert!(l.choice_taken && l.prediction);
        let choice_before = p.choice.counter(l.choice_index);
        p.update(pc, false); // both choice and prediction wrong
        assert_eq!(
            p.choice.counter(l.choice_index),
            choice_before.updated(false),
            "choice must train towards the outcome on a full misprediction"
        );
    }

    #[test]
    fn choice_is_trained_when_choice_agrees_with_outcome() {
        let mut p = small();
        let pc = 0x1000;
        let l = p.lookup(pc);
        let choice_before = p.choice.counter(l.choice_index);
        p.update(pc, true); // choice taken, outcome taken
        assert_eq!(
            p.choice.counter(l.choice_index),
            choice_before.updated(true)
        );
    }

    #[test]
    fn always_policy_trains_choice_unconditionally() {
        let mut cfg = BiModeConfig::paper_default(6);
        cfg.choice_update = ChoiceUpdate::Always;
        let mut p = BiMode::new(cfg);
        let pc = 0x1000;
        let l = p.lookup(pc);
        let idx = p.direction_index(pc, 1);
        p.banks[1].update(idx, false);
        let choice_before = p.choice.counter(l.choice_index);
        p.update(pc, false); // saved misprediction, but policy = Always
        assert_eq!(
            p.choice.counter(l.choice_index),
            choice_before.updated(false)
        );
    }

    #[test]
    fn separates_destructive_aliases_that_break_gshare() {
        // The paper's core claim, as a microbenchmark: two branches with
        // identical global-history behaviour but opposite biases, placed
        // so they collide in a gshare PHT. Bi-mode's choice predictor
        // routes them to different banks; gshare oscillates.
        use crate::predictors::gshare::Gshare;
        let s = 6u32;
        let a = 0x1000u64;
        let b = a + (1u64 << (s + 2)); // same low-s word index as a

        let mut gshare = Gshare::new(s, 0);
        assert_eq!(gshare.index(a), gshare.index(b));
        let mut bimode = BiMode::new(BiModeConfig::new(s, 8, 0));

        let mut gshare_miss = 0;
        let mut bimode_miss = 0;
        for i in 0..500 {
            for (pc, t) in [(a, true), (b, false)] {
                if i >= 100 {
                    if gshare.predict(pc) != t {
                        gshare_miss += 1;
                    }
                    if bimode.predict(pc) != t {
                        bimode_miss += 1;
                    }
                }
                gshare.update(pc, t);
                bimode.update(pc, t);
            }
        }
        // The shared counter oscillates between weakly- and strongly-taken,
        // so gshare mispredicts essentially every execution of the
        // not-taken branch (~400 of the 800 counted executions).
        assert!(
            gshare_miss >= 390,
            "gshare should thrash ({gshare_miss} misses)"
        );
        assert_eq!(bimode_miss, 0, "bi-mode should separate the aliases");
    }

    #[test]
    fn preserves_global_history_correlation() {
        // B repeats A's last outcome. The direction banks must still
        // capture the correlation (the "merit of global history" the
        // paper insists is preserved).
        let mut p = BiMode::new(BiModeConfig::paper_default(8));
        let (a, b) = (0x1000u64, 0x1040u64);
        let mut late_miss = 0;
        for i in 0..2000 {
            let a_out = (i / 7) % 2 == 0;
            p.update(a, a_out);
            if i >= 500 && p.predict(b) != a_out {
                late_miss += 1;
            }
            p.update(b, a_out);
        }
        assert!(
            late_miss <= 4,
            "bi-mode lost correlation ({late_miss} misses)"
        );
    }

    #[test]
    fn cost_is_1_5x_of_matching_gshare() {
        use crate::predictors::gshare::Gshare;
        let bimode = BiMode::new(BiModeConfig::paper_default(10));
        let gshare = Gshare::new(11, 11); // the "next smaller" 2^11 gshare
        let ratio = bimode.cost().state_bits as f64 / gshare.cost().state_bits as f64;
        assert!((ratio - 1.5).abs() < 1e-9);
    }

    #[test]
    fn counter_ids_partition_by_bank() {
        let p = small();
        let id = p.counter_id(0x1000).unwrap();
        assert_eq!(p.selected_bank(0x1000), 1);
        assert!(id >= p.bank_len(), "taken-bank ids live in the upper half");
        assert!(id < p.num_counters());
        assert_eq!(p.num_counters(), 128);
    }

    #[test]
    fn skewed_banks_use_distinct_indices() {
        let mut cfg = BiModeConfig::new(8, 8, 8);
        cfg.index_share = IndexShare::SkewedPerBank;
        let p = BiMode::new(cfg);
        let distinct = (0..64u64)
            .map(|i| 0x1000 + i * 4)
            .filter(|&pc| p.direction_index(pc, 0) != p.direction_index(pc, 1))
            .count();
        assert!(
            distinct >= 60,
            "skewed banks should rarely agree ({distinct}/64)"
        );
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut p = small();
        for i in 0..200u64 {
            p.update(0x1000 + (i % 17) * 4, i % 3 == 0);
        }
        p.reset();
        let fresh = small();
        for pc in (0..128u64).map(|i| 0x1000 + i * 4) {
            assert_eq!(p.predict(pc), fresh.predict(pc));
        }
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn rejects_overlong_history_with_shared_index() {
        let _ = BiMode::new(BiModeConfig::new(6, 6, 7));
    }

    #[test]
    fn name_encodes_configuration() {
        assert_eq!(
            BiMode::new(BiModeConfig::new(7, 7, 7)).name(),
            "bi-mode(d=7,c=7,h=7)"
        );
        let mut cfg = BiModeConfig::new(7, 7, 7);
        cfg.choice_update = ChoiceUpdate::Always;
        assert!(BiMode::new(cfg).name().contains("always-choice"));
    }
}
