//! TAGE — TAgged GEometric-history predictor (Seznec & Michaud, 2006):
//! the de-aliasing lineage's endpoint. Where bi-mode splits one PHT by
//! bias and YAGS caches exceptions, TAGE keeps a bimodal base and a
//! series of *tagged* tables indexed with geometrically growing
//! history lengths; a tag match makes a table a candidate, the longest
//! matching history provides the prediction, and per-entry useful
//! counters ration allocation on mispredictions.
//!
//! The reproduction question this serves (`repro zoo.cost`): does
//! bi-mode's de-aliasing still buy anything at equal cost once tagging
//! filters the destructive aliases directly?

use crate::cost::Cost;
use crate::counter::Counter2;
use crate::history::{GlobalHistory, MAX_HISTORY_BITS};
use crate::index::{fold_xor, low_bits, pc_word, to_index};
use crate::predictor::{CounterId, Predictor};
use crate::table::CounterTable;

/// Prediction-counter width of a tagged entry (canonical TAGE uses 3).
const CTR_BITS: u32 = 3;
/// Useful-counter width of a tagged entry.
const USEFUL_BITS: u32 = 2;
/// Saturation ceiling of the prediction counter.
const CTR_MAX: u8 = (1 << CTR_BITS) - 1;
/// Weakly-taken midpoint: predictions are taken at or above this.
const CTR_WEAK_TAKEN: u8 = 1 << (CTR_BITS - 1);
/// Saturation ceiling of the useful counter.
const USEFUL_MAX: u8 = (1 << USEFUL_BITS) - 1;

/// One entry of a tagged component table.
#[derive(Debug, Clone, Copy)]
struct TagEntry {
    ctr: u8,
    tag: u16,
    useful: u8,
    valid: bool,
}

impl TagEntry {
    fn empty() -> Self {
        Self {
            ctr: CTR_WEAK_TAKEN,
            tag: 0,
            useful: 0,
            valid: false,
        }
    }

    fn predict(self) -> bool {
        self.ctr >= CTR_WEAK_TAKEN
    }

    /// A newly-allocated (weak counter, never-useful) entry, whose
    /// prediction the altpred overrides.
    fn is_weak(self) -> bool {
        (self.ctr == CTR_WEAK_TAKEN || self.ctr == CTR_WEAK_TAKEN - 1) && self.useful == 0
    }

    fn train(&mut self, taken: bool) {
        if taken {
            if self.ctr < CTR_MAX {
                self.ctr += 1;
            }
        } else if self.ctr > 0 {
            self.ctr -= 1;
        }
    }
}

/// One tagged component: `2^entry_bits` entries consulted with a fixed
/// slice of the global history.
#[derive(Debug, Clone)]
struct TaggedTable {
    entries: Vec<TagEntry>,
    history_len: u32,
}

/// What one prediction consulted: per-table indices and tags, the
/// provider (longest-history tag match) and its alternate.
struct Lookup {
    indices: Vec<usize>,
    tags: Vec<u16>,
    provider: Option<usize>,
    alt: Option<usize>,
    base_index: usize,
}

/// A TAGE predictor: a `2^entry_bits` bimodal base plus `tables`
/// tagged components of `2^entry_bits` entries each, with history
/// lengths halving geometrically down from `max_history`.
#[derive(Debug, Clone)]
pub struct Tage {
    base: CounterTable,
    tables: Vec<TaggedTable>,
    history: GlobalHistory,
    num_tables: u32,
    max_history: u32,
    tag_bits: u32,
    entry_bits: u32,
}

impl Tage {
    /// Creates a TAGE predictor with `tables` tagged components,
    /// `max_history` bits of history on the longest one, `tag_bits`-bit
    /// partial tags and `2^entry_bits` entries per table (base
    /// included).
    ///
    /// # Panics
    ///
    /// Panics if `tables` is not 1..=16, `entry_bits` not 1..=20,
    /// `tag_bits` not 1..=16, or `max_history` not 1..=63.
    #[must_use]
    pub fn new(tables: u32, max_history: u32, tag_bits: u32, entry_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&tables),
            "tage wants 1..=16 tagged tables, got {tables}"
        );
        assert!(
            (1..=20).contains(&entry_bits),
            "tage entry index must be 1..=20 bits, got {entry_bits}"
        );
        assert!(
            (1..=16).contains(&tag_bits),
            "partial tags are 1..=16 bits, got {tag_bits}"
        );
        assert!(
            (1..=MAX_HISTORY_BITS).contains(&max_history),
            "tage history must be 1..=63 bits, got {max_history}"
        );
        let component = |i: u32| TaggedTable {
            entries: vec![TagEntry::empty(); 1usize << entry_bits],
            history_len: (max_history >> (tables - 1 - i)).max(1),
        };
        Self {
            base: CounterTable::new(entry_bits, Counter2::WEAKLY_TAKEN),
            tables: (0..tables).map(component).collect(),
            history: GlobalHistory::new(max_history),
            num_tables: tables,
            max_history,
            tag_bits,
            entry_bits,
        }
    }

    /// The geometric history lengths, shortest table first.
    #[must_use]
    pub fn history_lengths(&self) -> Vec<u32> {
        self.tables.iter().map(|t| t.history_len).collect()
    }

    fn index_of(&self, table: &TaggedTable, pc: u64) -> usize {
        let h = self.history.low(table.history_len);
        let w = pc_word(pc);
        to_index(low_bits(
            w ^ (w >> self.entry_bits)
                ^ fold_xor(h, self.entry_bits)
                ^ u64::from(table.history_len),
            self.entry_bits,
        ))
    }

    fn tag_of(&self, table: &TaggedTable, pc: u64) -> u16 {
        // Two differently-folded history hashes, the canonical
        // CSR1 ^ (CSR2 << 1) construction, so index-aliasing branches
        // rarely tag-alias too.
        let h = self.history.low(table.history_len);
        let f1 = fold_xor(h, self.tag_bits);
        let f2 = if self.tag_bits > 1 {
            fold_xor(h, self.tag_bits - 1) << 1
        } else {
            0
        };
        let w = pc_word(pc);
        low_bits(w ^ (w >> self.tag_bits) ^ f1 ^ f2, self.tag_bits) as u16
    }

    fn lookup(&self, pc: u64) -> Lookup {
        let indices: Vec<usize> = self.tables.iter().map(|t| self.index_of(t, pc)).collect();
        let tags: Vec<u16> = self.tables.iter().map(|t| self.tag_of(t, pc)).collect();
        let mut provider = None;
        let mut alt = None;
        for (i, table) in self.tables.iter().enumerate() {
            let e = table.entries[indices[i]];
            if e.valid && e.tag == tags[i] {
                alt = provider;
                provider = Some(i);
            }
        }
        Lookup {
            indices,
            tags,
            provider,
            alt,
            base_index: to_index(low_bits(pc_word(pc), self.entry_bits)),
        }
    }

    fn alt_prediction(&self, l: &Lookup) -> bool {
        match l.alt {
            Some(j) => self.tables[j].entries[l.indices[j]].predict(),
            None => self.base.predict(l.base_index),
        }
    }

    fn prediction(&self, l: &Lookup) -> bool {
        match l.provider {
            Some(i) => {
                let e = self.tables[i].entries[l.indices[i]];
                // use-alt-on-newly-allocated: a weak provider defers to
                // the alternate prediction until it has proven useful.
                if e.is_weak() {
                    self.alt_prediction(l)
                } else {
                    e.predict()
                }
            }
            None => self.base.predict(l.base_index),
        }
    }
}

impl Predictor for Tage {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!(
            "tage(t={},h={},tag={},e={})",
            self.num_tables, self.max_history, self.tag_bits, self.entry_bits
        )
    }

    fn predict(&self, pc: u64) -> bool {
        let l = self.lookup(pc);
        self.prediction(&l)
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let l = self.lookup(pc);
        let final_prediction = self.prediction(&l);
        match l.provider {
            Some(i) => {
                let provider_prediction = self.tables[i].entries[l.indices[i]].predict();
                let alt_prediction = self.alt_prediction(&l);
                let e = &mut self.tables[i].entries[l.indices[i]];
                e.train(taken);
                // The useful counter moves only when the provider and
                // its alternate disagreed — that is when the provider's
                // existence changed the prediction.
                if provider_prediction != alt_prediction {
                    if provider_prediction == taken {
                        if e.useful < USEFUL_MAX {
                            e.useful += 1;
                        }
                    } else if e.useful > 0 {
                        e.useful -= 1;
                    }
                }
            }
            None => self.base.update(l.base_index, taken),
        }

        // Allocation on a final misprediction: claim the first
        // not-useful entry in a longer-history table; if every
        // candidate is defending its slot, decay them all instead
        // (the canonical age-on-failed-allocation rule).
        let first_candidate = l.provider.map_or(0, |i| i + 1);
        if final_prediction != taken && first_candidate < self.tables.len() {
            let mut allocated = false;
            for j in first_candidate..self.tables.len() {
                let e = &mut self.tables[j].entries[l.indices[j]];
                if !e.valid || e.useful == 0 {
                    *e = TagEntry {
                        ctr: if taken {
                            CTR_WEAK_TAKEN
                        } else {
                            CTR_WEAK_TAKEN - 1
                        },
                        tag: l.tags[j],
                        useful: 0,
                        valid: true,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                for j in first_candidate..self.tables.len() {
                    let e = &mut self.tables[j].entries[l.indices[j]];
                    if e.useful > 0 {
                        e.useful -= 1;
                    }
                }
            }
        }

        self.history.push(taken);
    }

    fn cost(&self) -> Cost {
        let entries = 1u64 << self.entry_bits;
        Cost {
            // The paper's metric: prediction counters only — the base's
            // two-bit counters plus each tagged entry's 3-bit counter.
            state_bits: self.base.storage_bits()
                + u64::from(self.num_tables) * u64::from(CTR_BITS) * entries,
            // Tags, useful counters, valid bits and the history
            // register are bookkeeping, reported separately.
            metadata_bits: u64::from(self.num_tables)
                * entries
                * u64::from(self.tag_bits + USEFUL_BITS + 1)
                + u64::from(self.max_history),
        }
    }

    fn reset(&mut self) {
        self.base.reset();
        for t in &mut self.tables {
            t.entries.iter_mut().for_each(|e| *e = TagEntry::empty());
        }
        self.history.reset();
    }

    fn counter_id(&self, pc: u64) -> Option<CounterId> {
        // Ids: base first, then each tagged table's entries in order.
        let l = self.lookup(pc);
        Some(match l.provider {
            Some(i) => self.base.len() + i * self.tables[i].entries.len() + l.indices[i],
            None => l.base_index,
        })
    }

    fn num_counters(&self) -> usize {
        self.base.len() + self.tables.iter().map(|t| t.entries.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_lengths_halve_geometrically() {
        let p = Tage::new(4, 32, 8, 6);
        assert_eq!(p.history_lengths(), [4, 8, 16, 32]);
        // Short maxima clamp at one bit rather than degenerating to 0.
        let p = Tage::new(3, 2, 4, 2);
        assert_eq!(p.history_lengths(), [1, 1, 2]);
    }

    #[test]
    fn cost_counts_counters_as_state_and_tags_as_metadata() {
        let p = Tage::new(4, 32, 8, 10);
        // base 2*1024 + 4 tables * 3*1024 prediction bits
        assert_eq!(p.cost().state_bits, 2 * 1024 + 4 * 3 * 1024);
        // 4 tables * 1024 entries * (8 tag + 2 useful + 1 valid) + 32 history
        assert_eq!(p.cost().metadata_bits, 4 * 1024 * 11 + 32);
    }

    #[test]
    fn fresh_predictor_consults_the_base() {
        let p = Tage::new(4, 16, 8, 6);
        // No tagged entry is valid yet, so the bimodal base (weakly
        // taken) decides.
        assert!(p.predict(0x1000));
        assert!(p.counter_id(0x1000).expect("tage reports counters") < p.base.len());
    }

    #[test]
    fn history_pattern_allocates_and_provides() {
        // A branch alternating on a 2-period pattern defeats the base
        // bimodal but is perfectly predictable from one history bit:
        // TAGE must allocate a tagged entry and converge.
        let mut p = Tage::new(3, 8, 8, 6);
        let pc = 0x2000;
        let mut late_miss = 0;
        for i in 0..2000u32 {
            let taken = i % 2 == 0;
            if i >= 500 && p.predict(pc) != taken {
                late_miss += 1;
            }
            p.update(pc, taken);
        }
        assert!(late_miss <= 4, "tage lost a trivial pattern ({late_miss})");
        assert!(
            p.tables
                .iter()
                .any(|t| t.entries.iter().any(|e| e.valid && e.useful > 0)),
            "the providing entry must have proven useful"
        );
    }

    #[test]
    fn failed_allocation_decays_useful_counters() {
        let mut p = Tage::new(2, 4, 4, 1);
        // Pin every entry above the provider as useful, then force a
        // misprediction with no provider: the allocator must decay.
        for t in &mut p.tables {
            for e in &mut t.entries {
                *e = TagEntry {
                    ctr: CTR_MAX,
                    tag: 0x7, // never matches tag_of under empty history by construction below
                    useful: USEFUL_MAX,
                    valid: true,
                };
            }
        }
        let pc = 0x3000;
        // tag 0x7 must genuinely miss for the decay path to be the one
        // exercised.
        for t in &p.tables {
            assert_ne!(p.tag_of(t, pc), 0x7, "test wants tag misses");
        }
        p.update(pc, false); // base predicts taken -> mispredict, no u==0 slot
        let dropped = p
            .tables
            .iter()
            .any(|t| t.entries.iter().any(|e| e.useful < USEFUL_MAX));
        assert!(dropped, "failed allocation must decay useful counters");
    }

    #[test]
    fn tags_filter_index_aliases() {
        let p = Tage::new(1, 4, 8, 4);
        let table = &p.tables[0];
        // Find two PCs that share an index but differ in tag: the
        // filter the cfa tiering models.
        let pcs: Vec<u64> = (0..512u64).map(|i| 0x1000 + i * 4).collect();
        let mut found = false;
        'outer: for (ai, &a) in pcs.iter().enumerate() {
            for &b in &pcs[ai + 1..] {
                if p.index_of(table, a) == p.index_of(table, b)
                    && p.tag_of(table, a) != p.tag_of(table, b)
                {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "index aliases must be separable by tag");
    }

    #[test]
    fn reset_restores_power_on() {
        let mut p = Tage::new(3, 12, 6, 4);
        for i in 0..500u64 {
            p.update(0x1000 + (i % 13) * 4, i % 3 == 0);
        }
        p.reset();
        let fresh = Tage::new(3, 12, 6, 4);
        for pc in (0..64u64).map(|i| 0x1000 + i * 4) {
            assert_eq!(p.predict(pc), fresh.predict(pc));
        }
        assert!(p.tables.iter().all(|t| t.entries.iter().all(|e| !e.valid)));
    }

    #[test]
    fn counter_ids_stay_in_range() {
        let mut p = Tage::new(3, 8, 5, 4);
        for i in 0..800u64 {
            let pc = 0x1000 + (i % 37) * 4;
            let id = p.counter_id(pc).expect("tage reports counters");
            assert!(id < p.num_counters());
            p.update(pc, i % 5 != 0);
        }
    }
}
