//! Concrete predictor implementations.
//!
//! Each submodule holds one scheme, its configuration type, and unit
//! tests exercising the behaviours the paper attributes to it.

pub mod agree;
pub mod bimodal;
pub mod bimode;
pub mod cascade;
pub mod delayed;
pub mod gselect;
pub mod gshare;
pub mod gskew;
pub mod perceptron;
pub mod statics;
pub mod tage;
pub mod tournament;
pub mod trimode;
pub mod two_level;
pub mod twobcgskew;
pub mod yags;
