//! The Smith bimodal predictor: a per-address table of two-bit counters
//! (\[Smith81\]). It is both a baseline and the building block the bi-mode
//! scheme uses as its choice predictor.

use crate::cost::Cost;
use crate::counter::Counter2;
use crate::index::{low_bits, pc_word};
use crate::predictor::{CounterId, Predictor};
use crate::table::CounterTable;

/// A `2^bits`-entry two-bit-counter table indexed by low PC bits.
///
/// ```
/// use bpred_core::{Bimodal, Predictor};
///
/// // A loop-closing branch is learned after two taken outcomes.
/// let mut p = Bimodal::new(10);
/// let pc = 0x2000;
/// p.update(pc, true);
/// p.update(pc, true);
/// assert!(p.predict(pc));
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: CounterTable,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^bits` counters, initialised
    /// weakly-taken as in the paper's experiments.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 30`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        Self::with_init(bits, Counter2::WEAKLY_TAKEN)
    }

    /// Creates a bimodal predictor with a chosen initial counter state.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 30`.
    #[must_use]
    pub fn with_init(bits: u32, init: Counter2) -> Self {
        Self {
            table: CounterTable::new(bits, init),
        }
    }

    /// The table index consulted for `pc`.
    #[must_use]
    pub fn index(&self, pc: u64) -> usize {
        low_bits(pc_word(pc), self.table.index_bits()) as usize
    }

    /// Read access to the underlying table (used by the analysis crate).
    #[must_use]
    pub fn table(&self) -> &CounterTable {
        &self.table
    }
}

impl Predictor for Bimodal {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("bimodal(s={})", self.table.index_bits())
    }

    fn predict(&self, pc: u64) -> bool {
        self.table.predict(self.index(pc))
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table.update(idx, taken);
    }

    fn cost(&self) -> Cost {
        Cost::state(self.table.storage_bits())
    }

    fn reset(&mut self) {
        self.table.reset();
    }

    fn counter_id(&self, pc: u64) -> Option<CounterId> {
        Some(self.index(pc))
    }

    fn num_counters(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Bimodal::new(8);
        let pc = 0x4000;
        for _ in 0..4 {
            p.update(pc, false);
        }
        assert!(!p.predict(pc));
    }

    #[test]
    fn distinct_branches_use_distinct_counters() {
        let mut p = Bimodal::new(8);
        p.update(0x1000, false);
        p.update(0x1000, false);
        assert!(!p.predict(0x1000));
        assert!(p.predict(0x1004), "neighbouring branch must be unaffected");
        assert_ne!(p.counter_id(0x1000), p.counter_id(0x1004));
    }

    #[test]
    fn aliases_when_pc_bits_wrap() {
        // 2^4 entries: word PCs 16 apart collide - per-address aliasing.
        let mut p = Bimodal::new(4);
        let a = 0x1000;
        let b = a + 16 * 4;
        p.update(a, false);
        p.update(a, false);
        assert!(!p.predict(b));
        assert_eq!(p.counter_id(a), p.counter_id(b));
    }

    #[test]
    fn cannot_learn_an_alternating_pattern() {
        // T,N,T,N... defeats a two-bit counter: it mispredicts at least
        // half the time once warmed up. This motivates two-level schemes.
        let mut p = Bimodal::new(6);
        let pc = 0x100;
        let mut miss = 0;
        for i in 0..1000 {
            let taken = i % 2 == 0;
            if p.predict(pc) != taken {
                miss += 1;
            }
            p.update(pc, taken);
        }
        assert!(
            miss >= 500,
            "bimodal mispredicted only {miss}/1000 on alternation"
        );
    }

    #[test]
    fn reset_restores_initial_prediction() {
        let mut p = Bimodal::new(6);
        p.update(0, false);
        p.update(0, false);
        assert!(!p.predict(0));
        p.reset();
        assert!(p.predict(0));
    }

    #[test]
    fn cost_counts_two_bits_per_entry() {
        let p = Bimodal::new(12);
        assert_eq!(p.cost().state_bits, 2 * 4096);
        assert_eq!(p.cost().metadata_bits, 0);
        assert_eq!(p.num_counters(), 4096);
    }

    #[test]
    fn name_mentions_size() {
        assert_eq!(Bimodal::new(10).name(), "bimodal(s=10)");
    }
}
