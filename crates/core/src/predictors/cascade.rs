//! Confidence-gated cascade: a staged composition of existing
//! predictors, cheapest first, in the bimodal → tagged → neural shape
//! of the RISCV-Simulator reference (SNIPPETS.md snippet 1).
//!
//! Each stage beyond the first owns a small per-PC *gate* table of
//! two-bit counters trained on "was this stage correct here?". A
//! prediction consults the most advanced stage whose gate is
//! confident, falling back stage by stage to the unconditional first
//! stage — so the expensive components only speak for the PC regions
//! where they have earned trust, and the cheap bimodal front end
//! carries cold start and the easy branches.

use crate::cost::Cost;
use crate::counter::Counter2;
use crate::index::{low_bits, pc_word, to_index};
use crate::predictor::Predictor;
use crate::table::CounterTable;

/// log2 of each stage gate table; gates are two-bit counters and count
/// as prediction state on the paper's cost axis.
pub const CASCADE_GATE_BITS: u32 = 6;

/// A confidence-gated cascade over two or more component predictors.
#[derive(Debug)]
pub struct Cascade {
    stages: Vec<Box<dyn Predictor>>,
    /// `gates[i]` gates `stages[i + 1]`; gates start distrusting, so a
    /// cold cascade behaves exactly like its first stage.
    gates: Vec<CounterTable>,
}

impl Clone for Cascade {
    fn clone(&self) -> Self {
        Self {
            stages: self.stages.iter().map(|s| s.clone_box()).collect(),
            gates: self.gates.clone(),
        }
    }
}

impl Cascade {
    /// Builds a cascade over the given stages, first stage the
    /// unconditional fallback.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two stages — a one-stage cascade is just
    /// that stage.
    #[must_use]
    pub fn new(stages: Vec<Box<dyn Predictor>>) -> Self {
        assert!(
            stages.len() >= 2,
            "a cascade wants at least two stages, got {}",
            stages.len()
        );
        let gates = (1..stages.len())
            .map(|_| CounterTable::new(CASCADE_GATE_BITS, Counter2::WEAKLY_NOT_TAKEN))
            .collect();
        Self { stages, gates }
    }

    fn gate_index(pc: u64) -> usize {
        to_index(low_bits(pc_word(pc), CASCADE_GATE_BITS))
    }

    /// The stage a prediction at `pc` would consult right now.
    #[must_use]
    pub fn selected_stage(&self, pc: u64) -> usize {
        let gi = Self::gate_index(pc);
        (1..self.stages.len())
            .rev()
            .find(|&i| self.gates[i - 1].predict(gi))
            .unwrap_or(0)
    }
}

impl Predictor for Cascade {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        let names: Vec<String> = self.stages.iter().map(|s| s.name()).collect();
        format!("cascade({})", names.join("; "))
    }

    fn predict(&self, pc: u64) -> bool {
        self.stages[self.selected_stage(pc)].predict(pc)
    }

    fn update(&mut self, pc: u64, taken: bool) {
        // Stage predictions from the pre-update state: every gate
        // scores its stage on what that stage would have said.
        let predictions: Vec<bool> = self.stages.iter().map(|s| s.predict(pc)).collect();
        let gi = Self::gate_index(pc);
        for (gate, &prediction) in self.gates.iter_mut().zip(&predictions[1..]) {
            gate.update(gi, prediction == taken);
        }
        // Every stage trains on every branch, so a stage is warm by
        // the time its gate starts trusting it.
        for stage in &mut self.stages {
            stage.update(pc, taken);
        }
    }

    fn cost(&self) -> Cost {
        let mut cost = Cost::default();
        for stage in &self.stages {
            cost = cost.plus(stage.cost());
        }
        for gate in &self.gates {
            cost.state_bits += gate.storage_bits();
        }
        cost
    }

    fn reset(&mut self) {
        for stage in &mut self.stages {
            stage.reset();
        }
        for gate in &mut self.gates {
            gate.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::bimodal::Bimodal;
    use crate::predictors::gshare::Gshare;
    use crate::predictors::statics::AlwaysTaken;

    fn two_stage() -> Cascade {
        Cascade::new(vec![Box::new(Bimodal::new(4)), Box::new(Gshare::new(5, 5))])
    }

    #[test]
    #[should_panic(expected = "at least two stages")]
    fn one_stage_is_rejected() {
        let _ = Cascade::new(vec![Box::new(AlwaysTaken)]);
    }

    #[test]
    fn cold_cascade_is_its_first_stage() {
        let c = two_stage();
        let first = Bimodal::new(4);
        for pc in (0..128u64).map(|i| 0x1000 + i * 4) {
            assert_eq!(c.selected_stage(pc), 0);
            assert_eq!(c.predict(pc), first.predict(pc));
        }
    }

    #[test]
    fn gates_promote_a_stage_that_earns_trust() {
        // A history-dependent alternating branch: bimodal oscillates,
        // gshare nails it; the gate must hand the PC region over.
        let mut c = two_stage();
        let pc = 0x2000;
        for i in 0..500u32 {
            c.update(pc, i % 2 == 0);
        }
        assert_eq!(c.selected_stage(pc), 1, "gshare should have won the gate");
        let mut late_miss = 0;
        for i in 500..1000u32 {
            let taken = i % 2 == 0;
            if c.predict(pc) != taken {
                late_miss += 1;
            }
            c.update(pc, taken);
        }
        assert_eq!(late_miss, 0, "promoted stage must carry the pattern");
    }

    #[test]
    fn most_advanced_confident_stage_wins() {
        let mut c = Cascade::new(vec![
            Box::new(AlwaysTaken),
            Box::new(Bimodal::new(4)),
            Box::new(Gshare::new(5, 5)),
        ]);
        // All-taken stream: every stage is correct, every gate
        // saturates; selection must pick the most advanced stage.
        let pc = 0x3000;
        for _ in 0..50 {
            c.update(pc, true);
        }
        assert_eq!(c.selected_stage(pc), 2);
    }

    #[test]
    fn cost_sums_stages_plus_gate_state() {
        let c = two_stage();
        let stages = Bimodal::new(4).cost().plus(Gshare::new(5, 5).cost());
        let got = c.cost();
        assert_eq!(
            got.state_bits,
            stages.state_bits + 2 * (1 << CASCADE_GATE_BITS)
        );
        assert_eq!(got.metadata_bits, stages.metadata_bits);
    }

    #[test]
    fn reset_restores_power_on() {
        let mut c = two_stage();
        for i in 0..400u64 {
            c.update(0x1000 + (i % 11) * 4, i % 3 == 0);
        }
        c.reset();
        let fresh = two_stage();
        for pc in (0..64u64).map(|i| 0x1000 + i * 4) {
            assert_eq!(c.selected_stage(pc), 0);
            assert_eq!(c.predict(pc), fresh.predict(pc));
        }
    }

    #[test]
    fn clone_box_is_independent_deep_state() {
        let mut a = two_stage();
        let mut b = a.clone_box();
        for i in 0..100u32 {
            b.update(0x1000, i % 2 == 0);
        }
        // The original must be untouched by training the clone.
        assert_eq!(a.selected_stage(0x1000), 0);
        a.update(0x1000, true);
    }
}
