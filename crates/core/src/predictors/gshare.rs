//! McFarling's gshare predictor (\[McFarling93\]): the paper's principal
//! baseline.
//!
//! The global history is XOR-ed with low branch-address bits to index one
//! table of two-bit counters. Following the paper (Section 3.1), the
//! history length `m` and the table index width `s` are independent with
//! `m <= s`; when `m < s` the top `s - m` index bits are pure address and
//! the table behaves as `2^(s-m)` PHTs — the multi-PHT configurations the
//! exhaustive `gshare.best` search ranges over. `m == s` is the
//! single-PHT configuration (`gshare.1PHT`).

use crate::cost::Cost;
use crate::counter::Counter2;
use crate::history::GlobalHistory;
use crate::index::gshare_index;
use crate::predictor::{CounterId, Predictor};
use crate::table::CounterTable;

/// A gshare predictor with a `2^s`-entry table and `m` history bits.
///
/// ```
/// use bpred_core::{Gshare, Predictor};
///
/// // The paper's "history-indexed" exemplar: 8 address bits XOR 8
/// // history bits into 256 counters.
/// let mut p = Gshare::new(8, 8);
/// assert_eq!(p.name(), "gshare(s=8,h=8)");
/// let pc = 0x1000;
/// for i in 0..64 { p.update(pc, i % 2 == 0); }
/// assert!(p.predict(pc)); // alternation learned through global history
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: CounterTable,
    history: GlobalHistory,
    table_bits: u32,
    history_bits: u32,
}

impl Gshare {
    /// Creates a gshare with `2^table_bits` counters (initialised
    /// weakly-taken, as in the paper's experiments) and `history_bits` of
    /// global history.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits > 30` or `history_bits > table_bits`.
    #[must_use]
    pub fn new(table_bits: u32, history_bits: u32) -> Self {
        assert!(
            history_bits <= table_bits,
            "gshare history ({history_bits}) must not exceed table index bits ({table_bits})"
        );
        Self {
            table: CounterTable::new(table_bits, Counter2::WEAKLY_TAKEN),
            history: GlobalHistory::new(history_bits),
            table_bits,
            history_bits,
        }
    }

    /// The single-PHT configuration: history length equals index width.
    #[must_use]
    pub fn single_pht(table_bits: u32) -> Self {
        Self::new(table_bits, table_bits)
    }

    /// log2 of the table size.
    #[must_use]
    pub fn table_bits(&self) -> u32 {
        self.table_bits
    }

    /// Global history length in bits.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// Number of PHTs in the Yeh–Patt view: `2^(s - m)`.
    #[must_use]
    pub fn num_phts(&self) -> usize {
        1usize << (self.table_bits - self.history_bits)
    }

    /// The table index consulted for `pc` in the current state.
    #[must_use]
    pub fn index(&self, pc: u64) -> usize {
        gshare_index(pc, self.history.value(), self.table_bits, self.history_bits)
    }
}

impl Predictor for Gshare {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("gshare(s={},h={})", self.table_bits, self.history_bits)
    }

    fn predict(&self, pc: u64) -> bool {
        self.table.predict(self.index(pc))
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table.update(idx, taken);
        self.history.push(taken);
    }

    fn cost(&self) -> Cost {
        Cost {
            state_bits: self.table.storage_bits(),
            metadata_bits: u64::from(self.history_bits),
        }
    }

    fn reset(&mut self) {
        self.table.reset();
        self.history.reset();
    }

    fn counter_id(&self, pc: u64) -> Option<CounterId> {
        Some(self.index(pc))
    }

    fn num_counters(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_history_gshare_equals_bimodal() {
        use crate::predictors::bimodal::Bimodal;
        let mut g = Gshare::new(8, 0);
        let mut b = Bimodal::new(8);
        let pcs = [0x1000u64, 0x1010, 0x2044, 0x1000, 0x1010];
        for (i, &pc) in pcs.iter().cycle().take(200).enumerate() {
            let taken = (i * 7) % 3 == 0;
            assert_eq!(g.predict(pc), b.predict(pc), "step {i}");
            g.update(pc, taken);
            b.update(pc, taken);
        }
    }

    #[test]
    fn learns_correlated_if_then_else() {
        // Branch B's outcome equals branch A's previous outcome: global
        // history makes B perfectly predictable.
        let mut p = Gshare::new(10, 10);
        let (a, b) = (0x1000u64, 0x1040u64);
        let mut late_miss = 0;
        for i in 0..2000 {
            let a_out = (i / 3) % 2 == 0; // slow alternation
            p.update(a, a_out);
            let b_out = a_out;
            if i >= 500 && p.predict(b) != b_out {
                late_miss += 1;
            }
            p.update(b, b_out);
        }
        assert!(
            late_miss <= 2,
            "gshare missed correlation {late_miss} times"
        );
    }

    #[test]
    fn destructive_aliasing_between_opposite_biased_branches() {
        // Two branches chosen to collide in the table with opposite
        // biases: the Section 2.1 failure mode gshare suffers from.
        let s = 4u32;
        let mut p = Gshare::new(s, 0); // no history: collision is purely address
        let a = 0x1000u64;
        let b = a + (1u64 << (s + 2)); // same low s word bits
        assert_eq!(p.index(a), p.index(b));
        let mut late_miss = 0;
        for i in 0..400 {
            for (pc, t) in [(a, true), (b, false)] {
                if i >= 100 && p.predict(pc) != t {
                    late_miss += 1;
                }
                p.update(pc, t);
            }
        }
        assert!(
            late_miss >= 300,
            "aliased counter must oscillate, missed {late_miss}"
        );
    }

    #[test]
    fn num_phts_matches_address_only_bits() {
        assert_eq!(Gshare::new(10, 10).num_phts(), 1);
        assert_eq!(Gshare::new(10, 8).num_phts(), 4);
        assert_eq!(Gshare::new(10, 0).num_phts(), 1024);
    }

    #[test]
    fn single_pht_constructor() {
        let p = Gshare::single_pht(12);
        assert_eq!(p.table_bits(), 12);
        assert_eq!(p.history_bits(), 12);
        assert_eq!(p.num_phts(), 1);
    }

    #[test]
    fn cost_counts_counters_as_state_history_as_metadata() {
        let p = Gshare::new(13, 9);
        assert_eq!(p.cost().state_bits, 2 * 8192);
        assert_eq!(p.cost().metadata_bits, 9);
        assert_eq!(p.cost().state_kib(), 2.0);
    }

    #[test]
    fn update_trains_pre_update_index() {
        // The counter trained must be the one selected by the history
        // *before* the shift; otherwise predict/update desynchronise.
        let mut p = Gshare::new(6, 6);
        let pc = 0x1000;
        let idx_before = p.index(pc);
        let counter_before = p.table.counter(idx_before);
        p.update(pc, false);
        assert_eq!(p.table.counter(idx_before), counter_before.updated(false));
    }

    #[test]
    fn reset_restores_power_on_behaviour() {
        let mut p = Gshare::new(8, 8);
        for i in 0..100 {
            p.update(0x40 * i, i % 3 == 0);
        }
        p.reset();
        let fresh = Gshare::new(8, 8);
        for pc in (0..256u64).map(|i| i * 4) {
            assert_eq!(p.predict(pc), fresh.predict(pc));
        }
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn rejects_history_longer_than_index() {
        let _ = Gshare::new(8, 9);
    }
}
