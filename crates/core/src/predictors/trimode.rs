//! A tri-mode predictor: this reproduction's implementation of the
//! bi-mode paper's stated future-work direction.
//!
//! Section 5: "there are at least two directions for the future work:
//! one is to find a cost-effective way to reduce the weakly biased
//! substreams, and the other is to further separate the weakly-biased
//! substreams from the strongly-biased substreams for the counters."
//!
//! This predictor takes the second direction literally: a third
//! direction bank is reserved for branches the choice stage classifies
//! as *weakly biased*, so their thrashy substreams stop polluting the
//! two strongly-biased banks. Classification uses a per-address
//! three-bit *conflict counter* with asymmetric update (+2 when the
//! choice direction disagrees with the outcome, -1 when it agrees):
//! a branch whose choice direction keeps losing — which is exactly
//! what weak bias looks like from the choice table's seat — saturates
//! the counter and is quarantined, while a 90%-biased branch's
//! occasional conflicts are outweighed by its agreements.
//!
//! This is an extension beyond the paper (evaluated in the
//! `future-trimode` experiment), not a reproduction artefact.

use crate::cost::Cost;
use crate::counter::{Counter2, SatCounter};
use crate::history::GlobalHistory;
use crate::index::{gshare_index, low_bits, pc_word};
use crate::predictor::{CounterId, Predictor};
use crate::table::CounterTable;

/// Configuration for a [`TriMode`] predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriModeConfig {
    /// log2 of each of the three direction banks.
    pub direction_bits: u32,
    /// log2 of the choice and conflict tables.
    pub choice_bits: u32,
    /// Global history length (`<= direction_bits`).
    pub history_bits: u32,
}

impl TriModeConfig {
    /// Same-shape default as [`BiModeConfig::paper_default`]
    /// (choice/history sized to the banks).
    ///
    /// [`BiModeConfig::paper_default`]: crate::BiModeConfig::paper_default
    #[must_use]
    pub fn new(direction_bits: u32, choice_bits: u32, history_bits: u32) -> Self {
        Self {
            direction_bits,
            choice_bits,
            history_bits,
        }
    }
}

/// Which bank a lookup selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    NotTaken = 0,
    Taken = 1,
    Weak = 2,
}

/// The tri-mode predictor: bi-mode plus a weak bank.
#[derive(Debug, Clone)]
pub struct TriMode {
    config: TriModeConfig,
    choice: CounterTable,
    conflict: Vec<SatCounter>,
    banks: [CounterTable; 3],
    history: GlobalHistory,
}

#[derive(Debug, Clone, Copy)]
struct Lookup {
    choice_index: usize,
    choice_taken: bool,
    mode: Mode,
    direction_index: usize,
    prediction: bool,
}

impl TriMode {
    /// Creates a tri-mode predictor.
    ///
    /// # Panics
    ///
    /// Panics if any width exceeds 30 bits or
    /// `history_bits > direction_bits`.
    #[must_use]
    pub fn new(config: TriModeConfig) -> Self {
        assert!(
            config.history_bits <= config.direction_bits,
            "tri-mode history ({}) must not exceed direction index bits ({})",
            config.history_bits,
            config.direction_bits
        );
        Self {
            config,
            choice: CounterTable::new(config.choice_bits, Counter2::WEAKLY_TAKEN),
            // Conflict counters start at "no conflict".
            conflict: vec![SatCounter::new(3, 0); 1 << config.choice_bits],
            banks: [
                CounterTable::new(config.direction_bits, Counter2::WEAKLY_NOT_TAKEN),
                CounterTable::new(config.direction_bits, Counter2::WEAKLY_TAKEN),
                CounterTable::new(config.direction_bits, Counter2::WEAKLY_TAKEN),
            ],
            history: GlobalHistory::new(config.history_bits),
        }
    }

    /// The configuration this predictor was built with.
    #[must_use]
    pub fn config(&self) -> &TriModeConfig {
        &self.config
    }

    fn lookup(&self, pc: u64) -> Lookup {
        let choice_index = low_bits(pc_word(pc), self.config.choice_bits) as usize;
        let choice_taken = self.choice.predict(choice_index);
        // A "conflicted" branch (its choice direction keeps losing) is
        // routed to the weak bank.
        let mode = if self.conflict[choice_index].predict() {
            Mode::Weak
        } else if choice_taken {
            Mode::Taken
        } else {
            Mode::NotTaken
        };
        let direction_index = gshare_index(
            pc,
            self.history.value(),
            self.config.direction_bits,
            self.config.history_bits,
        );
        let prediction = self.banks[mode as usize].predict(direction_index);
        Lookup {
            choice_index,
            choice_taken,
            mode,
            direction_index,
            prediction,
        }
    }

    /// The currently selected bank for `pc` (0 = not-taken, 1 = taken,
    /// 2 = weak).
    #[must_use]
    pub fn selected_bank(&self, pc: u64) -> usize {
        self.lookup(pc).mode as usize
    }

    /// White-box snapshot of exactly the state one prediction consults,
    /// for the `bpred-check` policy oracle (the tri-mode analogue of
    /// [`BiMode::probe`](crate::BiMode::probe)).
    #[must_use]
    pub fn probe(&self, pc: u64) -> TriModeProbe {
        let l = self.lookup(pc);
        TriModeProbe {
            choice_index: l.choice_index,
            choice_state: self.choice.counter(l.choice_index).state(),
            conflict_value: self.conflict[l.choice_index].value(),
            bank: l.mode as usize,
            direction_index: l.direction_index,
            direction_state: self.banks[l.mode as usize]
                .counter(l.direction_index)
                .state(),
            prediction: l.prediction,
            history: self.history.value(),
        }
    }

    /// The choice counter at `index` (oracle hook).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the choice table.
    #[must_use]
    pub fn choice_counter(&self, index: usize) -> Counter2 {
        self.choice.counter(index)
    }

    /// The conflict counter value at `index` (oracle hook).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the conflict table.
    #[must_use]
    pub fn conflict_value(&self, index: usize) -> u16 {
        self.conflict[index].value()
    }

    /// The direction counter at (`bank`, `index`) (oracle hook).
    ///
    /// # Panics
    ///
    /// Panics if `bank > 2` or `index` is out of range for the bank.
    #[must_use]
    pub fn direction_counter(&self, bank: usize, index: usize) -> Counter2 {
        self.banks[bank].counter(index)
    }

    /// The current global history pattern (oracle hook).
    #[must_use]
    pub fn history_value(&self) -> u64 {
        self.history.value()
    }
}

/// A white-box view of one tri-mode lookup, exposed so an external
/// policy oracle can verify the update rules transition by transition.
/// See [`TriMode::probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriModeProbe {
    /// Index consulted in the choice and conflict tables.
    pub choice_index: usize,
    /// Raw state (`0..=3`) of that choice counter.
    pub choice_state: u8,
    /// Value of the three-bit conflict counter.
    pub conflict_value: u16,
    /// Selected bank (0 = not-taken, 1 = taken, 2 = weak).
    pub bank: usize,
    /// Index consulted in the selected bank.
    pub direction_index: usize,
    /// Raw state (`0..=3`) of the selected direction counter.
    pub direction_state: u8,
    /// The final prediction the lookup produces.
    pub prediction: bool,
    /// Global history value at lookup time.
    pub history: u64,
}

impl Predictor for TriMode {
    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!(
            "tri-mode(d={},c={},h={})",
            self.config.direction_bits, self.config.choice_bits, self.config.history_bits
        )
    }

    fn predict(&self, pc: u64) -> bool {
        self.lookup(pc).prediction
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let l = self.lookup(pc);

        // Train only the selected bank, as in bi-mode.
        self.banks[l.mode as usize].update(l.direction_index, taken);

        // Conflict counter: +2 on disagreement, -1 on agreement, so a
        // persistent ~50% conflict rate saturates it while a ~10% rate
        // cannot.
        if l.choice_taken != taken {
            self.conflict[l.choice_index].update(true);
            self.conflict[l.choice_index].update(true);
        } else {
            self.conflict[l.choice_index].update(false);
        }

        // Choice follows the bi-mode partial-update rule.
        let save = l.choice_taken != taken && l.prediction == taken;
        if !save {
            self.choice.update(l.choice_index, taken);
        }

        self.history.push(taken);
    }

    fn cost(&self) -> Cost {
        Cost {
            state_bits: self.choice.storage_bits()
                + 3 * self.conflict.len() as u64
                + self
                    .banks
                    .iter()
                    .map(CounterTable::storage_bits)
                    .sum::<u64>(),
            metadata_bits: u64::from(self.config.history_bits),
        }
    }

    fn reset(&mut self) {
        self.choice.reset();
        self.conflict
            .iter_mut()
            .for_each(|c| *c = SatCounter::new(3, 0));
        for b in &mut self.banks {
            b.reset();
        }
        self.history.reset();
    }

    fn counter_id(&self, pc: u64) -> Option<CounterId> {
        let l = self.lookup(pc);
        Some(l.mode as usize * self.banks[0].len() + l.direction_index)
    }

    fn num_counters(&self) -> usize {
        3 * self.banks[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TriMode {
        TriMode::new(TriModeConfig::new(6, 8, 6))
    }

    #[test]
    fn biased_branches_stay_in_direction_banks() {
        let mut p = small();
        let (a, b) = (0x1000u64, 0x1004u64);
        for _ in 0..50 {
            p.update(a, true);
            p.update(b, false);
        }
        assert_eq!(p.selected_bank(a), 1, "taken-biased branch in taken bank");
        assert_eq!(p.selected_bank(b), 0, "not-taken-biased branch in NT bank");
        assert!(p.predict(a));
        assert!(!p.predict(b));
    }

    #[test]
    fn weakly_biased_branch_migrates_to_weak_bank() {
        let mut p = small();
        let pc = 0x2000;
        // Random-ish alternation keeps the choice direction losing.
        for i in 0..100 {
            p.update(pc, i % 2 == 0);
        }
        assert_eq!(
            p.selected_bank(pc),
            2,
            "alternating branch must use the weak bank"
        );
    }

    #[test]
    fn weak_branch_stops_polluting_strong_banks() {
        let mut p = small();
        let weak = 0x3000u64;
        let strong = weak + (1u64 << (6 + 2)); // same direction index
        let mut strong_miss = 0;
        for i in 0..600 {
            p.update(weak, i % 2 == 0);
            if i >= 200 && !p.predict(strong) {
                strong_miss += 1;
            }
            p.update(strong, true);
        }
        assert!(
            strong_miss <= 2,
            "strong branch must be clean once the weak one is quarantined ({strong_miss})"
        );
    }

    #[test]
    fn weak_bank_still_exploits_history() {
        // The weak bank is history-indexed, so a period-4 pattern is
        // learnable even for a "weak" (50% taken) branch.
        let mut p = TriMode::new(TriModeConfig::new(8, 8, 8));
        let pc = 0x4000;
        let mut late_miss = 0;
        for i in 0..2000 {
            let taken = i % 4 < 2;
            if i >= 500 && p.predict(pc) != taken {
                late_miss += 1;
            }
            p.update(pc, taken);
        }
        assert!(
            late_miss <= 4,
            "period-4 pattern must be learned ({late_miss})"
        );
    }

    #[test]
    fn cost_counts_three_banks_and_both_choice_tables() {
        let p = small();
        // 3 banks of 64 two-bit counters + 256 two-bit choice + 256
        // three-bit conflict counters.
        assert_eq!(p.cost().state_bits, 2 * 3 * 64 + 2 * 256 + 3 * 256);
        assert_eq!(p.num_counters(), 192);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut p = small();
        for i in 0..300u64 {
            p.update(0x1000 + (i % 13) * 4, i % 3 == 0);
        }
        p.reset();
        let fresh = small();
        for pc in (0..64u64).map(|i| 0x1000 + i * 4) {
            assert_eq!(p.predict(pc), fresh.predict(pc));
            assert_eq!(p.selected_bank(pc), fresh.selected_bank(pc));
        }
    }

    #[test]
    fn counter_ids_partition_by_mode() {
        let mut p = small();
        for i in 0..100 {
            p.update(0x2000, i % 2 == 0); // force weak mode
        }
        let id = p.counter_id(0x2000).unwrap();
        assert!(
            (2 * 64..192).contains(&id),
            "weak-bank ids live in the top third: {id}"
        );
    }
}
