//! Dynamic branch predictor models reproducing *The Bi-Mode Branch Predictor*
//! (Lee, Chen & Mudge, MICRO-30, 1997).
//!
//! This crate implements the paper's contribution — the [`BiMode`] predictor —
//! together with every predictor it is defined against or compared with:
//! the Smith [`Bimodal`] two-bit counter scheme, the Yeh–Patt
//! [`TwoLevel`] family (GAg/GAs/PAg/PAs), McFarling's [`Gshare`] and
//! [`Gselect`], and the de-aliasing schemes from the paper's related-work
//! lineage ([`Agree`], [`Gskew`], [`Yags`], and the [`Tournament`]
//! combining predictor).
//!
//! All predictors implement the [`Predictor`] trait, are trace-driven
//! (call [`Predictor::predict`] then [`Predictor::update`] once per
//! conditional branch in program order), and report their hardware cost in
//! bytes of two-bit counter state exactly as the paper accounts for it.
//!
//! # Quick example
//!
//! ```
//! use bpred_core::{BiMode, BiModeConfig, Predictor};
//!
//! // The configuration analysed in the paper's Figure 6: a 128-counter
//! // choice predictor and two 128-counter direction banks.
//! let mut p = BiMode::new(BiModeConfig::new(7, 7, 7));
//! let pc = 0x0040_1000;
//! let predicted = p.predict(pc);
//! p.update(pc, true); // the branch was actually taken
//! assert_eq!(p.predict(pc), true); // weakly-taken choice now reinforced
//! let _ = predicted;
//! ```
//!
//! # Cost model
//!
//! Following Section 3.3 of the paper, cost is measured by counting the
//! bytes used in two-bit (and, where a scheme needs them, one-bit) state
//! tables; history registers and tags are reported separately as the
//! metadata component of [`cost::Cost`]. A bi-mode predictor with two `2^d`-entry
//! direction banks and a `2^d`-entry choice table therefore costs 1.5x the
//! next-smaller gshare, reproducing the staggered points of Figures 2–4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod counter;
pub mod history;
pub mod index;
pub mod plane;
pub mod predictor;
pub mod predictors;
pub mod spec;
pub mod table;

pub use counter::{Counter2, SatCounter};
pub use history::{GlobalHistory, PerAddressHistories};
pub use plane::{CounterPlanes, PlaneTable, LANES};
pub use predictor::{CounterId, Predictor};
pub use predictors::agree::Agree;
pub use predictors::bimodal::Bimodal;
pub use predictors::bimode::{
    BankInit, BiMode, BiModeConfig, BiModeProbe, ChoiceUpdate, IndexShare,
};
pub use predictors::cascade::{Cascade, CASCADE_GATE_BITS};
pub use predictors::delayed::DelayedUpdate;
pub use predictors::gselect::Gselect;
pub use predictors::gshare::Gshare;
pub use predictors::gskew::Gskew;
pub use predictors::perceptron::{Perceptron, WEIGHT_BITS};
pub use predictors::statics::{AlwaysNotTaken, AlwaysTaken, Btfnt};
pub use predictors::tage::Tage;
pub use predictors::tournament::Tournament;
pub use predictors::trimode::{TriMode, TriModeConfig, TriModeProbe};
pub use predictors::two_level::{HistorySource, TwoLevel, TwoLevelKind};
pub use predictors::twobcgskew::TwoBcGskew;
pub use predictors::yags::Yags;
pub use spec::{ParseSpecError, PredictorSpec};
