//! The [`Predictor`] trait: the trace-driven interface every scheme
//! implements, plus the counter-identification hook the bias-class
//! analysis of Section 4 relies on.

use std::fmt;

use crate::cost::Cost;

/// Identifies one final-direction two-bit counter inside a predictor.
///
/// For single-table schemes this is the table index; for the bi-mode
/// predictor it is `bank * bank_len + index` over the two direction banks.
/// The analysis crate keys its per-(branch, counter) substreams on this.
pub type CounterId = usize;

/// A trace-driven dynamic branch predictor.
///
/// # Contract
///
/// For every conditional branch, in program order, call
/// [`predict`](Self::predict) (any number of times — it is pure with
/// respect to predictor state) and then [`update`](Self::update) exactly
/// once with the architectural outcome. `update` recomputes whatever
/// internal indices it needs from the *pre-update* state, so no token has
/// to be carried from `predict` to `update`.
///
/// Implementations are deterministic: the same branch stream always
/// produces the same predictions.
///
/// The `Debug` supertrait must render the *complete* mutable state
/// (tables, histories, in-flight queues): the model checker in
/// `bpred-check` uses the debug rendering as a state digest when it
/// enumerates the reachable state space, so two states may format
/// equally only if they are behaviourally identical.
pub trait Predictor: fmt::Debug {
    /// A human-readable configuration name, e.g. `gshare(s=10,h=8)`.
    fn name(&self) -> String;

    /// Predicts the direction of the branch at `pc` (a byte address).
    fn predict(&self, pc: u64) -> bool;

    /// Predicts with the decoded taken-target available, as a fetch
    /// engine would have it. Dynamic predictors ignore the target (the
    /// default delegates to [`predict`](Self::predict)); static
    /// heuristics like BTFNT override it.
    fn predict_with_target(&self, pc: u64, target: u64) -> bool {
        let _ = target;
        self.predict(pc)
    }

    /// Trains the predictor with the architectural outcome of the branch
    /// at `pc` and advances any history state.
    fn update(&mut self, pc: u64, taken: bool);

    /// Hardware cost in the paper's accounting (see [`crate::cost`]).
    fn cost(&self) -> Cost;

    /// Restores the power-on state (tables re-initialised, histories
    /// cleared).
    fn reset(&mut self);

    /// The final-direction counter the *current* state would consult for
    /// `pc`, if the scheme is built from identifiable two-bit counters.
    ///
    /// Must be called before the corresponding `update`. Returns `None`
    /// for schemes without a single identifiable direction counter
    /// (e.g. majority voters).
    fn counter_id(&self, pc: u64) -> Option<CounterId> {
        let _ = pc;
        None
    }

    /// Total number of distinct [`CounterId`]s this predictor can return,
    /// or 0 when [`counter_id`](Self::counter_id) is unsupported.
    fn num_counters(&self) -> usize {
        0
    }

    /// Clones the predictor (state included) behind a fresh box.
    ///
    /// This is the object-safe surface behind `Clone for Box<dyn
    /// Predictor>`; sweeps and the model checker use it to fork
    /// predictor states without knowing the concrete type.
    fn clone_box(&self) -> Box<dyn Predictor>;
}

impl Clone for Box<dyn Predictor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl Predictor for Box<dyn Predictor> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn predict(&self, pc: u64) -> bool {
        (**self).predict(pc)
    }

    fn predict_with_target(&self, pc: u64, target: u64) -> bool {
        (**self).predict_with_target(pc, target)
    }

    fn update(&mut self, pc: u64, taken: bool) {
        (**self).update(pc, taken);
    }

    fn cost(&self) -> Cost {
        (**self).cost()
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn counter_id(&self, pc: u64) -> Option<CounterId> {
        (**self).counter_id(pc)
    }

    fn num_counters(&self) -> usize {
        (**self).num_counters()
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        (**self).clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::statics::AlwaysTaken;

    #[test]
    fn boxed_predictor_delegates() {
        let mut boxed: Box<dyn Predictor> = Box::new(AlwaysTaken);
        assert_eq!(boxed.name(), "always-taken");
        assert!(boxed.predict(0x1000));
        boxed.update(0x1000, false);
        assert!(boxed.predict(0x1000));
        assert_eq!(boxed.cost(), Cost::default());
        assert_eq!(boxed.counter_id(0), None);
        assert_eq!(boxed.num_counters(), 0);
        boxed.reset();
    }
}
