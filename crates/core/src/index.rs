//! Index functions mapping (branch address, history) pairs onto
//! pattern-history-table entries.
//!
//! The paper's whole analysis (Section 4) is about how these functions
//! partition the dynamic branch stream into per-counter substreams, so
//! they live in one place with explicit semantics:
//!
//! * [`gshare_index`] — XOR of address and history, the low `m` history
//!   bits zero-extended into an `s`-bit index. With `m < s` the top
//!   `s - m` bits are pure address, which is exactly the paper's
//!   "multiple PHTs" view of gshare (Section 3.1, footnote 1).
//! * [`gselect_index`] — concatenation of address and history bits
//!   (McFarling's gselect, also the GAs second-level index).
//! * [`skew_index`] — a family of distinct per-bank hash functions for the
//!   skewed predictor, substituting Seznec's inter-bank dispersion
//!   functions with odd-multiplier folding (documented in DESIGN.md).

/// Converts a byte PC to a word index by dropping the two alignment bits.
///
/// All predictors index with word-aligned PCs so that adjacent
/// instructions occupy adjacent table entries, as on the 32-bit RISC
/// machines the paper traced.
#[must_use]
pub fn pc_word(pc: u64) -> u64 {
    pc >> 2
}

/// The single audited `u64 -> usize` truncation site for table indices.
///
/// Every index function funnels through here after masking its result to
/// at most 30 bits, so the conversion is provably lossless; the repo
/// lint pass (`bpred-check`) denies any other narrowing `as` cast in
/// this module's hot paths.
///
/// # Panics
///
/// Debug builds panic if `value` does not fit the 30-bit index budget
/// (which would indicate a masking bug upstream, not a caller error).
#[inline]
#[must_use]
pub fn to_index(value: u64) -> usize {
    debug_assert!(
        value < (1 << 30),
        "table index {value:#x} exceeds the 30-bit index budget"
    );
    value as usize // cast-audited: masked to <= 30 bits by every caller
}

/// Masks a value to its low `bits` bits (`bits == 0` yields `0`).
///
/// # Panics
///
/// Panics if `bits > 63`.
#[must_use]
pub fn low_bits(value: u64, bits: u32) -> u64 {
    assert!(bits <= 63, "low_bits supports at most 63 bits, got {bits}");
    if bits == 0 {
        0
    } else {
        value & ((1u64 << bits) - 1)
    }
}

/// Folds a 64-bit value into `bits` bits by XOR-ing `bits`-wide chunks.
///
/// Used where a full history/address must be compressed rather than
/// truncated (skewed hashing, tag formation).
///
/// # Panics
///
/// Panics if `bits` is zero or greater than 63.
#[must_use]
pub fn fold_xor(value: u64, bits: u32) -> u64 {
    assert!(
        (1..=63).contains(&bits),
        "fold width must be 1..=63, got {bits}"
    );
    let mask = (1u64 << bits) - 1;
    let mut v = value;
    let mut acc = 0u64;
    while v != 0 {
        acc ^= v & mask;
        v >>= bits;
    }
    acc
}

/// The gshare index: `s`-bit table index from word PC XOR the low `m`
/// history bits.
///
/// `m <= s` is required; the `s - m` top bits then come purely from the
/// address, so the table behaves as `2^(s-m)` PHTs of `2^m` entries each.
/// `m == s` is the single-PHT configuration (`gshare.1PHT` in the paper),
/// `m == 0` degenerates to a bimodal table.
///
/// # Panics
///
/// Panics if `s > 30` or `m > s`.
///
/// ```
/// use bpred_core::index::gshare_index;
///
/// // 8 address bits XOR 2 history bits: the paper's "address-indexed"
/// // scheme from Figure 5 (bottom).
/// let idx = gshare_index(0x40_0123 << 2, 0b11, 8, 2);
/// assert_eq!(idx, (0x23 ^ 0b11) as usize);
/// ```
#[must_use]
pub fn gshare_index(pc: u64, history: u64, s: u32, m: u32) -> usize {
    assert!(s <= 30, "table index must be <= 30 bits, got {s}");
    assert!(
        m <= s,
        "history bits ({m}) must not exceed table index bits ({s})"
    );
    let index = to_index(low_bits(pc_word(pc), s) ^ low_bits(history, m));
    debug_assert!(index < (1usize << s), "gshare index escaped its table");
    index
}

/// The gselect index: `a` address bits concatenated above `m` history
/// bits, giving an `(a + m)`-bit index. The address selects the PHT, the
/// history the entry — the Yeh–Patt GAs organisation.
///
/// # Panics
///
/// Panics if `a + m > 30`.
#[must_use]
pub fn gselect_index(pc: u64, history: u64, a: u32, m: u32) -> usize {
    assert!(
        a + m <= 30,
        "gselect index must be <= 30 bits, got {}",
        a + m
    );
    let index = to_index((low_bits(pc_word(pc), a) << m) | low_bits(history, m));
    debug_assert!(
        index < (1usize << (a + m)),
        "gselect index escaped its table"
    );
    index
}

/// Per-bank skewing hash for the gskew predictor.
///
/// Bank `bank` (0..3) mixes the word PC and history with a distinct odd
/// multiplier before folding to `s` bits, so that two branches aliasing in
/// one bank are overwhelmingly likely to map apart in the others — the
/// property Seznec's dispersion functions provide in hardware.
///
/// # Panics
///
/// Panics if `bank >= 3`, `s` is zero or greater than 30.
#[must_use]
pub fn skew_index(pc: u64, history: u64, s: u32, m: u32, bank: usize) -> usize {
    assert!(bank < 3, "gskew has 3 banks, got bank {bank}");
    assert!(
        (1..=30).contains(&s),
        "table index must be 1..=30 bits, got {s}"
    );
    // Odd multipliers derived from the golden ratio, one per bank.
    const MULTIPLIERS: [u64; 3] = [
        0x9E37_79B9_7F4A_7C15,
        0xC2B2_AE3D_27D4_EB4F,
        0x1656_67B1_9E37_79F9,
    ];
    let key = (pc_word(pc) << 32) ^ low_bits(history, m);
    let mixed = key.wrapping_mul(MULTIPLIERS[bank]);
    let rotation = match bank {
        0 => 0,
        1 => 7,
        _ => 14,
    };
    let index = to_index(fold_xor(mixed.rotate_left(rotation), s));
    debug_assert!(index < (1usize << s), "skew index escaped its bank");
    index
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_index_is_identity_within_budget() {
        assert_eq!(to_index(0), 0);
        assert_eq!(to_index((1 << 30) - 1), (1 << 30) - 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "30-bit index budget")]
    fn to_index_rejects_oversized_values_in_debug() {
        let _ = to_index(1 << 30);
    }

    #[test]
    fn pc_word_drops_alignment_bits() {
        assert_eq!(pc_word(0x1000), 0x400);
        assert_eq!(pc_word(0x1004), 0x401);
    }

    #[test]
    fn low_bits_edges() {
        assert_eq!(low_bits(u64::MAX, 0), 0);
        assert_eq!(low_bits(u64::MAX, 5), 0b11111);
        assert_eq!(low_bits(0b1010, 3), 0b010);
    }

    #[test]
    fn fold_xor_known_values() {
        assert_eq!(fold_xor(0, 8), 0);
        assert_eq!(fold_xor(0xFF, 8), 0xFF);
        assert_eq!(fold_xor(0x0101, 8), 0x00); // 0x01 ^ 0x01
        assert_eq!(fold_xor(0xABCD, 8), 0xAB ^ 0xCD);
    }

    #[test]
    fn gshare_full_history_is_pure_xor() {
        // m == s: every index bit mixes address and history.
        let idx = gshare_index(0b1111 << 2, 0b1010, 4, 4);
        assert_eq!(idx, 0b0101);
    }

    #[test]
    fn gshare_zero_history_is_bimodal() {
        for pc in [0u64, 0x40, 0x1234 << 2] {
            assert_eq!(
                gshare_index(pc, 0xFFFF, 8, 0),
                (pc_word(pc) & 0xFF) as usize
            );
        }
    }

    #[test]
    fn gshare_partial_history_leaves_pure_address_bits() {
        // s=8, m=2: bits 2..8 of the index must come only from the PC.
        let pc = 0b1011_0100u64 << 2;
        for hist in 0..4u64 {
            let idx = gshare_index(pc, hist, 8, 2);
            assert_eq!(idx >> 2, 0b10_1101, "hist={hist}");
        }
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn gshare_rejects_history_longer_than_index() {
        let _ = gshare_index(0, 0, 4, 5);
    }

    #[test]
    fn gselect_concatenates() {
        let idx = gselect_index(0b101 << 2, 0b11, 3, 2);
        assert_eq!(idx, 0b1_0111);
    }

    #[test]
    fn gselect_distinguishes_what_gshare_aliases() {
        // Two (pc, history) pairs that collide under XOR but not under
        // concatenation - the classic gselect/gshare contrast.
        let a = (0b01u64 << 2, 0b10u64);
        let b = (0b10u64 << 2, 0b01u64);
        assert_eq!(gshare_index(a.0, a.1, 2, 2), gshare_index(b.0, b.1, 2, 2));
        assert_ne!(gselect_index(a.0, a.1, 2, 2), gselect_index(b.0, b.1, 2, 2));
    }

    #[test]
    fn skew_banks_disperse_collisions() {
        // Pairs that collide in bank 0 should essentially never collide in
        // both other banks too.
        let s = 8;
        let m = 8;
        let mut bank0_collisions = 0u32;
        let mut full_collisions = 0u32;
        for i in 0..200u64 {
            for j in (i + 1)..200u64 {
                let (pa, pb) = (0x1000 + i * 4, 0x1000 + j * 4);
                if skew_index(pa, i, s, m, 0) == skew_index(pb, j, s, m, 0) {
                    bank0_collisions += 1;
                    if skew_index(pa, i, s, m, 1) == skew_index(pb, j, s, m, 1)
                        && skew_index(pa, i, s, m, 2) == skew_index(pb, j, s, m, 2)
                    {
                        full_collisions += 1;
                    }
                }
            }
        }
        assert!(bank0_collisions > 0, "expected some single-bank collisions");
        assert_eq!(
            full_collisions, 0,
            "no pair should collide in all three banks"
        );
    }

    #[test]
    fn skew_index_in_range() {
        for bank in 0..3 {
            for pc in (0..4096u64).step_by(4) {
                let idx = skew_index(pc, pc * 3, 6, 10, bank);
                assert!(idx < 64);
            }
        }
    }
}
