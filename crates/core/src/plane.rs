//! Bit-sliced two-bit counters: 64 counter states packed into two
//! `u64` bit-planes, advanced by word-wide boolean operations.
//!
//! A [`Counter2`] state `v` in `0..=3` is split across two planes as
//! `v = 2*hi + lo`; bit `i` of each plane holds lane `i`'s bit. The
//! saturating transition table then reduces to pure boolean algebra
//! over whole words:
//!
//! ```text
//! state     hi lo | inc -> hi lo | dec -> hi lo | predict
//! 0 (SN)     0  0 |        0  1  |        0  0  |   0
//! 1 (WN)     0  1 |        1  0  |        0  0  |   0
//! 2 (WT)     1  0 |        1  1  |        0  1  |   1
//! 3 (ST)     1  1 |        1  1  |        1  0  |   1
//!
//! inc_hi = hi | lo      dec_hi = hi & lo      predict = hi
//! inc_lo = hi | !lo     dec_lo = hi & !lo
//! ```
//!
//! One [`CounterPlanes::update`] call therefore advances up to 64
//! independent saturating counters in a handful of ALU operations,
//! with no data-dependent branches. The transition is property-tested
//! against a reference `[Counter2; 64]` array below.
//!
//! [`PlaneTable`] stores a `2^bits`-entry counter table in this
//! representation (one counter costs exactly its two architectural
//! bits, 4x denser than the byte-per-counter
//! [`CounterTable`](crate::table::CounterTable)) and retires single
//! outcomes branchlessly through the same word-wide transition.

use crate::counter::Counter2;

/// Lanes per plane word: the width of the bit-sliced datapath.
pub const LANES: usize = 64;

/// 64 two-bit saturating counters packed into two `u64` bit-planes.
///
/// Lane `i` holds the counter whose high bit is bit `i` of `hi` and
/// low bit is bit `i` of `lo`, so lane `i`'s state is
/// `2*hi[i] + lo[i]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterPlanes {
    hi: u64,
    lo: u64,
}

impl CounterPlanes {
    /// All 64 lanes in the given state.
    #[must_use]
    pub fn splat(counter: Counter2) -> Self {
        let state = counter.state();
        Self {
            hi: if state & 2 != 0 { u64::MAX } else { 0 },
            lo: if state & 1 != 0 { u64::MAX } else { 0 },
        }
    }

    /// Builds planes from raw plane words (bit `i` of each word is
    /// lane `i`'s high/low state bit).
    #[must_use]
    pub fn from_words(hi: u64, lo: u64) -> Self {
        Self { hi, lo }
    }

    /// Packs a reference counter array into planes, lane `i` taking
    /// `counters[i]`.
    #[must_use]
    pub fn from_counters(counters: &[Counter2; LANES]) -> Self {
        let mut hi = 0u64;
        let mut lo = 0u64;
        for (lane, counter) in counters.iter().enumerate() {
            let state = u64::from(counter.state());
            hi |= (state >> 1) << lane;
            lo |= (state & 1) << lane;
        }
        Self { hi, lo }
    }

    /// Unpacks the planes back into a counter array.
    #[must_use]
    pub fn to_counters(self) -> [Counter2; LANES] {
        std::array::from_fn(|lane| {
            let hi = (self.hi >> lane) & 1;
            let lo = (self.lo >> lane) & 1;
            // Assembled from two single bits, so the state is in 0..=3.
            Counter2::from_state(((hi << 1) | lo) as u8)
        })
    }

    /// The high bit-plane word.
    #[must_use]
    pub fn hi(self) -> u64 {
        self.hi
    }

    /// The low bit-plane word.
    #[must_use]
    pub fn lo(self) -> u64 {
        self.lo
    }

    /// Lane `i` predicts taken iff bit `i` is set: the sign-bit rule
    /// `state >= 2` is exactly the high plane.
    #[must_use]
    pub fn predict_mask(self) -> u64 {
        self.hi
    }

    /// Advances every lane selected by `active_mask` with its outcome
    /// bit from `taken_mask` (bit set = taken = saturating increment,
    /// clear = saturating decrement). Inactive lanes are unchanged.
    ///
    /// Branchless: both transitions are computed word-wide and merged
    /// with masks, so the cost is a fixed handful of ALU operations
    /// regardless of outcomes or how many lanes are active.
    #[inline]
    pub fn update(&mut self, taken_mask: u64, active_mask: u64) {
        let (hi, lo) = (self.hi, self.lo);
        let inc_hi = hi | lo;
        let inc_lo = hi | !lo;
        let dec_hi = hi & lo;
        let dec_lo = hi & !lo;
        let next_hi = (taken_mask & inc_hi) | (!taken_mask & dec_hi);
        let next_lo = (taken_mask & inc_lo) | (!taken_mask & dec_lo);
        self.hi = (hi & !active_mask) | (next_hi & active_mask);
        self.lo = (lo & !active_mask) | (next_lo & active_mask);
    }
}

impl Default for CounterPlanes {
    /// Defaults to all lanes weakly taken, matching [`Counter2`].
    fn default() -> Self {
        Self::splat(Counter2::WEAKLY_TAKEN)
    }
}

/// A `2^bits`-entry two-bit counter table in bit-plane representation.
///
/// Counter `i` lives in bit `i % 64` of plane words `i / 64`; the table
/// costs exactly two bits of storage per counter. [`PlaneTable::retire`]
/// predicts and trains one counter branchlessly through the word-wide
/// [`CounterPlanes`] transition — the bit-sliced engine's inner step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaneTable {
    hi: Vec<u64>,
    lo: Vec<u64>,
    index_bits: u32,
}

impl PlaneTable {
    /// Creates a `2^index_bits`-entry table with every counter weakly
    /// taken (the paper's initialisation).
    ///
    /// # Panics
    ///
    /// Panics if `index_bits > 30` (the same bound the index helpers
    /// enforce).
    #[must_use]
    pub fn weakly_taken(index_bits: u32) -> Self {
        assert!(index_bits <= 30, "table index width capped at 30 bits");
        let entries = 1usize << index_bits;
        let words = entries.div_ceil(LANES).max(1);
        Self {
            // Weakly taken is state 2: high plane set, low plane clear.
            hi: vec![u64::MAX; words],
            lo: vec![0; words],
            index_bits,
        }
    }

    /// The table's index width in bits.
    #[must_use]
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Number of counters in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        1usize << self.index_bits
    }

    /// Whether the table is empty (it never is; present for idiom).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Reads counter `index` (for inspection and tests).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn counter(&self, index: usize) -> Counter2 {
        assert!(index < self.len(), "counter index out of range");
        let hi = (self.hi[index / LANES] >> (index % LANES)) & 1;
        let lo = (self.lo[index / LANES] >> (index % LANES)) & 1;
        Counter2::from_state(((hi << 1) | lo) as u8)
    }

    /// Predicts counter `index` without training it.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn predict(&self, index: usize) -> bool {
        assert!(index < self.len(), "counter index out of range");
        (self.hi[index / LANES] >> (index % LANES)) & 1 != 0
    }

    /// Predicts counter `index`, then trains it with `taken` — one
    /// retired branch. Returns the (pre-update) prediction.
    ///
    /// The transition runs word-wide with a single-bit active mask, so
    /// the only data-dependent value is the taken mask
    /// (`0` or all-ones), produced without a branch.
    ///
    /// # Panics
    ///
    /// Panics (via the slice bound) if `index >= self.len()`.
    #[inline]
    pub fn retire(&mut self, index: usize, taken: bool) -> bool {
        let word = index / LANES;
        let bit = 1u64 << (index % LANES);
        let mut planes = CounterPlanes::from_words(self.hi[word], self.lo[word]);
        let predicted = planes.predict_mask() & bit != 0;
        planes.update(0u64.wrapping_sub(u64::from(taken)), bit);
        self.hi[word] = planes.hi();
        self.lo[word] = planes.lo();
        predicted
    }

    /// Resets every counter to weakly taken.
    pub fn reset(&mut self) {
        self.hi.fill(u64::MAX);
        self.lo.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference_lanes(init: Counter2) -> [Counter2; LANES] {
        [init; LANES]
    }

    #[test]
    fn round_trip_preserves_every_state_pattern() {
        let counters: [Counter2; LANES] =
            std::array::from_fn(|i| Counter2::from_state((i % 4) as u8));
        let planes = CounterPlanes::from_counters(&counters);
        assert_eq!(planes.to_counters(), counters);
    }

    #[test]
    fn splat_matches_from_counters() {
        for state in 0..4u8 {
            let c = Counter2::from_state(state);
            assert_eq!(
                CounterPlanes::splat(c),
                CounterPlanes::from_counters(&reference_lanes(c))
            );
        }
    }

    #[test]
    fn predict_mask_is_the_sign_bit_rule() {
        let counters: [Counter2; LANES] =
            std::array::from_fn(|i| Counter2::from_state((i % 4) as u8));
        let planes = CounterPlanes::from_counters(&counters);
        for (lane, c) in counters.iter().enumerate() {
            assert_eq!((planes.predict_mask() >> lane) & 1 != 0, c.predict());
        }
    }

    #[test]
    fn single_step_matches_counter2_for_all_state_outcome_pairs() {
        for state in 0..4u8 {
            for taken in [false, true] {
                let scalar = Counter2::from_state(state).updated(taken);
                let mut planes = CounterPlanes::splat(Counter2::from_state(state));
                planes.update(0u64.wrapping_sub(u64::from(taken)), u64::MAX);
                assert_eq!(
                    planes.to_counters()[0],
                    scalar,
                    "state {state} taken {taken}"
                );
            }
        }
    }

    #[test]
    fn inactive_lanes_are_untouched() {
        let mut planes = CounterPlanes::splat(Counter2::WEAKLY_TAKEN);
        planes.update(u64::MAX, 1 << 5);
        let counters = planes.to_counters();
        for (lane, c) in counters.iter().enumerate() {
            let expected = if lane == 5 {
                Counter2::STRONGLY_TAKEN
            } else {
                Counter2::WEAKLY_TAKEN
            };
            assert_eq!(*c, expected, "lane {lane}");
        }
    }

    #[test]
    fn all_lanes_saturated_stay_saturated() {
        // Edge case: every lane pinned at a saturation point keeps
        // absorbing same-direction outcomes without wrapping.
        let mut top = CounterPlanes::splat(Counter2::STRONGLY_TAKEN);
        let mut bottom = CounterPlanes::splat(Counter2::STRONGLY_NOT_TAKEN);
        for _ in 0..5 {
            top.update(u64::MAX, u64::MAX);
            bottom.update(0, u64::MAX);
        }
        assert_eq!(top, CounterPlanes::splat(Counter2::STRONGLY_TAKEN));
        assert_eq!(bottom, CounterPlanes::splat(Counter2::STRONGLY_NOT_TAKEN));
    }

    #[test]
    fn alternating_taken_oscillates_like_the_scalar_counter() {
        // Edge case: strict T/N alternation, lockstep-checked against
        // the scalar counter at every step.
        let mut reference = reference_lanes(Counter2::WEAKLY_TAKEN);
        let mut planes = CounterPlanes::splat(Counter2::WEAKLY_TAKEN);
        for step in 0..32 {
            let taken = step % 2 == 0;
            for c in &mut reference {
                c.update(taken);
            }
            planes.update(0u64.wrapping_sub(u64::from(taken)), u64::MAX);
            assert_eq!(planes.to_counters(), reference, "step {step}");
        }
    }

    #[test]
    fn plane_table_initialises_weakly_taken_and_predicts_taken() {
        let table = PlaneTable::weakly_taken(7);
        assert_eq!(table.len(), 128);
        for i in 0..table.len() {
            assert_eq!(table.counter(i), Counter2::WEAKLY_TAKEN);
            assert!(table.predict(i));
        }
    }

    #[test]
    fn tiny_tables_still_get_one_word() {
        // index_bits < 6 packs fewer than 64 counters into one word.
        let mut table = PlaneTable::weakly_taken(0);
        assert_eq!(table.len(), 1);
        assert!(table.retire(0, false));
        assert_eq!(table.counter(0), Counter2::WEAKLY_NOT_TAKEN);
    }

    #[test]
    fn retire_matches_counter_table_semantics() {
        use crate::table::CounterTable;
        let mut plane = PlaneTable::weakly_taken(6);
        let mut bytes = CounterTable::new(6, Counter2::WEAKLY_TAKEN);
        let mut x = 9u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let index = (x >> 33) as usize % 64;
            let taken = x & 1 == 1;
            let want = bytes.predict(index);
            bytes.update(index, taken);
            assert_eq!(plane.retire(index, taken), want);
        }
        for i in 0..64 {
            assert_eq!(plane.counter(i), bytes.counter(i), "counter {i}");
        }
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let mut table = PlaneTable::weakly_taken(5);
        for i in 0..table.len() {
            let _ = table.retire(i, i % 2 == 0);
        }
        table.reset();
        assert_eq!(table, PlaneTable::weakly_taken(5));
    }

    proptest! {
        /// The satellite property: planes match a reference
        /// `[Counter2; 64]` over arbitrary update sequences, including
        /// the saturation and alternation edge cases (seeded above and
        /// reachable here via the arbitrary masks).
        #[test]
        fn planes_match_reference_counters_over_arbitrary_sequences(
            init in prop::collection::vec(0u8..4, 64..65),
            steps in prop::collection::vec((any::<u64>(), any::<u64>()), 0..64),
        ) {
            let counters: [Counter2; LANES] =
                std::array::from_fn(|i| Counter2::from_state(init[i]));
            let mut planes = CounterPlanes::from_counters(&counters);
            let mut reference = counters;
            for (taken_mask, active_mask) in steps {
                planes.update(taken_mask, active_mask);
                for (lane, c) in reference.iter_mut().enumerate() {
                    if (active_mask >> lane) & 1 != 0 {
                        c.update((taken_mask >> lane) & 1 != 0);
                    }
                }
                prop_assert_eq!(planes.to_counters(), reference);
                prop_assert_eq!(
                    planes.predict_mask(),
                    reference.iter().enumerate().fold(0u64, |m, (lane, c)| {
                        m | (u64::from(c.predict()) << lane)
                    })
                );
            }
        }

        /// Driving the full taken/not-taken extremes keeps every lane
        /// inside the saturation bounds.
        #[test]
        fn saturation_never_wraps(direction in any::<bool>(), steps in 1usize..16) {
            let mut planes = CounterPlanes::splat(if direction {
                Counter2::STRONGLY_TAKEN
            } else {
                Counter2::STRONGLY_NOT_TAKEN
            });
            for _ in 0..steps {
                planes.update(if direction { u64::MAX } else { 0 }, u64::MAX);
            }
            for c in planes.to_counters() {
                prop_assert_eq!(c.is_strong(), true);
                prop_assert_eq!(c.predict(), direction);
            }
        }
    }
}
