//! Power-of-two tables of two-bit counters: the pattern history tables
//! (PHTs) and choice tables all predictors are built from.

use crate::counter::Counter2;

/// A `2^bits`-entry table of [`Counter2`] saturating counters.
///
/// Indices are produced by the functions in [`crate::index`]; the table
/// itself only checks bounds. Out-of-range indices panic rather than wrap,
/// so index-construction bugs surface immediately.
///
/// ```
/// use bpred_core::table::CounterTable;
/// use bpred_core::Counter2;
///
/// let mut pht = CounterTable::new(4, Counter2::WEAKLY_TAKEN);
/// assert_eq!(pht.len(), 16);
/// pht.update(3, false);
/// assert!(!pht.counter(3).predict());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterTable {
    counters: Vec<Counter2>,
    init: Counter2,
}

impl CounterTable {
    /// Creates a table of `2^bits` counters, all initialised to `init`.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 30`.
    #[must_use]
    pub fn new(bits: u32, init: Counter2) -> Self {
        assert!(
            bits <= 30,
            "counter table index must be <= 30 bits, got {bits}"
        );
        Self {
            counters: vec![init; 1usize << bits],
            init,
        }
    }

    /// Number of counters (always a power of two).
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// log2 of the table size.
    #[must_use]
    pub fn index_bits(&self) -> u32 {
        self.counters.len().trailing_zeros()
    }

    /// Storage in bits: two per counter, the paper's cost unit.
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        self.counters.len() as u64 * 2
    }

    /// Panics at the *caller's* location with a message naming both the
    /// offending index and the table geometry, so an index-construction
    /// bug reports the predictor that computed the index rather than
    /// this module.
    #[inline]
    #[track_caller]
    fn check_index(&self, index: usize) {
        assert!(
            index < self.counters.len(),
            "counter index {index} out of range for table of {len} entries ({bits} index bits)",
            len = self.counters.len(),
            bits = self.index_bits(),
        );
    }

    /// The counter at `index`.
    ///
    /// # Panics
    ///
    /// Panics (at the caller) if `index` is out of range, naming the
    /// index and the table length.
    #[must_use]
    #[track_caller]
    pub fn counter(&self, index: usize) -> Counter2 {
        self.check_index(index);
        self.counters[index]
    }

    /// Mutable access to the counter at `index`.
    ///
    /// # Panics
    ///
    /// Panics (at the caller) if `index` is out of range, naming the
    /// index and the table length.
    #[must_use]
    #[track_caller]
    pub fn counter_mut(&mut self, index: usize) -> &mut Counter2 {
        self.check_index(index);
        &mut self.counters[index]
    }

    /// The predicted direction of the counter at `index`.
    ///
    /// # Panics
    ///
    /// Panics (at the caller) if `index` is out of range, naming the
    /// index and the table length.
    #[must_use]
    #[track_caller]
    pub fn predict(&self, index: usize) -> bool {
        self.check_index(index);
        self.counters[index].predict()
    }

    /// Trains the counter at `index` with an outcome.
    ///
    /// # Panics
    ///
    /// Panics (at the caller) if `index` is out of range, naming the
    /// index and the table length.
    #[track_caller]
    pub fn update(&mut self, index: usize, taken: bool) {
        self.check_index(index);
        self.counters[index].update(taken);
        debug_assert!(
            self.counters[index].state() <= 3,
            "two-bit counter left its state range after an update"
        );
    }

    /// Restores every counter to the initialisation state.
    pub fn reset(&mut self) {
        let init = self.init;
        for c in &mut self.counters {
            *c = init;
        }
    }

    /// Iterates over the counters in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, Counter2> {
        self.counters.iter()
    }
}

impl<'a> IntoIterator for &'a CounterTable {
    type Item = &'a Counter2;
    type IntoIter = std::slice::Iter<'a, Counter2>;

    fn into_iter(self) -> Self::IntoIter {
        self.counters.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_table_is_uniformly_initialised() {
        let t = CounterTable::new(3, Counter2::WEAKLY_NOT_TAKEN);
        assert_eq!(t.len(), 8);
        assert!(t.iter().all(|c| *c == Counter2::WEAKLY_NOT_TAKEN));
    }

    #[test]
    fn updates_are_local_to_one_entry() {
        let mut t = CounterTable::new(2, Counter2::WEAKLY_TAKEN);
        t.update(1, false);
        t.update(1, false);
        assert!(!t.predict(1));
        assert!(t.predict(0));
        assert!(t.predict(2));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut t = CounterTable::new(2, Counter2::STRONGLY_TAKEN);
        t.update(0, false);
        t.update(3, false);
        t.reset();
        assert!(t.iter().all(|c| *c == Counter2::STRONGLY_TAKEN));
    }

    #[test]
    fn storage_is_two_bits_per_counter() {
        let t = CounterTable::new(10, Counter2::WEAKLY_TAKEN);
        assert_eq!(t.storage_bits(), 2048);
        assert_eq!(t.index_bits(), 10);
    }

    #[test]
    fn zero_bit_table_has_one_entry() {
        let mut t = CounterTable::new(0, Counter2::WEAKLY_TAKEN);
        assert_eq!(t.len(), 1);
        t.update(0, true);
        assert!(t.predict(0));
    }

    #[test]
    #[should_panic(expected = "counter index 4 out of range for table of 4 entries")]
    fn out_of_range_index_panics() {
        let t = CounterTable::new(2, Counter2::WEAKLY_TAKEN);
        let _ = t.counter(4);
    }

    #[test]
    #[should_panic(expected = "counter index 9 out of range for table of 8 entries (3 index bits)")]
    fn out_of_range_mut_index_panics_with_geometry() {
        let mut t = CounterTable::new(3, Counter2::WEAKLY_TAKEN);
        let _ = t.counter_mut(9);
    }

    #[test]
    fn counter_mut_edits_in_place() {
        let mut t = CounterTable::new(2, Counter2::WEAKLY_TAKEN);
        *t.counter_mut(2) = Counter2::STRONGLY_NOT_TAKEN;
        assert_eq!(t.counter(2), Counter2::STRONGLY_NOT_TAKEN);
        assert!(!t.predict(2));
    }

    #[test]
    fn iterator_visits_in_index_order() {
        let mut t = CounterTable::new(2, Counter2::STRONGLY_NOT_TAKEN);
        t.update(2, true);
        let states: Vec<u8> = (&t).into_iter().map(|c| c.state()).collect();
        assert_eq!(states, [0, 0, 1, 0]);
    }
}
