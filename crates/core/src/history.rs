//! Branch history registers: the global history used by GAg/GAs/gshare and
//! the bi-mode direction banks, and per-address history tables for PAg/PAs.

use std::fmt;

/// Maximum supported history length in bits.
pub const MAX_HISTORY_BITS: u32 = 63;

/// A global branch history shift register.
///
/// Outcomes are shifted in at bit 0 (`1` = taken), so bit 0 is always the
/// most recent branch. The register keeps `bits` outcomes; older outcomes
/// fall off the top.
///
/// Trace-driven simulation (as in the paper) updates the history with the
/// architectural outcome at `push`. For pipeline studies the register also
/// supports speculative update with checkpoint/repair.
///
/// ```
/// use bpred_core::GlobalHistory;
///
/// let mut h = GlobalHistory::new(4);
/// h.push(true);
/// h.push(false);
/// h.push(true);
/// assert_eq!(h.value(), 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalHistory {
    value: u64,
    bits: u32,
}

/// A checkpoint of a [`GlobalHistory`], used to repair after a
/// mispredicted speculative update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryCheckpoint {
    value: u64,
}

impl GlobalHistory {
    /// Creates an all-zero (all not-taken) history of the given length.
    ///
    /// A zero-length history is permitted and always reads as `0`; this is
    /// how a gshare degenerates to a bimodal table in the design-space
    /// sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `bits > MAX_HISTORY_BITS`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!(
            bits <= MAX_HISTORY_BITS,
            "history length must be <= {MAX_HISTORY_BITS}, got {bits}"
        );
        Self { value: 0, bits }
    }

    /// The configured history length in bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The current history pattern (low `bits` bits are valid).
    #[must_use]
    pub fn value(self) -> u64 {
        self.value
    }

    /// The history truncated to its most recent `n` outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the configured length.
    #[must_use]
    pub fn low(self, n: u32) -> u64 {
        assert!(
            n <= self.bits,
            "requested {n} bits from a {}-bit history",
            self.bits
        );
        if n == 0 {
            0
        } else {
            self.value & ((1u64 << n) - 1)
        }
    }

    /// Shifts in an architectural branch outcome.
    pub fn push(&mut self, taken: bool) {
        if self.bits == 0 {
            return;
        }
        self.value = ((self.value << 1) | u64::from(taken)) & ((1u64 << self.bits) - 1);
        debug_assert!(
            self.bits >= 63 || self.value < (1u64 << self.bits),
            "history register holds bits beyond its configured length"
        );
    }

    /// Takes a checkpoint for later [`repair`](Self::repair), then shifts in
    /// a *predicted* outcome speculatively.
    pub fn push_speculative(&mut self, predicted: bool) -> HistoryCheckpoint {
        let cp = HistoryCheckpoint { value: self.value };
        self.push(predicted);
        cp
    }

    /// Restores the register to a checkpoint and shifts in the resolved
    /// outcome, modelling history repair after a misprediction.
    pub fn repair(&mut self, checkpoint: HistoryCheckpoint, resolved: bool) {
        self.value = checkpoint.value;
        self.push(resolved);
    }

    /// Clears the register to all not-taken.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for GlobalHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits == 0 {
            return f.write_str("-");
        }
        for i in (0..self.bits).rev() {
            f.write_str(if (self.value >> i) & 1 == 1 { "T" } else { "N" })?;
        }
        Ok(())
    }
}

/// A first-level table of per-address branch histories, as used by the
/// Yeh–Patt PAg and PAs schemes.
///
/// The table holds `2^index_bits` shift registers of `history_bits` each,
/// indexed by low branch-address bits; distinct branches mapping to the
/// same entry share (and interfere in) that history.
#[derive(Debug, Clone)]
pub struct PerAddressHistories {
    entries: Vec<GlobalHistory>,
    index_mask: u64,
}

impl PerAddressHistories {
    /// Creates a table of `2^index_bits` histories of `history_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits > 30` or `history_bits > MAX_HISTORY_BITS`.
    #[must_use]
    pub fn new(index_bits: u32, history_bits: u32) -> Self {
        assert!(
            index_bits <= 30,
            "per-address history table index must be <= 30 bits"
        );
        let n = 1usize << index_bits;
        Self {
            entries: vec![GlobalHistory::new(history_bits); n],
            index_mask: (n as u64) - 1,
        }
    }

    /// Number of history registers in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total history storage in bits.
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * u64::from(self.entries[0].bits())
    }

    /// The history register for a branch, selected by word-aligned PC bits.
    #[must_use]
    pub fn history(&self, pc: u64) -> GlobalHistory {
        self.entries[self.slot(pc)]
    }

    /// Shifts an outcome into the branch's history register.
    pub fn push(&mut self, pc: u64, taken: bool) {
        let slot = self.slot(pc);
        self.entries[slot].push(taken);
    }

    /// Clears every history register.
    pub fn reset(&mut self) {
        for e in &mut self.entries {
            e.reset();
        }
    }

    fn slot(&self, pc: u64) -> usize {
        let slot = crate::index::to_index(crate::index::pc_word(pc) & self.index_mask);
        debug_assert!(slot < self.entries.len(), "history slot escaped the table");
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_only_configured_bits() {
        let mut h = GlobalHistory::new(3);
        for _ in 0..10 {
            h.push(true);
        }
        assert_eq!(h.value(), 0b111);
        h.push(false);
        assert_eq!(h.value(), 0b110);
    }

    #[test]
    fn zero_length_history_is_inert() {
        let mut h = GlobalHistory::new(0);
        h.push(true);
        h.push(true);
        assert_eq!(h.value(), 0);
        assert_eq!(h.low(0), 0);
        assert_eq!(h.to_string(), "-");
    }

    #[test]
    fn low_truncates_to_most_recent_outcomes() {
        let mut h = GlobalHistory::new(8);
        for &t in &[true, true, false, true] {
            h.push(t);
        }
        assert_eq!(h.value(), 0b1101);
        assert_eq!(h.low(2), 0b01);
        assert_eq!(h.low(3), 0b101);
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn low_rejects_overlong_request() {
        let h = GlobalHistory::new(4);
        let _ = h.low(5);
    }

    #[test]
    fn display_renders_most_recent_last() {
        let mut h = GlobalHistory::new(4);
        h.push(true);
        h.push(false);
        assert_eq!(h.to_string(), "NNTN");
    }

    #[test]
    fn speculative_update_and_repair_roundtrip() {
        let mut h = GlobalHistory::new(6);
        h.push(true);
        h.push(false);
        let before = h;
        // Speculate wrongly, then repair with the resolved outcome.
        let cp = h.push_speculative(true);
        assert_ne!(h, before);
        h.repair(cp, false);
        let mut expected = before;
        expected.push(false);
        assert_eq!(h, expected);
    }

    #[test]
    fn speculative_update_matches_architectural_when_correct() {
        let mut spec = GlobalHistory::new(8);
        let mut arch = GlobalHistory::new(8);
        for &t in &[true, false, false, true, true] {
            let _ = spec.push_speculative(t);
            arch.push(t);
        }
        assert_eq!(spec, arch);
    }

    #[test]
    fn per_address_histories_are_independent() {
        let mut t = PerAddressHistories::new(4, 8);
        // PCs are byte addresses; word-aligned PCs 4 apart use adjacent slots.
        t.push(0x1000, true);
        t.push(0x1004, false);
        t.push(0x1000, true);
        assert_eq!(t.history(0x1000).value(), 0b11);
        assert_eq!(t.history(0x1004).value(), 0b0);
    }

    #[test]
    fn per_address_histories_alias_on_index_wrap() {
        let mut t = PerAddressHistories::new(2, 4);
        // 4 entries: word indices 0 and 4 collide.
        t.push(0x0, true);
        assert_eq!(t.history(0x10).value(), 0b1);
    }

    #[test]
    fn per_address_storage_accounting() {
        let t = PerAddressHistories::new(3, 10);
        assert_eq!(t.len(), 8);
        assert_eq!(t.storage_bits(), 80);
    }
}
