//! Saturating counters: the two-bit fast path used by every table in the
//! paper, plus a general width-parameterised counter for ablations.

use std::fmt;

/// A two-bit saturating up/down counter, the basic storage element of all
/// predictors in the paper.
///
/// States `0` and `1` predict not-taken; states `2` and `3` predict taken
/// (the "sign bit" rule of Section 3.1). Updates saturate at `0` and `3`.
///
/// ```
/// use bpred_core::Counter2;
///
/// let mut c = Counter2::WEAKLY_NOT_TAKEN;
/// assert!(!c.predict());
/// c.update(true);
/// assert!(c.predict()); // one taken outcome flips a weak state
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Counter2 {
    value: u8,
}

impl Counter2 {
    /// Strongly not-taken (state 0).
    pub const STRONGLY_NOT_TAKEN: Self = Self { value: 0 };
    /// Weakly not-taken (state 1).
    pub const WEAKLY_NOT_TAKEN: Self = Self { value: 1 };
    /// Weakly taken (state 2). The paper initialises gshare tables and the
    /// bi-mode choice predictor to this state (footnote 2).
    pub const WEAKLY_TAKEN: Self = Self { value: 2 };
    /// Strongly taken (state 3).
    pub const STRONGLY_TAKEN: Self = Self { value: 3 };

    /// Creates a counter from a raw state in `0..=3`.
    ///
    /// # Panics
    ///
    /// Panics if `value > 3`.
    #[must_use]
    pub fn from_state(value: u8) -> Self {
        assert!(
            value <= 3,
            "two-bit counter state must be in 0..=3, got {value}"
        );
        Self { value }
    }

    /// The raw state in `0..=3`.
    #[must_use]
    pub fn state(self) -> u8 {
        self.value
    }

    /// The predicted direction: `true` for taken (states 2 and 3).
    #[must_use]
    pub fn predict(self) -> bool {
        self.value >= 2
    }

    /// Whether the counter is in a saturated (strong) state.
    #[must_use]
    pub fn is_strong(self) -> bool {
        self.value == 0 || self.value == 3
    }

    /// Trains the counter with an observed outcome, saturating at 0 and 3.
    pub fn update(&mut self, taken: bool) {
        if taken {
            if self.value < 3 {
                self.value += 1;
            }
        } else if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Returns the counter that results from training with `taken`,
    /// without mutating `self`.
    #[must_use]
    pub fn updated(self, taken: bool) -> Self {
        let mut c = self;
        c.update(taken);
        c
    }
}

impl Default for Counter2 {
    /// Defaults to weakly taken, matching the paper's initialisation.
    fn default() -> Self {
        Self::WEAKLY_TAKEN
    }
}

impl fmt::Display for Counter2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.value {
            0 => "SN",
            1 => "WN",
            2 => "WT",
            _ => "ST",
        };
        f.write_str(name)
    }
}

/// A saturating up/down counter of configurable width (1..=16 bits).
///
/// Used by ablations that vary counter width and by schemes that need
/// one-bit state (for example the agree predictor's biasing bits).
///
/// ```
/// use bpred_core::SatCounter;
///
/// let mut c = SatCounter::new(3, 4); // 3-bit counter starting at 4
/// assert!(c.predict());
/// for _ in 0..8 { c.update(false); }
/// assert_eq!(c.value(), 0); // saturates at zero
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u16,
    max: u16,
    threshold: u16,
}

impl SatCounter {
    /// Creates a `bits`-wide counter with the given initial value.
    ///
    /// The taken threshold is the midpoint `2^(bits-1)`: values at or above
    /// it predict taken.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 16, or if `initial`
    /// exceeds the maximum representable value.
    #[must_use]
    pub fn new(bits: u32, initial: u16) -> Self {
        assert!(
            (1..=16).contains(&bits),
            "counter width must be 1..=16, got {bits}"
        );
        let max = ((1u32 << bits) - 1) as u16;
        assert!(
            initial <= max,
            "initial value {initial} exceeds {bits}-bit maximum {max}"
        );
        Self {
            value: initial,
            max,
            threshold: (max as u32).div_ceil(2) as u16,
        }
    }

    /// The current value.
    #[must_use]
    pub fn value(self) -> u16 {
        self.value
    }

    /// The saturation maximum (`2^bits - 1`).
    #[must_use]
    pub fn max(self) -> u16 {
        self.max
    }

    /// The predicted direction: `true` when the value is in the upper half.
    #[must_use]
    pub fn predict(self) -> bool {
        self.value >= self.threshold
    }

    /// Trains the counter with an observed outcome.
    pub fn update(&mut self, taken: bool) {
        if taken {
            if self.value < self.max {
                self.value += 1;
            }
        } else if self.value > 0 {
            self.value -= 1;
        }
    }
}

impl fmt::Display for SatCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.value, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_state_machine_matches_smith() {
        // Full transition table of the classic Smith counter.
        let transitions = [
            (0u8, true, 1u8),
            (1, true, 2),
            (2, true, 3),
            (3, true, 3),
            (3, false, 2),
            (2, false, 1),
            (1, false, 0),
            (0, false, 0),
        ];
        for (from, taken, to) in transitions {
            let c = Counter2::from_state(from).updated(taken);
            assert_eq!(c.state(), to, "state {from} on taken={taken}");
        }
    }

    #[test]
    fn two_bit_prediction_uses_sign_bit() {
        assert!(!Counter2::STRONGLY_NOT_TAKEN.predict());
        assert!(!Counter2::WEAKLY_NOT_TAKEN.predict());
        assert!(Counter2::WEAKLY_TAKEN.predict());
        assert!(Counter2::STRONGLY_TAKEN.predict());
    }

    #[test]
    fn two_bit_hysteresis_survives_single_anomaly() {
        // A strongly-taken counter mispredicts once on a not-taken outcome
        // but still predicts taken afterwards: the hysteresis property the
        // paper relies on for biased branches.
        let mut c = Counter2::STRONGLY_TAKEN;
        c.update(false);
        assert!(c.predict());
        c.update(true);
        assert_eq!(c, Counter2::STRONGLY_TAKEN);
    }

    #[test]
    fn two_bit_default_is_weakly_taken() {
        assert_eq!(Counter2::default(), Counter2::WEAKLY_TAKEN);
    }

    #[test]
    fn two_bit_strong_states() {
        assert!(Counter2::STRONGLY_TAKEN.is_strong());
        assert!(Counter2::STRONGLY_NOT_TAKEN.is_strong());
        assert!(!Counter2::WEAKLY_TAKEN.is_strong());
        assert!(!Counter2::WEAKLY_NOT_TAKEN.is_strong());
    }

    #[test]
    #[should_panic(expected = "two-bit counter state")]
    fn two_bit_rejects_bad_state() {
        let _ = Counter2::from_state(4);
    }

    #[test]
    fn two_bit_display_names() {
        let names: Vec<String> = (0..4)
            .map(|s| Counter2::from_state(s).to_string())
            .collect();
        assert_eq!(names, ["SN", "WN", "WT", "ST"]);
    }

    #[test]
    fn sat_counter_one_bit_behaves_as_last_outcome() {
        let mut c = SatCounter::new(1, 0);
        assert!(!c.predict());
        c.update(true);
        assert!(c.predict());
        c.update(false);
        assert!(!c.predict());
    }

    #[test]
    fn sat_counter_two_bit_agrees_with_counter2() {
        for init in 0..4u16 {
            let mut a = SatCounter::new(2, init);
            let mut b = Counter2::from_state(init as u8);
            for &t in &[true, true, false, false, false, true, false, true, true] {
                assert_eq!(a.predict(), b.predict(), "init {init}");
                a.update(t);
                b.update(t);
            }
        }
    }

    #[test]
    fn sat_counter_saturates_at_bounds() {
        let mut c = SatCounter::new(4, 15);
        c.update(true);
        assert_eq!(c.value(), 15);
        for _ in 0..40 {
            c.update(false);
        }
        assert_eq!(c.value(), 0);
        c.update(false);
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn sat_counter_rejects_zero_width() {
        let _ = SatCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn sat_counter_rejects_oversized_initial() {
        let _ = SatCounter::new(2, 4);
    }
}
