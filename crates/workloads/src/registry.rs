//! The workload registry: the benchmark suites of the paper's Table 2,
//! plus the PC-accurate ISA-simulator kernels as a third suite.

use std::fmt;

use bpred_trace::Trace;

use crate::kernels;

/// How much work a trace generation performs.
///
/// `Smoke` is for tests (tens of thousands of branches), `Paper` is the
/// default experiment scale (on the order of a million conditional
/// branches per workload), and `Full` approaches the paper's own trace
/// lengths at the cost of runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Fast: for unit tests and smoke checks.
    Smoke,
    /// The default experiment scale.
    #[default]
    Paper,
    /// Long traces, closest to the paper's 5-40M dynamic branches.
    Full,
}

impl Scale {
    /// Work multiplier relative to `Smoke`.
    #[must_use]
    pub fn factor(self) -> u64 {
        match self {
            Scale::Smoke => 1,
            Scale::Paper => 12,
            Scale::Full => 48,
        }
    }

    /// Parses `smoke|paper|full`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "paper" => Some(Scale::Paper),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scale::Smoke => "smoke",
            Scale::Paper => "paper",
            Scale::Full => "full",
        };
        f.write_str(s)
    }
}

/// Benchmark suite membership, following the paper's grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CINT95 analogues (paper Figure 3).
    SpecInt95,
    /// IBS-Ultrix analogues (paper Figure 4).
    IbsUltrix,
    /// PC-accurate kernels from the `bpred-sim` ISA machine.
    SimKernels,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::SpecInt95 => "SPEC CINT95",
            Suite::IbsUltrix => "IBS-Ultrix",
            Suite::SimKernels => "sim-kernels",
        };
        f.write_str(s)
    }
}

/// One registered workload.
#[derive(Clone, Copy)]
pub struct Workload {
    name: &'static str,
    suite: Suite,
    description: &'static str,
    generator: fn(Scale) -> Trace,
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .finish()
    }
}

impl Workload {
    /// The benchmark name as it appears in the paper's tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Which suite the workload belongs to.
    #[must_use]
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// A one-line description of the modelled benchmark.
    #[must_use]
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Generates the workload's branch trace.
    #[must_use]
    pub fn trace(&self, scale: Scale) -> Trace {
        (self.generator)(scale)
    }

    /// All registered workloads, paper order: SPEC then IBS then sim.
    #[must_use]
    pub fn all() -> Vec<Workload> {
        REGISTRY.to_vec()
    }

    /// The workloads of one suite.
    #[must_use]
    pub fn suite_workloads(suite: Suite) -> Vec<Workload> {
        REGISTRY
            .iter()
            .filter(|w| w.suite == suite)
            .copied()
            .collect()
    }

    /// Looks a workload up by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Workload> {
        REGISTRY.iter().find(|w| w.name == name).copied()
    }
}

fn sim_bubble_n(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 120,
        Scale::Paper => 450,
        Scale::Full => 900,
    }
}

fn sim_bubble(scale: Scale) -> Trace {
    bpred_sim::kernels::bubble_sort(sim_bubble_n(scale))
}

fn sim_bsearch_queries(scale: Scale) -> usize {
    600 * scale.factor() as usize
}

fn sim_bsearch(scale: Scale) -> Trace {
    bpred_sim::kernels::binary_search(4096, sim_bsearch_queries(scale))
}

fn sim_quicksort_n(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 1_500,
        Scale::Paper => 18_000,
        Scale::Full => 50_000,
    }
}

fn sim_quicksort(scale: Scale) -> Trace {
    bpred_sim::kernels::quicksort(sim_quicksort_n(scale))
}

fn sim_matmul_n(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 24,
        Scale::Paper => 64,
        Scale::Full => 110,
    }
}

fn sim_matmul(scale: Scale) -> Trace {
    bpred_sim::kernels::matmul(sim_matmul_n(scale))
}

fn sim_sieve_n(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 8_000,
        Scale::Paper => 120_000,
        Scale::Full => 500_000,
    }
}

fn sim_sieve(scale: Scale) -> Trace {
    bpred_sim::kernels::sieve(sim_sieve_n(scale))
}

/// Re-executes the sim-kernel workload `name` at `scale` with the same
/// per-scale parameters its trace generator uses, streaming every
/// conditional branch — with the interpreter's observed operand values —
/// to `observe`. Returns the trace it produced (identical to
/// [`Workload::trace`] for the same name and scale), or `None` for
/// workloads that are not program-backed. This is the dynamic ground
/// truth the `cfa/absint` soundness audit compares abstract value sets
/// and taken-probability bounds against.
pub fn sim_kernel_observed(
    name: &str,
    scale: Scale,
    observe: &mut dyn FnMut(&bpred_sim::BranchObservation),
) -> Option<Trace> {
    use bpred_sim::kernels as k;
    let trace = match name {
        "sim-bubble-sort" => k::bubble_sort_observed(sim_bubble_n(scale), observe),
        "sim-binary-search" => k::binary_search_observed(4096, sim_bsearch_queries(scale), observe),
        "sim-sieve" => k::sieve_observed(sim_sieve_n(scale), observe),
        "sim-quicksort" => k::quicksort_observed(sim_quicksort_n(scale), observe),
        "sim-matmul" => k::matmul_observed(sim_matmul_n(scale), observe),
        _ => return None,
    };
    Some(trace)
}

/// The assembled [`bpred_sim::Program`] behind one sim-kernel workload
/// at `scale` — built from the same source text (and the same per-scale
/// parameters) the trace generator executes, so a static analysis of
/// the returned program and the dynamic trace provably describe one
/// artefact. Returns `None` for workloads that are not program-backed
/// (the SPEC/IBS behavioural models, whose PCs are synthetic site
/// hashes with no underlying instruction stream).
///
/// # Panics
///
/// Panics if a kernel's own source text fails to assemble — a build
/// defect, covered by tests.
#[must_use]
pub fn sim_kernel_program(name: &str, scale: Scale) -> Option<bpred_sim::Program> {
    use bpred_sim::kernels as k;
    let source = match name {
        "sim-bubble-sort" => k::bubble_sort_source(sim_bubble_n(scale)),
        "sim-binary-search" => k::binary_search_source(4096, sim_bsearch_queries(scale)),
        "sim-sieve" => k::sieve_source(sim_sieve_n(scale)),
        "sim-quicksort" => k::quicksort_source(sim_quicksort_n(scale)),
        "sim-matmul" => k::matmul_source(sim_matmul_n(scale)),
        _ => return None,
    };
    let program = bpred_sim::assemble(&source)
        .unwrap_or_else(|e| panic!("kernel `{name}` failed to assemble: {e}"));
    Some(program)
}

const REGISTRY: &[Workload] = &[
    Workload {
        name: "compress",
        suite: Suite::SpecInt95,
        description: "LZW compression/decompression over Zipf-structured text",
        generator: kernels::compress::trace,
    },
    Workload {
        name: "gcc",
        suite: Suite::SpecInt95,
        description: "optimizing compiler pipeline over generated programs",
        generator: kernels::gcc::trace,
    },
    Workload {
        name: "go",
        suite: Suite::SpecInt95,
        description: "Monte-Carlo Go self-play with capture logic",
        generator: kernels::go::trace,
    },
    Workload {
        name: "xlisp",
        suite: Suite::SpecInt95,
        description: "Lisp interpreter running recursive list programs",
        generator: kernels::xlisp::trace,
    },
    Workload {
        name: "perl",
        suite: Suite::SpecInt95,
        description: "regex-lite scanning and word-frequency scripting",
        generator: kernels::perl::trace,
    },
    Workload {
        name: "vortex",
        suite: Suite::SpecInt95,
        description: "in-memory object database with a skewed transaction mix",
        generator: kernels::vortex::trace,
    },
    Workload {
        name: "groff",
        suite: Suite::IbsUltrix,
        description: "text formatter with justification and hyphenation",
        generator: kernels::groff::trace,
    },
    Workload {
        name: "gs",
        suite: Suite::IbsUltrix,
        description: "software rasteriser: polygon fill, lines, clipping",
        generator: kernels::gs::trace,
    },
    Workload {
        name: "mpeg_play",
        suite: Suite::IbsUltrix,
        description: "block video decoder: RLE, IDCT, motion compensation",
        generator: kernels::mpeg::trace_mpeg_play,
    },
    Workload {
        name: "nroff",
        suite: Suite::IbsUltrix,
        description: "terminal formatter: filling, centering, pagination",
        generator: kernels::nroff::trace,
    },
    Workload {
        name: "real_gcc",
        suite: Suite::IbsUltrix,
        description: "the compiler pipeline over a larger input mix",
        generator: kernels::gcc::trace_real_gcc,
    },
    Workload {
        name: "sdet",
        suite: Suite::IbsUltrix,
        description: "systems mix: scheduler, file-system tree, syscalls",
        generator: kernels::sdet::trace,
    },
    Workload {
        name: "verilog",
        suite: Suite::IbsUltrix,
        description: "event-driven gate-level logic simulator",
        generator: kernels::verilog::trace,
    },
    Workload {
        name: "video_play",
        suite: Suite::IbsUltrix,
        description: "lighter video decoder: more skips, sparser residuals",
        generator: kernels::mpeg::trace_video_play,
    },
    Workload {
        name: "sim-bubble-sort",
        suite: Suite::SimKernels,
        description: "ISA-machine bubble sort (PC-accurate branches)",
        generator: sim_bubble,
    },
    Workload {
        name: "sim-binary-search",
        suite: Suite::SimKernels,
        description: "ISA-machine repeated binary search",
        generator: sim_bsearch,
    },
    Workload {
        name: "sim-sieve",
        suite: Suite::SimKernels,
        description: "ISA-machine sieve of Eratosthenes",
        generator: sim_sieve,
    },
    Workload {
        name: "sim-quicksort",
        suite: Suite::SimKernels,
        description: "ISA-machine quicksort with explicit stack and calls",
        generator: sim_quicksort,
    },
    Workload {
        name: "sim-matmul",
        suite: Suite::SimKernels,
        description: "ISA-machine dense matrix multiply (counted loop nest)",
        generator: sim_matmul,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_the_papers_benchmark_lists() {
        let spec: Vec<&str> = Workload::suite_workloads(Suite::SpecInt95)
            .iter()
            .map(|w| w.name())
            .collect();
        assert_eq!(spec, ["compress", "gcc", "go", "xlisp", "perl", "vortex"]);
        let ibs: Vec<&str> = Workload::suite_workloads(Suite::IbsUltrix)
            .iter()
            .map(|w| w.name())
            .collect();
        assert_eq!(
            ibs,
            [
                "groff",
                "gs",
                "mpeg_play",
                "nroff",
                "real_gcc",
                "sdet",
                "verilog",
                "video_play"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Workload::by_name("go").unwrap().suite(), Suite::SpecInt95);
        assert!(Workload::by_name("doom").is_none());
    }

    #[test]
    fn trace_names_match_registry_names() {
        for w in Workload::all() {
            if w.suite() == Suite::SimKernels {
                continue; // sim kernels carry their own sim-* names
            }
            let trace = w.trace(Scale::Smoke);
            assert_eq!(
                trace.name(),
                w.name(),
                "trace name mismatch for {}",
                w.name()
            );
        }
    }

    #[test]
    fn scale_factors_are_ordered() {
        assert!(Scale::Smoke.factor() < Scale::Paper.factor());
        assert!(Scale::Paper.factor() < Scale::Full.factor());
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("nope"), None);
        assert_eq!(Scale::Paper.to_string(), "paper");
    }

    #[test]
    fn observed_rerun_reproduces_the_workload_trace() {
        let w = Workload::by_name("sim-bubble-sort").unwrap();
        let mut count = 0usize;
        let t = sim_kernel_observed(w.name(), Scale::Smoke, &mut |_| count += 1).unwrap();
        let reference = w.trace(Scale::Smoke);
        assert_eq!(t.records(), reference.records());
        assert_eq!(count, t.conditional().count());
        assert!(sim_kernel_observed("gcc", Scale::Smoke, &mut |_| {}).is_none());
    }

    #[test]
    fn sim_suite_produces_pc_accurate_traces() {
        let t = Workload::by_name("sim-sieve").unwrap().trace(Scale::Smoke);
        assert!(t.conditional().count() > 1_000);
        // ISA-machine PCs live in its text segment, below the synthetic
        // site segment.
        assert!(t.iter().all(|r| r.pc < crate::tracer::SITE_BASE));
    }

    #[test]
    fn every_sim_workload_is_program_backed() {
        for w in Workload::suite_workloads(Suite::SimKernels) {
            let p = sim_kernel_program(w.name(), Scale::Smoke)
                .unwrap_or_else(|| panic!("{} has no program", w.name()));
            assert!(!p.instructions.is_empty(), "{}", w.name());
        }
        assert!(sim_kernel_program("gcc", Scale::Smoke).is_none());
        assert!(sim_kernel_program("nope", Scale::Smoke).is_none());
    }

    #[test]
    fn kernel_program_sites_match_the_trace() {
        // The program handed to static analysis and the generated trace
        // must agree on the conditional-site set — the contract the
        // `cfa/audit` verify pass rests on, pinned here at the source.
        let w = Workload::by_name("sim-bubble-sort").unwrap();
        let t = w.trace(Scale::Smoke);
        let p = sim_kernel_program(w.name(), Scale::Smoke).unwrap();
        let static_sites: std::collections::BTreeSet<u64> = p
            .instructions
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, bpred_sim::Instruction::Branch { .. }))
            .map(|(i, _)| bpred_sim::Program::pc_of(i))
            .collect();
        let dynamic_sites: std::collections::BTreeSet<u64> =
            t.conditional().map(|r| r.pc).collect();
        assert_eq!(static_sites, dynamic_sites);
    }
}
