//! `vortex` (SPEC CINT95 147.vortex analogue): an in-memory object
//! database — hash index, sorted secondary index with binary search,
//! and a skewed transaction mix.
//!
//! vortex is the paper's most predictable benchmark (1–6% misprediction
//! in Figure 3): its branches are dominated by strongly biased
//! validity/hit checks on a database where lookups overwhelmingly hit.
//! The kernel reproduces that with a Zipf-skewed, hit-heavy operation
//! mix.

use bpred_trace::Trace;

use crate::registry::Scale;
use crate::rng::Rng;
use crate::site;
use crate::tracer::Tracer;

/// A stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Object {
    id: u64,
    kind: u8,
    payload: [u32; 4],
    live: bool,
}

/// Open-addressing hash index plus a sorted id list as secondary index.
#[derive(Debug)]
struct Database {
    slots: Vec<Option<Object>>,
    sorted_ids: Vec<u64>,
    live: usize,
}

const KINDS: u8 = 7;

impl Database {
    fn new(capacity_log2: u32) -> Self {
        Self {
            slots: vec![None; 1 << capacity_log2],
            sorted_ids: Vec::new(),
            live: 0,
        }
    }

    fn mask(&self) -> u64 {
        self.slots.len() as u64 - 1
    }

    fn hash(id: u64) -> u64 {
        id.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_right(17)
    }

    /// Linear-probe lookup. The probe-collision branch is biased
    /// not-taken at a sane load factor — vortex's hot path.
    fn find_slot(&self, t: &mut Tracer, id: u64) -> (usize, bool) {
        let mut idx = (Self::hash(id) & self.mask()) as usize;
        loop {
            let empty = self.slots[idx].is_none();
            if t.branch(site!(), empty) {
                return (idx, false);
            }
            let obj = self.slots[idx].as_ref().expect("checked via branch"); // panic-audited: the traced branch above returned on empty slots
            if t.branch(site!(), obj.id == id) {
                return (idx, obj.live);
            }
            idx = (idx + 1) & self.mask() as usize;
        }
    }

    /// Per-kind schema validation: vortex's wide static footprint comes
    /// from object-schema code expanded per type; one site family per
    /// kind models it.
    fn validate_schema(t: &mut Tracer, obj: &Object) {
        // Only the object's own kind's validation block executes — the
        // per-type expanded schema code that gives vortex its wide
        // static footprint without inflating the dynamic count.
        let field_check = site!();
        for (f, v) in obj.payload.iter().enumerate() {
            // Field-range checks, biased taken.
            t.branch(
                field_check.with_index(u32::from(obj.kind) * 4 + f as u32),
                *v != u32::MAX,
            );
        }
    }

    /// Per-relation access check on a lookup hit: models the expanded
    /// accessor code of each of vortex's many object relations.
    fn relation_check(t: &mut Tracer, obj: &Object) {
        let relation = site!();
        t.branch(relation.with_index((obj.id % 97) as u32), obj.live);
    }

    fn insert(&mut self, t: &mut Tracer, obj: Object) -> bool {
        assert!(self.live * 2 < self.slots.len(), "load factor exceeded");
        Self::validate_schema(t, &obj);
        let (idx, exists) = self.find_slot(t, obj.id);
        if t.branch(site!(), exists) {
            return false; // duplicate id
        }
        let id = obj.id;
        // Tombstone reuse vs fresh slot.
        if t.branch(site!(), self.slots[idx].is_some()) {
            self.slots[idx] = Some(obj);
        } else {
            self.slots[idx] = Some(obj);
            // Maintain the sorted secondary index by insertion point.
            let pos = self.lower_bound(t, id);
            self.sorted_ids.insert(pos, id);
        }
        self.live += 1;
        true
    }

    /// Traced binary search in the secondary index.
    fn lower_bound(&self, t: &mut Tracer, id: u64) -> usize {
        let mut lo = 0;
        let mut hi = self.sorted_ids.len();
        while t.branch(site!(), lo < hi) {
            let mid = (lo + hi) / 2;
            if t.branch(site!(), self.sorted_ids[mid] < id) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn lookup(&self, t: &mut Tracer, id: u64) -> Option<&Object> {
        let (idx, live) = self.find_slot(t, id);
        if t.branch(site!(), live) {
            let obj = self.slots[idx].as_ref();
            if let Some(o) = obj {
                Self::relation_check(t, o);
            }
            obj
        } else {
            None
        }
    }

    fn update(&mut self, t: &mut Tracer, id: u64, field: usize, value: u32) -> bool {
        let (idx, live) = self.find_slot(t, id);
        if t.branch(site!(), live) {
            let obj = self.slots[idx].as_mut().expect("live slot is occupied"); // panic-audited: find_slot returned live, so the slot is occupied
                                                                                // Field-validity check, biased taken.
            if t.branch(site!(), field < obj.payload.len()) {
                obj.payload[field] = value;
                return true;
            }
        }
        false
    }

    fn delete(&mut self, t: &mut Tracer, id: u64) -> bool {
        let (idx, live) = self.find_slot(t, id);
        if t.branch(site!(), live) {
            // Tombstone: keep the chain intact for probing.
            self.slots[idx]
                .as_mut()
                .expect("live slot is occupied") // panic-audited: find_slot returned live, so the slot is occupied
                .live = false;
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// Range scan over the secondary index, validating against the hash
    /// index (vortex's integrity-check style).
    fn range_scan(&self, t: &mut Tracer, from: u64, limit: usize) -> u32 {
        let mut pos = self.lower_bound(t, from);
        let mut checked = 0u32;
        let mut visited = 0;
        while t.branch(site!(), pos < self.sorted_ids.len() && visited < limit) {
            let id = self.sorted_ids[pos];
            if t.branch(site!(), self.lookup_quiet(id)) {
                checked += 1;
            }
            pos += 1;
            visited += 1;
        }
        checked
    }

    /// Untraced existence check used inside scans (the scan loop itself
    /// carries the interesting branches).
    fn lookup_quiet(&self, id: u64) -> bool {
        let mut idx = (Self::hash(id) & self.mask()) as usize;
        loop {
            match &self.slots[idx] {
                None => return false,
                Some(o) if o.id == id => return o.live,
                Some(_) => idx = (idx + 1) & self.mask() as usize,
            }
        }
    }
}

/// Runs the workload at the given scale.
#[must_use]
pub fn trace(scale: Scale) -> Trace {
    let mut t = Tracer::new("vortex");
    let mut rng = Rng::new(0x0043_EE75);
    // Sized so the live-set stays below a 50% load factor even at
    // Scale::Full's insert volume.
    let mut db = Database::new(18);
    let mut next_id: u64 = 1;
    let mut issued: Vec<u64> = Vec::new();

    // Warm the database.
    for _ in 0..2000 {
        let obj = Object {
            id: next_id,
            kind: (next_id % u64::from(KINDS)) as u8,
            payload: [rng.next_u64() as u32; 4],
            live: true,
        };
        issued.push(next_id);
        next_id += 1;
        db.insert(&mut t, obj);
    }

    // Transactions follow a scripted, repeating schedule (as the real
    // benchmark's driver does): 70% lookup, 15% update, 8% insert, 5%
    // delete, 2% range scan, interleaved in a fixed cycle. The schedule
    // itself is therefore predictable; the data dependence stays in the
    // per-operation branches.
    const SCHEDULE: [u8; 100] = {
        let mut s = [0u8; 100];
        let mut i = 0;
        while i < 100 {
            // 0 = lookup, 1 = update, 2 = insert, 3 = delete, 4 = scan.
            s[i] = match i % 20 {
                3 | 8 | 13 => 1,
                6 | 16 => 2,
                11 => 3,
                19 if i == 99 => 4,
                _ => 0,
            };
            i += 1;
        }
        s[39] = 3; // second delete per 100
        s[59] = 4; // second scan per 100
        s[79] = 2; // extra inserts to reach 8%
        s[89] = 2;
        s[93] = 2;
        s[97] = 2;
        s
    };
    // The dispatch itself is driver/harness control flow, not benchmark
    // code, so it is not traced; only the operations' own branches are.
    let transactions = 9_000 * scale.factor();
    for txn in 0..transactions {
        let op = SCHEDULE[(txn % 100) as usize];
        if op == 0 {
            // Zipf over issued ids: hot objects dominate, mostly hits.
            let id = issued[rng.zipf(issued.len())];
            let hit = db.lookup(&mut t, id).is_some();
            std::hint::black_box(hit);
        } else if op == 1 {
            let id = issued[rng.zipf(issued.len())];
            // Field references are occasionally (3%) out of schema.
            let field = if rng.chance(0.03) {
                4
            } else {
                rng.below(4) as usize
            };
            db.update(&mut t, id, field, rng.next_u64() as u32);
        } else if op == 2 {
            let obj = Object {
                id: next_id,
                kind: (next_id % u64::from(KINDS)) as u8,
                payload: [rng.next_u64() as u32; 4],
                live: true,
            };
            issued.push(next_id);
            next_id += 1;
            db.insert(&mut t, obj);
        } else if op == 3 {
            let id = issued[rng.zipf(issued.len())];
            db.delete(&mut t, id);
        } else {
            let from = rng.below(next_id);
            db.range_scan(&mut t, from, 24);
        }
    }
    t.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(id: u64) -> Object {
        Object {
            id,
            kind: (id % 7) as u8,
            payload: [id as u32; 4],
            live: true,
        }
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut t = Tracer::new("t");
        let mut db = Database::new(8);
        assert!(db.insert(&mut t, obj(42)));
        assert_eq!(db.lookup(&mut t, 42).map(|o| o.id), Some(42));
        assert!(db.lookup(&mut t, 43).is_none());
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut t = Tracer::new("t");
        let mut db = Database::new(8);
        assert!(db.insert(&mut t, obj(1)));
        assert!(!db.insert(&mut t, obj(1)));
        assert_eq!(db.live, 1);
    }

    #[test]
    fn delete_leaves_probing_intact() {
        let mut t = Tracer::new("t");
        let mut db = Database::new(4);
        // Force a probe chain by inserting many ids into 16 slots.
        for id in 1..=7 {
            assert!(db.insert(&mut t, obj(id)));
        }
        assert!(db.delete(&mut t, 3));
        assert!(db.lookup(&mut t, 3).is_none());
        // All others still reachable through any tombstones.
        for id in [1, 2, 4, 5, 6, 7] {
            assert!(db.lookup(&mut t, id).is_some(), "id {id} lost after delete");
        }
    }

    #[test]
    fn update_changes_fields_and_validates() {
        let mut t = Tracer::new("t");
        let mut db = Database::new(8);
        db.insert(&mut t, obj(5));
        assert!(db.update(&mut t, 5, 2, 999));
        assert_eq!(db.lookup(&mut t, 5).unwrap().payload[2], 999);
        assert!(!db.update(&mut t, 5, 4, 1), "out-of-range field");
        assert!(!db.update(&mut t, 6, 0, 1), "missing object");
    }

    #[test]
    fn secondary_index_stays_sorted() {
        let mut t = Tracer::new("t");
        let mut db = Database::new(8);
        for id in [5u64, 1, 9, 3, 7] {
            db.insert(&mut t, obj(id));
        }
        assert_eq!(db.sorted_ids, vec![1, 3, 5, 7, 9]);
        assert_eq!(db.range_scan(&mut t, 3, 10), 4);
        db.delete(&mut t, 5);
        assert_eq!(db.range_scan(&mut t, 0, 10), 4, "scan validates liveness");
    }

    #[test]
    fn workload_is_strongly_biased_like_vortex() {
        let trace = trace(Scale::Smoke);
        let stats = trace.stats();
        assert!(stats.dynamic_conditional > 30_000);
        assert!(
            stats.strongly_biased_fraction() > 0.5,
            "vortex should be dominated by biased branches, got {:.2}",
            stats.strongly_biased_fraction()
        );
        assert_eq!(trace, super::trace(Scale::Smoke));
    }
}
