//! `verilog` (IBS-Ultrix analogue): an event-driven gate-level logic
//! simulator over generated combinational circuits with registered
//! feedback.
//!
//! Branch profile: gate-type dispatch, the did-the-output-change test
//! (whose bias tracks circuit activity factor), and event-queue loops —
//! the pointer-chasing EDA mix of the original.

use std::collections::VecDeque;

use bpred_trace::Trace;

use crate::registry::Scale;
use crate::rng::Rng;
use crate::site;
use crate::tracer::Tracer;

/// Gate kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateKind {
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Not,
    Buf,
}

const KINDS: [GateKind; 7] = [
    GateKind::And,
    GateKind::Or,
    GateKind::Xor,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Not,
    GateKind::Buf,
];

#[derive(Debug, Clone)]
struct Gate {
    kind: GateKind,
    inputs: Vec<usize>, // net ids
    output: usize,      // net id
}

/// A combinational netlist: nets 0..n_primary are primary inputs, the
/// rest are gate outputs. `fanout[net]` lists gates to re-evaluate when
/// the net changes.
#[derive(Debug)]
struct Circuit {
    n_primary: usize,
    gates: Vec<Gate>,
    fanout: Vec<Vec<usize>>,
}

impl Circuit {
    /// Generates a random layered DAG circuit.
    fn random(rng: &mut Rng, n_primary: usize, n_gates: usize) -> Self {
        let mut gates = Vec::with_capacity(n_gates);
        let mut n_nets = n_primary;
        for _ in 0..n_gates {
            let kind = *rng.pick(&KINDS);
            let arity = match kind {
                GateKind::Not | GateKind::Buf => 1,
                _ => 2 + rng.below(2) as usize,
            };
            // Inputs drawn from already-defined nets keeps it acyclic,
            // biased towards recent nets for realistic locality.
            let inputs = (0..arity)
                .map(|_| {
                    if rng.chance(0.7) && n_nets > 8 {
                        n_nets - 1 - rng.below(8) as usize
                    } else {
                        rng.below(n_nets as u64) as usize
                    }
                })
                .collect();
            let output = n_nets;
            n_nets += 1;
            gates.push(Gate {
                kind,
                inputs,
                output,
            });
        }
        let mut fanout = vec![Vec::new(); n_nets];
        for (gi, g) in gates.iter().enumerate() {
            for &i in &g.inputs {
                fanout[i].push(gi);
            }
        }
        Self {
            n_primary,
            gates,
            fanout,
        }
    }

    fn n_nets(&self) -> usize {
        self.n_primary + self.gates.len()
    }
}

/// The event-driven evaluator.
#[derive(Debug)]
struct Simulator<'c> {
    circuit: &'c Circuit,
    values: Vec<bool>,
    queue: VecDeque<usize>, // gate ids to evaluate
    queued: Vec<bool>,
    evaluations: u64,
}

impl<'c> Simulator<'c> {
    fn new(circuit: &'c Circuit) -> Self {
        Self {
            circuit,
            values: vec![false; circuit.n_nets()],
            queue: VecDeque::new(),
            queued: vec![false; circuit.gates.len()],
            evaluations: 0,
        }
    }

    fn eval_gate(t: &mut Tracer, kind: GateKind, inputs: &[bool]) -> bool {
        // Gate-type dispatch: one site per kind.
        let dispatch = site!();
        let kind_idx = KINDS
            .iter()
            .position(|k| *k == kind)
            .expect("kind in table") as u32; // panic-audited: gate kinds come from the same KINDS table being searched
        for k in 0..KINDS.len() as u32 {
            t.branch(dispatch.with_index(k), kind_idx == k);
        }
        match kind {
            GateKind::And => inputs.iter().all(|v| *v),
            GateKind::Or => inputs.iter().any(|v| *v),
            GateKind::Xor => inputs.iter().fold(false, |acc, v| acc ^ v),
            GateKind::Nand => !inputs.iter().all(|v| *v),
            GateKind::Nor => !inputs.iter().any(|v| *v),
            GateKind::Not | GateKind::Buf => {
                let v = inputs[0];
                if kind == GateKind::Not {
                    !v
                } else {
                    v
                }
            }
        }
    }

    fn schedule_fanout(&mut self, t: &mut Tracer, net: usize) {
        for &gi in &self.circuit.fanout[net] {
            // Suppress duplicate scheduling (biased by activity).
            if t.branch(site!(), !self.queued[gi]) {
                self.queued[gi] = true;
                self.queue.push_back(gi);
            }
        }
    }

    /// Applies a primary-input vector and propagates to quiescence.
    fn apply(&mut self, t: &mut Tracer, vector: &[bool]) {
        assert_eq!(vector.len(), self.circuit.n_primary);
        for (net, &v) in vector.iter().enumerate() {
            // Only changed inputs create events.
            if t.branch(site!(), self.values[net] != v) {
                self.values[net] = v;
                self.schedule_fanout(t, net);
            }
        }
        while t.branch(site!(), !self.queue.is_empty()) {
            let gi = self.queue.pop_front().expect("loop guard"); // panic-audited: the traced loop guard is !self.queue.is_empty()
            self.queued[gi] = false;
            self.evaluations += 1;
            assert!(self.evaluations < 1_000_000_000, "runaway simulation");
            let gate = &self.circuit.gates[gi];
            let inputs: Vec<bool> = gate.inputs.iter().map(|&n| self.values[n]).collect();
            let out = Self::eval_gate(t, gate.kind, &inputs);
            // The signature branch: did the output toggle?
            if t.branch(site!(), out != self.values[gate.output]) {
                self.values[gate.output] = out;
                self.schedule_fanout(t, gate.output);
            }
        }
    }
}

/// Runs the workload at the given scale.
#[must_use]
pub fn trace(scale: Scale) -> Trace {
    let mut t = Tracer::new("verilog");
    let mut rng = Rng::new(0x7E12_1060);
    let circuit = Circuit::random(&mut rng, 48, 700);
    let mut sim = Simulator::new(&circuit);
    let mut vector = vec![false; circuit.n_primary];
    let vectors = 900 * scale.factor();
    for step in 0..vectors {
        // Mixed stimulus: mostly low-activity bit flips, occasionally a
        // broadside random vector (bursty activity, as in real tests).
        if t.branch(site!(), step % 37 == 0) {
            for v in vector.iter_mut() {
                *v = rng.chance(0.5);
            }
        } else {
            for _ in 0..1 + rng.below(3) {
                let bit = rng.below(circuit.n_primary as u64) as usize;
                vector[bit] = !vector[bit];
            }
        }
        let v = vector.clone();
        sim.apply(&mut t, &v);
    }
    std::hint::black_box(sim.evaluations);
    t.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_circuit() -> Circuit {
        // nets: 0,1 primary; gate0: AND(0,1)->2; gate1: NOT(2)->3
        let gates = vec![
            Gate {
                kind: GateKind::And,
                inputs: vec![0, 1],
                output: 2,
            },
            Gate {
                kind: GateKind::Not,
                inputs: vec![2],
                output: 3,
            },
        ];
        let mut fanout = vec![Vec::new(); 4];
        fanout[0].push(0);
        fanout[1].push(0);
        fanout[2].push(1);
        Circuit {
            n_primary: 2,
            gates,
            fanout,
        }
    }

    #[test]
    fn gate_truth_tables() {
        let mut t = Tracer::new("t");
        use GateKind::*;
        assert!(Simulator::eval_gate(&mut t, And, &[true, true]));
        assert!(!Simulator::eval_gate(&mut t, And, &[true, false]));
        assert!(Simulator::eval_gate(&mut t, Or, &[false, true]));
        assert!(!Simulator::eval_gate(&mut t, Or, &[false, false]));
        assert!(Simulator::eval_gate(&mut t, Xor, &[true, false]));
        assert!(!Simulator::eval_gate(&mut t, Xor, &[true, true]));
        assert!(Simulator::eval_gate(&mut t, Nand, &[true, false]));
        assert!(!Simulator::eval_gate(&mut t, Nor, &[true, false]));
        assert!(Simulator::eval_gate(&mut t, Not, &[false]));
        assert!(Simulator::eval_gate(&mut t, Buf, &[true]));
    }

    #[test]
    fn propagation_reaches_quiescence_with_correct_values() {
        let c = tiny_circuit();
        let mut t = Tracer::new("t");
        let mut sim = Simulator::new(&c);
        // Initially all false; NOT(AND(0,0)) should settle to true after
        // the first event wave.
        sim.apply(&mut t, &[true, true]);
        assert!(sim.values[2], "AND(1,1)");
        assert!(!sim.values[3], "NOT(1)");
        sim.apply(&mut t, &[true, false]);
        assert!(!sim.values[2]);
        assert!(sim.values[3]);
    }

    #[test]
    fn unchanged_inputs_create_no_events() {
        let c = tiny_circuit();
        let mut t = Tracer::new("t");
        let mut sim = Simulator::new(&c);
        sim.apply(&mut t, &[true, true]);
        let evals = sim.evaluations;
        sim.apply(&mut t, &[true, true]);
        assert_eq!(sim.evaluations, evals, "identical vector must be a no-op");
    }

    #[test]
    fn random_circuits_are_acyclic_by_construction() {
        let mut rng = Rng::new(3);
        let c = Circuit::random(&mut rng, 16, 200);
        for (gi, g) in c.gates.iter().enumerate() {
            for &i in &g.inputs {
                assert!(i < c.n_primary + gi, "gate {gi} reads a later net {i}");
            }
        }
    }

    #[test]
    fn workload_shape() {
        let trace = trace(Scale::Smoke);
        let stats = trace.stats();
        assert!(stats.dynamic_conditional > 50_000);
        assert_eq!(trace, super::trace(Scale::Smoke));
    }
}
