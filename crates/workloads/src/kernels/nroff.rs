//! `nroff` (IBS-Ultrix analogue): the terminal-oriented formatter —
//! ragged-right filling, tab expansion, centering, underlining, and
//! pagination with headers.
//!
//! Deliberately a separate implementation from [`super::groff`]: the two
//! IBS benchmarks are different programs with overlapping jobs, and the
//! paper's per-benchmark curves (Figure 4) treat them independently.

use bpred_trace::Trace;

use crate::kernels::textgen;
use crate::registry::Scale;
use crate::rng::Rng;
use crate::site;
use crate::tracer::Tracer;

const PAGE_LINES: usize = 60;

#[derive(Debug)]
struct Output {
    lines: Vec<String>,
    line_on_page: usize,
    page: usize,
}

impl Output {
    fn new() -> Self {
        Self {
            lines: Vec::new(),
            line_on_page: 0,
            page: 1,
        }
    }

    fn emit(&mut self, t: &mut Tracer, line: String) {
        if t.branch(site!(), self.line_on_page == 0) {
            self.lines.push(format!("-- page {} --", self.page));
        }
        self.lines.push(line);
        self.line_on_page += 1;
        if t.branch(site!(), self.line_on_page >= PAGE_LINES) {
            self.line_on_page = 0;
            self.page += 1;
        }
    }
}

/// Expands tabs to the next multiple-of-8 column.
fn expand_tabs(t: &mut Tracer, line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut col = 0usize;
    for ch in line.chars() {
        if t.branch(site!(), ch == '\t') {
            let next = (col / 8 + 1) * 8;
            while t.branch(site!(), col < next) {
                out.push(' ');
                col += 1;
            }
        } else {
            out.push(ch);
            col += 1;
        }
    }
    out
}

/// Underlines a text by emitting a dash line of matching width.
fn underline(line: &str) -> String {
    line.chars()
        .map(|c| if c.is_whitespace() { ' ' } else { '-' })
        .collect()
}

fn format(t: &mut Tracer, input: &str, width: usize) -> Vec<String> {
    let mut out = Output::new();
    let mut words: Vec<String> = Vec::new();
    let mut len = 0usize;
    let mut center_next = 0usize;
    let mut underline_next = 0usize;

    let flush = |t: &mut Tracer,
                 out: &mut Output,
                 words: &mut Vec<String>,
                 len: &mut usize,
                 center: &mut usize,
                 ul: &mut usize| {
        if t.branch(site!(), words.is_empty()) {
            return;
        }
        let mut body = words.join(" ");
        words.clear();
        *len = 0;
        if t.branch(site!(), *center > 0) {
            *center -= 1;
            let pad = width.saturating_sub(body.len()) / 2;
            body = format!("{}{}", " ".repeat(pad), body);
        }
        let ul_line = if t.branch(site!(), *ul > 0) {
            *ul -= 1;
            Some(underline(&body))
        } else {
            None
        };
        out.emit(t, body);
        if let Some(u) = ul_line {
            out.emit(t, u);
        }
    };

    for raw in input.lines() {
        let raw = expand_tabs(t, raw);
        if t.branch(site!(), raw.starts_with('.')) {
            let mut parts = raw[1..].split_whitespace();
            let req = parts.next().unwrap_or("").to_owned();
            let arg: usize = parts.next().and_then(|a| a.parse().ok()).unwrap_or(1);
            if t.branch(site!(), req == "ce") {
                flush(
                    t,
                    &mut out,
                    &mut words,
                    &mut len,
                    &mut center_next,
                    &mut underline_next,
                );
                center_next = arg;
            } else if t.branch(site!(), req == "ul") {
                underline_next = arg;
            } else if t.branch(site!(), req == "br") {
                flush(
                    t,
                    &mut out,
                    &mut words,
                    &mut len,
                    &mut center_next,
                    &mut underline_next,
                );
            } else if t.branch(site!(), req == "bp") {
                flush(
                    t,
                    &mut out,
                    &mut words,
                    &mut len,
                    &mut center_next,
                    &mut underline_next,
                );
                while t.branch(site!(), out.line_on_page != 0) {
                    out.emit(t, String::new());
                }
            }
            continue;
        }
        for word in raw.split_whitespace() {
            let needed = len + usize::from(len > 0) + word.len();
            // Centered lines break eagerly at 2/3 width for shape.
            let limit = if t.branch(site!(), center_next > 0) {
                width * 2 / 3
            } else {
                width
            };
            if t.branch(site!(), needed > limit) {
                flush(
                    t,
                    &mut out,
                    &mut words,
                    &mut len,
                    &mut center_next,
                    &mut underline_next,
                );
            }
            len += usize::from(len > 0) + word.len();
            words.push(word.to_owned());
        }
    }
    flush(
        t,
        &mut out,
        &mut words,
        &mut len,
        &mut center_next,
        &mut underline_next,
    );
    out.lines
}

fn build_document(rng: &mut Rng, bytes: usize) -> String {
    let body = textgen::generate(rng, bytes);
    let mut doc = String::with_capacity(bytes + bytes / 16);
    for sentence in body.split_inclusive(". ") {
        if rng.chance(0.05) {
            doc.push_str("\n.br\n");
        }
        if rng.chance(0.03) {
            doc.push_str(&format!("\n.ce {}\n", 1 + rng.below(2)));
        }
        if rng.chance(0.03) {
            doc.push_str("\n.ul 1\n");
        }
        if rng.chance(0.01) {
            doc.push_str("\n.bp\n");
        }
        if rng.chance(0.1) {
            doc.push('\t');
        }
        doc.push_str(sentence);
    }
    doc
}

/// Runs the workload at the given scale.
#[must_use]
pub fn trace(scale: Scale) -> Trace {
    let mut t = Tracer::new("nroff");
    let mut rng = Rng::new(0x4206F);
    for _ in 0..3 * scale.factor() {
        let doc = build_document(&mut rng, 9_000);
        let lines = format(&mut t, &doc, 72);
        std::hint::black_box(lines.len());
    }
    t.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(input: &str) -> Vec<String> {
        let mut t = Tracer::new("t");
        format(&mut t, input, 30)
    }

    #[test]
    fn pages_carry_headers() {
        let lines = fmt("word\n.br\nword");
        assert_eq!(lines[0], "-- page 1 --");
        assert_eq!(lines[1], "word");
        assert_eq!(lines[2], "word");
    }

    #[test]
    fn centering_pads_left() {
        let lines = fmt(".ce 1\nhi");
        assert_eq!(lines[1], format!("{}hi", " ".repeat(14)));
    }

    #[test]
    fn underline_matches_word_shape() {
        let lines = fmt(".ul 1\nab cd");
        assert_eq!(lines[1], "ab cd");
        assert_eq!(lines[2], "-- --");
    }

    #[test]
    fn page_break_fills_page() {
        let mut t = Tracer::new("t");
        let lines = format(&mut t, "a\n.bp\nb", 30);
        // After .bp, "b" must start on page 2.
        let page2 = lines
            .iter()
            .position(|l| l == "-- page 2 --")
            .expect("page 2 exists");
        assert_eq!(lines[page2 + 1], "b");
        assert_eq!(lines[page2 - 1], "");
    }

    #[test]
    fn tab_expansion_aligns_to_eights() {
        let mut t = Tracer::new("t");
        assert_eq!(expand_tabs(&mut t, "a\tb"), "a       b");
        assert_eq!(expand_tabs(&mut t, "\tx"), "        x");
        assert_eq!(expand_tabs(&mut t, "12345678\ty"), "12345678        y");
    }

    #[test]
    fn ragged_right_never_exceeds_width() {
        let long = "alpha beta gamma delta epsilon zeta eta theta iota kappa";
        for l in fmt(long).iter().filter(|l| !l.starts_with("--")) {
            assert!(l.len() <= 30, "{l:?}");
        }
    }

    #[test]
    fn workload_is_deterministic_and_nontrivial() {
        let a = trace(Scale::Smoke);
        assert_eq!(a, trace(Scale::Smoke));
        assert!(a.stats().dynamic_conditional > 20_000);
    }
}
