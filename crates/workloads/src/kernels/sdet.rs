//! `sdet` (IBS-Ultrix analogue): the SPEC SDET systems-workload mix —
//! a process scheduler, an in-memory file-system tree with path
//! resolution, and a syscall dispatch layer.
//!
//! IBS traces include kernel activity; sdet is the most kernel-heavy of
//! them. This kernel models that with OS-style code: priority
//! scheduling (heap operations with compare branches), path-component
//! walking (string compares over a tree), permission checks (biased
//! taken), and a wide syscall dispatch fanned out over
//! [`Site::with_index`](crate::Site::with_index).

use std::collections::BTreeMap;

use bpred_trace::Trace;

use crate::registry::Scale;
use crate::rng::Rng;
use crate::site;
use crate::tracer::Tracer;

// -------------------------------------------------------------- scheduler

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Task {
    pid: u32,
    priority: u8,
    remaining: u32,
}

/// A binary max-heap run queue with traced sift branches.
#[derive(Debug, Default)]
struct RunQueue {
    heap: Vec<Task>,
}

impl RunQueue {
    fn before(a: Task, b: Task) -> bool {
        // Higher priority first; FIFO by pid within a priority.
        (a.priority, std::cmp::Reverse(a.pid)) > (b.priority, std::cmp::Reverse(b.pid))
    }

    fn push(&mut self, t: &mut Tracer, task: Task) {
        self.heap.push(task);
        let mut i = self.heap.len() - 1;
        while t.branch(site!(), i > 0) {
            let parent = (i - 1) / 2;
            if t.branch(site!(), Self::before(self.heap[i], self.heap[parent])) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self, t: &mut Tracer) -> Option<Task> {
        if t.branch(site!(), self.heap.is_empty()) {
            return None;
        }
        let top = self.heap.swap_remove(0);
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if t.branch(
                site!(),
                l < self.heap.len() && Self::before(self.heap[l], self.heap[best]),
            ) {
                best = l;
            }
            if t.branch(
                site!(),
                r < self.heap.len() && Self::before(self.heap[r], self.heap[best]),
            ) {
                best = r;
            }
            if t.branch(site!(), best == i) {
                break;
            }
            self.heap.swap(i, best);
            i = best;
        }
        Some(top)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ------------------------------------------------------------ file system

#[derive(Debug)]
enum Node {
    File { size: u32, mode: u8 },
    Dir { entries: BTreeMap<String, Node> },
}

#[derive(Debug)]
struct Fs {
    root: Node,
}

#[derive(Debug, PartialEq, Eq)]
enum FsError {
    NotFound,
    NotADirectory,
    IsADirectory,
    Exists,
    Permission,
}

impl Fs {
    fn new() -> Self {
        Self {
            root: Node::Dir {
                entries: BTreeMap::new(),
            },
        }
    }

    /// Walks all but the last path component, returning the parent dir.
    fn walk<'a>(
        t: &mut Tracer,
        mut node: &'a mut Node,
        components: &[&str],
    ) -> Result<&'a mut Node, FsError> {
        let mut i = 0;
        while t.branch(site!(), i < components.len()) {
            let Node::Dir { entries } = node else {
                return Err(FsError::NotADirectory);
            };
            // The existence test is fanned out by a name-hash bucket:
            // kernel namei code specialised per directory-entry chain.
            let name = components[i];
            let bucket = name
                .bytes()
                .fold(0u32, |h, b| h.wrapping_mul(31).wrapping_add(u32::from(b)))
                % 48;
            let next = entries.get_mut(name);
            if t.branch(site!().with_index(bucket), next.is_none()) {
                return Err(FsError::NotFound);
            }
            node = next.expect("checked above"); // panic-audited: the traced branch above returned on next.is_none()
            i += 1;
        }
        Ok(node)
    }

    fn split(path: &str) -> Vec<&str> {
        path.split('/').filter(|c| !c.is_empty()).collect()
    }

    fn create(&mut self, t: &mut Tracer, path: &str, dir: bool, mode: u8) -> Result<(), FsError> {
        let comps = Self::split(path);
        let (name, parents) = comps.split_last().ok_or(FsError::Exists)?;
        let parent = Self::walk(t, &mut self.root, parents)?;
        let Node::Dir { entries } = parent else {
            return Err(FsError::NotADirectory);
        };
        if t.branch(site!(), entries.contains_key(*name)) {
            return Err(FsError::Exists);
        }
        let node = if t.branch(site!(), dir) {
            Node::Dir {
                entries: BTreeMap::new(),
            }
        } else {
            Node::File { size: 0, mode }
        };
        entries.insert((*name).to_owned(), node);
        Ok(())
    }

    fn write(&mut self, t: &mut Tracer, path: &str, bytes: u32) -> Result<(), FsError> {
        let comps = Self::split(path);
        let node = Self::walk(t, &mut self.root, &comps)?;
        match node {
            Node::File { size, mode } => {
                // Permission check: write bit is bit 1.
                if t.branch(site!(), *mode & 2 == 0) {
                    return Err(FsError::Permission);
                }
                *size += bytes;
                Ok(())
            }
            Node::Dir { .. } => Err(FsError::IsADirectory),
        }
    }

    fn stat(&mut self, t: &mut Tracer, path: &str) -> Result<u32, FsError> {
        let comps = Self::split(path);
        let node = Self::walk(t, &mut self.root, &comps)?;
        match node {
            Node::File { size, .. } => Ok(*size),
            Node::Dir { entries } => Ok(entries.len() as u32),
        }
    }

    fn unlink(&mut self, t: &mut Tracer, path: &str) -> Result<(), FsError> {
        let comps = Self::split(path);
        let (name, parents) = comps.split_last().ok_or(FsError::NotFound)?;
        let parent = Self::walk(t, &mut self.root, parents)?;
        let Node::Dir { entries } = parent else {
            return Err(FsError::NotADirectory);
        };
        let entry = entries.get(*name);
        if !t.branch(site!(), entry.is_some()) {
            return Err(FsError::NotFound);
        }
        let busy_dir = matches!(entry, Some(Node::Dir { entries: sub }) if !sub.is_empty());
        if t.branch(site!(), busy_dir) {
            return Err(FsError::NotADirectory); // non-empty dir
        }
        entries.remove(*name);
        Ok(())
    }
}

// ---------------------------------------------------------------- driver

const SYSCALLS: u32 = 12;

/// Runs the workload at the given scale.
#[must_use]
pub fn trace(scale: Scale) -> Trace {
    let mut t = Tracer::new("sdet");
    let mut rng = Rng::new(0x5DE7);
    let dispatch = site!();

    let mut fs = Fs::new();
    let mut queue = RunQueue::default();
    let mut next_pid = 1u32;
    let mut live_paths: Vec<String> = Vec::new();

    // Seed a directory tree.
    for d in 0..8 {
        fs.create(&mut t, &format!("/d{d}"), true, 7)
            .expect("seed dir"); // panic-audited: seeding distinct paths into a fresh fs cannot collide
        for f in 0..6 {
            let p = format!("/d{d}/f{f}");
            fs.create(&mut t, &p, false, if (d + f) % 5 == 0 { 4 } else { 6 })
                .expect("seed file"); // panic-audited: seeding distinct paths into a fresh fs cannot collide
            live_paths.push(p);
        }
    }
    for _ in 0..10 {
        queue.push(
            &mut t,
            Task {
                pid: next_pid,
                priority: rng.below(8) as u8,
                remaining: 3,
            },
        );
        next_pid += 1;
    }

    let validate = site!();
    // SDET runs scripted user sessions: the syscall sequence repeats a
    // fixed script with a little jitter, rather than being uniformly
    // random.
    const SCRIPT: [u32; 24] = [
        4, 7, 1, 4, 3, 7, 2, 4, 5, 8, 1, 4, 6, 7, 2, 10, 4, 9, 1, 5, 7, 4, 11, 0,
    ];
    let operations = 16_000 * scale.factor();
    for step in 0..operations {
        let call = if rng.chance(0.1) {
            rng.below(u64::from(SYSCALLS)) as u32
        } else {
            SCRIPT[(step % SCRIPT.len() as u64) as usize]
        };
        // Syscall-table dispatch: one site per syscall number.
        for k in 0..SYSCALLS {
            t.branch(dispatch.with_index(k), call == k);
        }
        // Per-handler argument validation: biased taken, as in kernel
        // entry paths (copyin/copyout checks).
        t.branch(validate.with_index(call), rng.chance(0.97));
        match call {
            // fork
            0 => {
                queue.push(
                    &mut t,
                    Task {
                        pid: next_pid,
                        priority: rng.below(8) as u8,
                        remaining: 1 + rng.below(4) as u32,
                    },
                );
                next_pid += 1;
            }
            // schedule quantum
            1 | 2 => {
                if let Some(mut task) = queue.pop(&mut t) {
                    task.remaining = task.remaining.saturating_sub(1);
                    // Re-queue unless finished; aging lowers priority.
                    if t.branch(site!(), task.remaining > 0) {
                        if t.branch(site!(), task.priority > 0 && rng.chance(0.4)) {
                            task.priority -= 1;
                        }
                        queue.push(&mut t, task);
                    }
                }
                // Keep the queue from draining.
                if t.branch(site!(), queue.len() < 4) {
                    queue.push(
                        &mut t,
                        Task {
                            pid: next_pid,
                            priority: rng.below(8) as u8,
                            remaining: 2,
                        },
                    );
                    next_pid += 1;
                }
            }
            // creat
            3 => {
                let p = format!("/d{}/n{}", rng.below(8), rng.below(400));
                if fs.create(&mut t, &p, false, 6).is_ok() {
                    live_paths.push(p);
                }
            }
            // write (mostly to existing files; permission misses happen)
            4..=6 => {
                let p = &live_paths[rng.zipf(live_paths.len())];
                let _ = fs.write(&mut t, p, rng.below(512) as u32);
            }
            // stat
            7 | 8 => {
                let p = &live_paths[rng.zipf(live_paths.len())];
                let _ = fs.stat(&mut t, p);
            }
            // stat on a missing path (error path exercised)
            9 => {
                let _ = fs.stat(
                    &mut t,
                    &format!("/d{}/missing{}", rng.below(8), rng.below(100)),
                );
            }
            // unlink
            10 => {
                if live_paths.len() > 20 {
                    let idx = rng.below(live_paths.len() as u64) as usize;
                    let p = live_paths[idx].clone();
                    if fs.unlink(&mut t, &p).is_ok() {
                        live_paths.swap_remove(idx);
                    }
                }
            }
            // mkdir (often already exists)
            _ => {
                let _ = fs.create(&mut t, &format!("/d{}", rng.below(12)), true, 7);
            }
        }
    }
    t.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_orders_by_priority_then_pid() {
        let mut t = Tracer::new("t");
        let mut q = RunQueue::default();
        q.push(
            &mut t,
            Task {
                pid: 1,
                priority: 2,
                remaining: 1,
            },
        );
        q.push(
            &mut t,
            Task {
                pid: 2,
                priority: 7,
                remaining: 1,
            },
        );
        q.push(
            &mut t,
            Task {
                pid: 3,
                priority: 7,
                remaining: 1,
            },
        );
        q.push(
            &mut t,
            Task {
                pid: 4,
                priority: 0,
                remaining: 1,
            },
        );
        assert_eq!(
            q.pop(&mut t).unwrap().pid,
            2,
            "highest priority, earliest pid"
        );
        assert_eq!(q.pop(&mut t).unwrap().pid, 3);
        assert_eq!(q.pop(&mut t).unwrap().pid, 1);
        assert_eq!(q.pop(&mut t).unwrap().pid, 4);
        assert_eq!(q.pop(&mut t), None);
    }

    #[test]
    fn fs_create_write_stat_roundtrip() {
        let mut t = Tracer::new("t");
        let mut fs = Fs::new();
        fs.create(&mut t, "/a", true, 7).unwrap();
        fs.create(&mut t, "/a/f", false, 6).unwrap();
        fs.write(&mut t, "/a/f", 100).unwrap();
        fs.write(&mut t, "/a/f", 20).unwrap();
        assert_eq!(fs.stat(&mut t, "/a/f"), Ok(120));
        assert_eq!(fs.stat(&mut t, "/a"), Ok(1), "dir stat counts entries");
    }

    #[test]
    fn fs_error_paths() {
        let mut t = Tracer::new("t");
        let mut fs = Fs::new();
        fs.create(&mut t, "/a", true, 7).unwrap();
        fs.create(&mut t, "/a/ro", false, 4).unwrap(); // read-only
        assert_eq!(fs.write(&mut t, "/a/ro", 1), Err(FsError::Permission));
        assert_eq!(fs.stat(&mut t, "/a/nope"), Err(FsError::NotFound));
        assert_eq!(fs.create(&mut t, "/a/ro", false, 6), Err(FsError::Exists));
        assert_eq!(fs.write(&mut t, "/a", 1), Err(FsError::IsADirectory));
        assert_eq!(
            fs.create(&mut t, "/a/ro/x", false, 6),
            Err(FsError::NotADirectory)
        );
    }

    #[test]
    fn unlink_removes_files_but_not_nonempty_dirs() {
        let mut t = Tracer::new("t");
        let mut fs = Fs::new();
        fs.create(&mut t, "/d", true, 7).unwrap();
        fs.create(&mut t, "/d/f", false, 6).unwrap();
        assert_eq!(fs.unlink(&mut t, "/d"), Err(FsError::NotADirectory));
        fs.unlink(&mut t, "/d/f").unwrap();
        assert_eq!(fs.stat(&mut t, "/d"), Ok(0));
        fs.unlink(&mut t, "/d").unwrap(); // now empty
        assert_eq!(fs.stat(&mut t, "/d"), Err(FsError::NotFound));
    }

    #[test]
    fn workload_shape() {
        let trace = trace(Scale::Smoke);
        let stats = trace.stats();
        assert!(stats.dynamic_conditional > 50_000);
        // Dispatch fan-out gives sdet a wide-ish static footprint.
        assert!(
            stats.static_conditional > 30,
            "{}",
            stats.static_conditional
        );
        assert_eq!(trace, super::trace(Scale::Smoke));
    }
}
