//! `mpeg_play` and `video_play` (IBS-Ultrix analogues): block-based
//! video decoding — run-length entropy decoding, dequantisation, a real
//! 8x8 separable inverse DCT, motion compensation with edge clamping,
//! and pixel saturation.
//!
//! Branch profile: the IDCT butterfly loops are fixed-trip and highly
//! predictable (these are the easiest IBS benchmarks in Figure 4), the
//! run-length decoder's zero-run branch is biased by coefficient
//! sparsity, and the clamp/saturation branches are data-dependent but
//! skewed. `video_play` is a distinct mix (more skipped/inter blocks,
//! different GOP pattern), as in IBS.

use bpred_trace::Trace;

use crate::registry::Scale;
use crate::rng::Rng;
use crate::site;
use crate::tracer::Tracer;

const BLOCK: usize = 8;
const COEFFS: usize = BLOCK * BLOCK;

/// The JPEG/MPEG zigzag scan order.
fn zigzag_order() -> [usize; COEFFS] {
    let mut order = [0usize; COEFFS];
    let mut idx = 0;
    for s in 0..(2 * BLOCK - 1) {
        let range: Vec<usize> = (0..=s.min(BLOCK - 1)).rev().collect();
        let coords: Vec<(usize, usize)> = range
            .into_iter()
            .filter_map(|i| {
                let j = s - i;
                (j < BLOCK).then_some((i, j))
            })
            .collect();
        let flip = s % 2 == 1;
        for &(i, j) in coords.iter() {
            let (r, c) = if flip { (j, i) } else { (i, j) };
            order[idx] = r * BLOCK + c;
            idx += 1;
        }
    }
    order
}

/// A run-length coded coefficient stream: (zero-run, level) pairs with
/// an end-of-block marker.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RleBlock {
    pairs: Vec<(u8, i16)>,
}

/// Entropy-decodes one block into zigzag coefficient positions.
fn rle_decode(t: &mut Tracer, rle: &RleBlock, zigzag: &[usize; COEFFS]) -> [i32; COEFFS] {
    let mut coeffs = [0i32; COEFFS];
    let mut pos = 0usize;
    let mut i = 0;
    while t.branch(site!(), i < rle.pairs.len()) {
        let (run, level) = rle.pairs[i];
        i += 1;
        pos += run as usize;
        // Overflow guard: corrupted streams are truncated, not UB.
        if t.branch(site!(), pos >= COEFFS) {
            break;
        }
        coeffs[zigzag[pos]] = i32::from(level);
        pos += 1;
    }
    coeffs
}

/// Dequantisation with a quality-scaled flat matrix and deadzone test.
fn dequantise(t: &mut Tracer, coeffs: &mut [i32; COEFFS], quant: i32) {
    for c in coeffs.iter_mut() {
        if t.branch(site!(), *c != 0) {
            *c *= quant;
            // Saturation to 12-bit dynamic range.
            if t.branch(site!(), *c > 2047) {
                *c = 2047;
            } else if t.branch(site!(), *c < -2048) {
                *c = -2048;
            }
        }
    }
}

/// Integer 1-D IDCT (separable, applied to rows then columns). A real
/// even/odd butterfly structure with fixed-point constants.
fn idct_1d(t: &mut Tracer, v: &mut [i32; BLOCK]) {
    // Fast path: all-AC-zero vectors decode to a flat line (the common
    // sparse-block case, a strongly biased branch).
    let ac_zero = v[1..].iter().all(|x| *x == 0);
    if t.branch(site!(), ac_zero) {
        let dc = v[0] >> 3;
        v.fill(dc);
        return;
    }
    // Fixed-point cosine constants, 8 fractional bits.
    const C: [i64; 8] = [256, 251, 237, 213, 181, 142, 98, 50];
    let input = v.map(i64::from);
    for (x, slot) in v.iter_mut().enumerate() {
        let mut acc: i64 = input[0] * C[0] / 2;
        for (u, &coef) in input.iter().enumerate().skip(1) {
            // cos((2x+1) u pi / 16) via the folded constant table.
            let angle_index = ((2 * x + 1) * u) % 32;
            let (idx, sign) = match angle_index {
                0..=7 => (angle_index, 1i64),
                8..=15 => (15 - angle_index + 1, -1), // 16-angle mirrored
                16..=23 => (angle_index - 16, -1),
                _ => (31 - angle_index + 1, 1),
            };
            let c = if idx == 8 { 0 } else { C[idx] };
            acc += coef * c * sign;
        }
        *slot = (acc >> 11) as i32;
    }
}

/// Full 2-D IDCT.
fn idct_2d(t: &mut Tracer, coeffs: &[i32; COEFFS]) -> [i32; COEFFS] {
    let mut tmp = *coeffs;
    for r in 0..BLOCK {
        let mut row = [0i32; BLOCK];
        row.copy_from_slice(&tmp[r * BLOCK..(r + 1) * BLOCK]);
        idct_1d(t, &mut row);
        tmp[r * BLOCK..(r + 1) * BLOCK].copy_from_slice(&row);
    }
    for c in 0..BLOCK {
        let mut col = [0i32; BLOCK];
        for r in 0..BLOCK {
            col[r] = tmp[r * BLOCK + c];
        }
        idct_1d(t, &mut col);
        for r in 0..BLOCK {
            tmp[r * BLOCK + c] = col[r];
        }
    }
    tmp
}

/// A reference frame for motion compensation.
#[derive(Debug)]
struct Frame {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Frame {
    fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            pixels: vec![128; width * height],
        }
    }

    /// Clamped fetch: the edge-handling branch pair of every decoder.
    fn fetch(&self, t: &mut Tracer, x: i64, y: i64) -> u8 {
        let cx = if t.branch(site!(), x < 0) {
            0
        } else if t.branch(site!(), x >= self.width as i64) {
            self.width - 1
        } else {
            x as usize
        };
        let cy = if t.branch(site!(), y < 0) {
            0
        } else if t.branch(site!(), y >= self.height as i64) {
            self.height - 1
        } else {
            y as usize
        };
        self.pixels[cy * self.width + cx]
    }
}

fn saturate(t: &mut Tracer, v: i32) -> u8 {
    if t.branch(site!(), v < 0) {
        0
    } else if t.branch(site!(), v > 255) {
        255
    } else {
        v as u8
    }
}

/// Generates a sparse RLE block: mostly low-frequency coefficients.
fn random_block(rng: &mut Rng, density: f64) -> RleBlock {
    let mut pairs = Vec::new();
    let mut pos = 0usize;
    while pos < COEFFS {
        if !rng.chance(density) {
            break;
        }
        let run = rng.below(6) as u8;
        pos += run as usize + 1;
        let level = (rng.range(1, 60) as i16) * if rng.chance(0.5) { 1 } else { -1 };
        pairs.push((run, level));
    }
    RleBlock { pairs }
}

#[derive(Debug, Clone, Copy)]
struct StreamConfig {
    name: &'static str,
    seed: u64,
    /// Fraction of blocks that are skipped entirely (inter prediction
    /// with zero residual).
    skip_rate: f64,
    /// Fraction of coded blocks that are motion-compensated.
    inter_rate: f64,
    /// Coefficient density of coded blocks.
    density: f64,
    frames_per_unit: u64,
}

fn decode_stream(config: StreamConfig, scale: Scale) -> Trace {
    let mut t = Tracer::new(config.name);
    let mut rng = Rng::new(config.seed);
    let zigzag = zigzag_order();
    let (w, h) = (128usize, 96usize);
    let mut reference = Frame::new(w, h);
    let frames = config.frames_per_unit * scale.factor();
    for _ in 0..frames {
        let mut current = Frame::new(w, h);
        for by in (0..h).step_by(BLOCK) {
            // Skipped macroblocks cluster spatially (static background
            // regions), modelled as a sticky per-row state rather than
            // independent coin flips.
            let mut skipping = rng.chance(config.skip_rate);
            for bx in (0..w).step_by(BLOCK) {
                if rng.chance(0.25) {
                    skipping = rng.chance(config.skip_rate);
                }
                // Skipped block: copy-through, one biased branch.
                if t.branch(site!(), skipping) {
                    for dy in 0..BLOCK {
                        for dx in 0..BLOCK {
                            let p = reference.fetch(&mut t, (bx + dx) as i64, (by + dy) as i64);
                            current.pixels[(by + dy) * w + bx + dx] = p;
                        }
                    }
                    continue;
                }
                let rle = random_block(&mut rng, config.density);
                let mut coeffs = rle_decode(&mut t, &rle, &zigzag);
                // DC offset so output is plausible video.
                coeffs[0] += 1024;
                dequantise(&mut t, &mut coeffs, 3);
                let spatial = idct_2d(&mut t, &coeffs);
                let inter = t.branch(site!(), rng.chance(config.inter_rate));
                let (mvx, mvy) = if inter {
                    (rng.range(0, 15) as i64 - 7, rng.range(0, 15) as i64 - 7)
                } else {
                    (0, 0)
                };
                for dy in 0..BLOCK {
                    for dx in 0..BLOCK {
                        let residual = spatial[dy * BLOCK + dx] >> 3;
                        let base = if inter {
                            i32::from(reference.fetch(
                                &mut t,
                                (bx + dx) as i64 + mvx,
                                (by + dy) as i64 + mvy,
                            ))
                        } else {
                            0
                        };
                        let v = saturate(&mut t, base + residual);
                        current.pixels[(by + dy) * w + bx + dx] = v;
                    }
                }
            }
        }
        reference = current;
    }
    t.into_trace()
}

/// Runs the `mpeg_play` workload.
#[must_use]
pub fn trace_mpeg_play(scale: Scale) -> Trace {
    decode_stream(
        StreamConfig {
            name: "mpeg_play",
            seed: 0x4956_3141,
            skip_rate: 0.25,
            inter_rate: 0.6,
            density: 0.75,
            frames_per_unit: 2,
        },
        scale,
    )
}

/// Runs the `video_play` workload: a lighter-weight player with more
/// skipped macroblocks and sparser residuals.
#[must_use]
pub fn trace_video_play(scale: Scale) -> Trace {
    decode_stream(
        StreamConfig {
            name: "video_play",
            seed: 0x7677_2024,
            skip_rate: 0.45,
            inter_rate: 0.8,
            density: 0.55,
            frames_per_unit: 3,
        },
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation_starting_at_dc() {
        let z = zigzag_order();
        assert_eq!(z[0], 0);
        assert_eq!(z[1], 1, "second entry is (0,1)");
        assert_eq!(z[2], 8, "third entry is (1,0)");
        let mut sorted = z.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..COEFFS).collect::<Vec<_>>());
    }

    #[test]
    fn rle_roundtrip_places_levels() {
        let mut t = Tracer::new("t");
        let z = zigzag_order();
        let block = RleBlock {
            pairs: vec![(0, 100), (1, -7)],
        };
        let c = rle_decode(&mut t, &block, &z);
        assert_eq!(c[z[0]], 100);
        assert_eq!(c[z[2]], -7);
        assert_eq!(c.iter().filter(|v| **v != 0).count(), 2);
    }

    #[test]
    fn corrupted_rle_is_truncated_safely() {
        let mut t = Tracer::new("t");
        let z = zigzag_order();
        let block = RleBlock {
            pairs: vec![(5, 1); 30],
        };
        let _ = rle_decode(&mut t, &block, &z); // must not panic
    }

    #[test]
    fn dc_only_block_decodes_flat() {
        let mut t = Tracer::new("t");
        let mut coeffs = [0i32; COEFFS];
        coeffs[0] = 800;
        let out = idct_2d(&mut t, &coeffs);
        let first = out[0];
        assert!(first > 0);
        assert!(
            out.iter().all(|v| *v == first),
            "DC-only must be flat: {out:?}"
        );
    }

    #[test]
    fn idct_responds_to_ac_energy() {
        let mut t = Tracer::new("t");
        let mut coeffs = [0i32; COEFFS];
        coeffs[0] = 800;
        coeffs[1] = 400; // horizontal frequency
        let out = idct_2d(&mut t, &coeffs);
        assert_ne!(out[0], out[7], "AC energy must create horizontal variation");
        // Rows should all look the same (no vertical frequency).
        assert_eq!(out[0], out[7 * BLOCK]);
    }

    #[test]
    fn frame_fetch_clamps_at_edges() {
        let mut t = Tracer::new("t");
        let mut f = Frame::new(8, 8);
        f.pixels[0] = 7;
        f.pixels[63] = 9;
        assert_eq!(f.fetch(&mut t, -3, -3), 7);
        assert_eq!(f.fetch(&mut t, 100, 100), 9);
        assert_eq!(f.fetch(&mut t, 0, 0), 7);
    }

    #[test]
    fn saturation_clamps_both_ends() {
        let mut t = Tracer::new("t");
        assert_eq!(saturate(&mut t, -5), 0);
        assert_eq!(saturate(&mut t, 300), 255);
        assert_eq!(saturate(&mut t, 128), 128);
    }

    #[test]
    fn players_are_deterministic_and_distinct() {
        let a = trace_mpeg_play(Scale::Smoke);
        assert_eq!(a, trace_mpeg_play(Scale::Smoke));
        let b = trace_video_play(Scale::Smoke);
        assert_ne!(a, b);
        assert!(a.stats().dynamic_conditional > 30_000);
        assert!(b.stats().dynamic_conditional > 30_000);
    }

    #[test]
    fn decoders_are_predictable_workloads() {
        // Figure 4: mpeg_play is among the easiest IBS benchmarks; most
        // of its branches are strongly biased.
        let stats = trace_mpeg_play(Scale::Smoke).stats();
        assert!(
            stats.strongly_biased_fraction() > 0.5,
            "got {:.2}",
            stats.strongly_biased_fraction()
        );
    }
}
