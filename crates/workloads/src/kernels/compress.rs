//! `compress` (SPEC CINT95 129.compress analogue): a real LZW
//! compressor/decompressor pair over Zipf-structured text.
//!
//! Branch structure mirrors the original: a small number of static
//! branches (the paper counts 482) dominated by the dictionary-probe
//! hit/miss branch — strongly biased towards hits once the dictionary
//! warms up — plus code-width growth checks and the table-reset branch.
//! In the paper this benchmark is so small that even a single-PHT gshare
//! avoids aliasing; the reproduction keeps that character.

use std::collections::HashMap;

use bpred_trace::Trace;

use crate::kernels::textgen;
use crate::registry::Scale;
use crate::rng::Rng;
use crate::site;
use crate::tracer::Tracer;

const DICT_LIMIT: usize = 4096; // 12-bit codes, as in classic compress
const ALPHABET: usize = 256;

fn compress(t: &mut Tracer, input: &[u8], output: &mut Vec<u32>) {
    let mut dict: HashMap<(u32, u8), u32> = HashMap::new();
    let mut next_code: u32 = ALPHABET as u32;
    let mut width_threshold: u32 = 512;
    let mut prefix: Option<u32> = None;

    let mut i = 0;
    while t.branch(site!(), i < input.len()) {
        let ch = input[i];
        i += 1;
        let code = match prefix {
            None => {
                // Only at stream start / after reset.
                prefix = Some(u32::from(ch));
                continue;
            }
            Some(p) => p,
        };
        // The hot dictionary probe: hit keeps extending the match.
        let probe = dict.get(&(code, ch)).copied();
        if t.branch(site!(), probe.is_some()) {
            prefix = probe;
        } else {
            output.push(code);
            // Code-width growth check (biased not-taken).
            if t.branch(site!(), next_code >= width_threshold) {
                width_threshold = (width_threshold * 2).min(DICT_LIMIT as u32);
            }
            // Table full? Reset, like compress(1)'s block mode.
            if t.branch(site!(), next_code as usize >= DICT_LIMIT) {
                dict.clear();
                next_code = ALPHABET as u32;
                width_threshold = 512;
            } else {
                dict.insert((code, ch), next_code);
                next_code += 1;
            }
            prefix = Some(u32::from(ch));
        }
    }
    // Flush check: taken whenever any input was consumed.
    if t.branch(site!(), prefix.is_some()) {
        output.push(prefix.expect("checked via branch")); // panic-audited: the traced branch condition is prefix.is_some()
    }
}

fn decompress(t: &mut Tracer, codes: &[u32]) -> Vec<u8> {
    let mut entries: Vec<Vec<u8>> = (0..ALPHABET).map(|b| vec![b as u8]).collect();
    let mut out = Vec::new();
    let mut prev: Option<u32> = None;

    let mut i = 0;
    while t.branch(site!(), i < codes.len()) {
        let code = codes[i] as usize;
        i += 1;
        let entry: Vec<u8> = if t.branch(site!(), code < entries.len()) {
            entries[code].clone()
        } else {
            // The KwKwK special case.
            let mut e = entries[prev.expect("KwKwK cannot be first") as usize].clone(); // panic-audited: first iteration always hits the known-code arm, setting prev
            e.push(e[0]);
            e
        };
        out.extend_from_slice(&entry);
        if let Some(p) = prev {
            if t.branch(site!(), entries.len() < DICT_LIMIT) {
                let mut new_entry = entries[p as usize].clone();
                new_entry.push(entry[0]);
                entries.push(new_entry);
            } else {
                // Mirror the compressor's reset.
                entries.truncate(ALPHABET);
                prev = None;
                // Re-seed prev from the current code after reset.
                if t.branch(site!(), code < entries.len()) {
                    prev = Some(code as u32);
                }
                continue;
            }
        }
        prev = Some(code as u32);
    }
    out
}

/// Runs the workload at the given scale.
///
/// # Panics
///
/// Panics if compression round-trip verification fails (an internal
/// correctness bug, not an input condition).
#[must_use]
pub fn trace(scale: Scale) -> Trace {
    let mut t = Tracer::new("compress");
    let mut rng = Rng::new(0xC0_4959);
    // Several independent buffers, like compress running over a file set.
    let buffers = 2 * scale.factor();
    for _ in 0..buffers {
        // Inject character noise (~4%) so dictionary matches stay
        // short, as they do on compress's real mixed input; perfectly
        // repetitive text would make the probe branch trivially biased.
        let mut text = textgen::generate(&mut rng, 9_000).into_bytes();
        for b in &mut text {
            if rng.chance(0.04) {
                *b = 33 + (rng.below(94)) as u8;
            }
        }
        let input = &text[..];
        let mut codes = Vec::new();
        compress(&mut t, input, &mut codes);
        // Compression must actually compress structured text.
        assert!(
            codes.len() < input.len(),
            "LZW failed to compress structured text"
        );
        let roundtrip = decompress(&mut t, &codes);
        assert_eq!(roundtrip, input, "LZW round-trip mismatch");
    }
    t.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_inputs() {
        let mut t = Tracer::new("t");
        for input in [&b"abababababab"[..], b"x", b"", b"to be or not to be to be"] {
            let mut codes = Vec::new();
            compress(&mut t, input, &mut codes);
            assert_eq!(decompress(&mut t, &codes), input);
        }
    }

    #[test]
    fn kwkwk_case_roundtrips() {
        // "aaaa..." triggers the code-not-yet-defined path.
        let input = vec![b'a'; 50];
        let mut t = Tracer::new("t");
        let mut codes = Vec::new();
        compress(&mut t, &input, &mut codes);
        assert_eq!(decompress(&mut t, &codes), input);
    }

    #[test]
    fn dictionary_reset_roundtrips() {
        // Enough distinct digrams to overflow 4096 codes.
        let mut rng = Rng::new(5);
        let input: Vec<u8> = (0..60_000).map(|_| rng.below(251) as u8).collect();
        let mut t = Tracer::new("t");
        let mut codes = Vec::new();
        compress(&mut t, &input, &mut codes);
        assert_eq!(decompress(&mut t, &codes), input);
    }

    #[test]
    fn workload_is_deterministic_and_biased() {
        let a = trace(Scale::Smoke);
        let b = trace(Scale::Smoke);
        assert_eq!(a, b);
        let stats = a.stats();
        // Few static branches, like the original's 482.
        assert!(
            stats.static_conditional < 60,
            "{}",
            stats.static_conditional
        );
        assert!(stats.dynamic_conditional > 10_000);
        // The dictionary-probe branch dominates and is biased.
        assert!(stats.strongly_biased_fraction() > 0.3);
    }
}
