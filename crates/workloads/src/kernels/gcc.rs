//! `gcc` (SPEC CINT95 126.gcc analogue): a real, if small, optimizing
//! compiler pipeline — lexer, recursive-descent parser, constant
//! folding, optional CSE/DCE, stack-machine code generation, peephole
//! pass, and execution of the generated code.
//!
//! gcc is the paper's branchiest benchmark (16k static branches): its
//! branch population is spread over hundreds of pattern-matching sites.
//! This kernel models that with per-token and per-opcode dispatch sites
//! fanned out via [`Site::with_index`](crate::Site::with_index), yielding
//! a static branch count in the thousands, and data-dependent decision
//! branches that respond to correlation — exactly the benchmark the
//! paper uses for its Figure 5–7 analysis.

use std::collections::HashMap;

use bpred_trace::Trace;

use crate::registry::Scale;
use crate::rng::Rng;
use crate::site;
use crate::tracer::Tracer;

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Token {
    Num(i64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Assign,
    Semi,
    Lt,
    Gt,
    EqEq,
    If,
    Else,
    While,
    Print,
}

fn lex(t: &mut Tracer, src: &str) -> Vec<Token> {
    let dispatch = site!();
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while t.branch(site!(), i < bytes.len()) {
        let b = bytes[i];
        // Character-class dispatch, one site per class bucket: models the
        // lexer's big switch over character codes.
        let class = match b {
            b' ' | b'\n' | b'\t' => 0u32,
            b'0'..=b'9' => 1,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => 2,
            _ => 3 + u32::from(b % 13),
        };
        for k in 0..4u32 {
            t.branch(dispatch.with_index(k), class == k.min(3));
        }
        match class {
            0 => i += 1,
            1 => {
                let mut v: i64 = 0;
                while t.branch(site!(), i < bytes.len() && bytes[i].is_ascii_digit()) {
                    v = v * 10 + i64::from(bytes[i] - b'0');
                    i += 1;
                }
                tokens.push(Token::Num(v));
            }
            2 => {
                let start = i;
                while t.branch(
                    site!(),
                    i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_'),
                ) {
                    i += 1;
                }
                let word = &src[start..i];
                // Keyword recognition: one biased site per keyword.
                let tok = if t.branch(site!(), word == "if") {
                    Token::If
                } else if t.branch(site!(), word == "else") {
                    Token::Else
                } else if t.branch(site!(), word == "while") {
                    Token::While
                } else if t.branch(site!(), word == "print") {
                    Token::Print
                } else {
                    Token::Ident(word.to_owned())
                };
                tokens.push(tok);
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &bytes[i..i + 2]
                } else {
                    &bytes[i..]
                };
                if t.branch(site!(), two == b"==") {
                    tokens.push(Token::EqEq);
                    i += 2;
                } else {
                    let tok = match b {
                        b'+' => Token::Plus,
                        b'-' => Token::Minus,
                        b'*' => Token::Star,
                        b'/' => Token::Slash,
                        b'%' => Token::Percent,
                        b'(' => Token::LParen,
                        b')' => Token::RParen,
                        b'{' => Token::LBrace,
                        b'}' => Token::RBrace,
                        b'=' => Token::Assign,
                        b';' => Token::Semi,
                        b'<' => Token::Lt,
                        b'>' => Token::Gt,
                        other => panic!("lexer: unexpected byte {other:#x}"),
                    };
                    tokens.push(tok);
                    i += 1;
                }
            }
        }
    }
    tokens
}

// --------------------------------------------------------------- parser

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Expr {
    Num(i64),
    Var(String),
    Binary(Box<Expr>, BinOp, Box<Expr>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Gt,
    Eq,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Stmt {
    Assign(String, Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    While(Expr, Vec<Stmt>),
    Print(Expr),
}

struct Parser<'t> {
    t: &'t mut Tracer,
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn eat(&mut self, expected: &Token) {
        assert_eq!(self.peek(), Some(expected), "parse error at {}", self.pos);
        self.pos += 1;
    }

    fn block(&mut self) -> Vec<Stmt> {
        self.eat(&Token::LBrace);
        let mut stmts = Vec::new();
        while self.t.branch(site!(), self.peek() != Some(&Token::RBrace)) {
            stmts.push(self.statement());
        }
        self.eat(&Token::RBrace);
        stmts
    }

    fn statement(&mut self) -> Stmt {
        let is_if = matches!(self.peek(), Some(Token::If));
        if self.t.branch(site!(), is_if) {
            self.pos += 1;
            self.eat(&Token::LParen);
            let cond = self.expr();
            self.eat(&Token::RParen);
            let then = self.block();
            let has_else = matches!(self.peek(), Some(Token::Else));
            let els = if self.t.branch(site!(), has_else) {
                self.pos += 1;
                self.block()
            } else {
                Vec::new()
            };
            return Stmt::If(cond, then, els);
        }
        let is_while = matches!(self.peek(), Some(Token::While));
        if self.t.branch(site!(), is_while) {
            self.pos += 1;
            self.eat(&Token::LParen);
            let cond = self.expr();
            self.eat(&Token::RParen);
            let body = self.block();
            return Stmt::While(cond, body);
        }
        let is_print = matches!(self.peek(), Some(Token::Print));
        if self.t.branch(site!(), is_print) {
            self.pos += 1;
            let e = self.expr();
            self.eat(&Token::Semi);
            return Stmt::Print(e);
        }
        // assignment
        let Some(Token::Ident(name)) = self.peek().cloned() else {
            panic!("parse error: expected statement at {}", self.pos);
        };
        self.pos += 1;
        self.eat(&Token::Assign);
        let e = self.expr();
        self.eat(&Token::Semi);
        Stmt::Assign(name, e)
    }

    fn expr(&mut self) -> Expr {
        let mut lhs = self.additive();
        loop {
            let op = match self.peek() {
                Some(Token::Lt) => Some(BinOp::Lt),
                Some(Token::Gt) => Some(BinOp::Gt),
                Some(Token::EqEq) => Some(BinOp::Eq),
                _ => None,
            };
            if !self.t.branch(site!(), op.is_some()) {
                return lhs;
            }
            self.pos += 1;
            let rhs = self.additive();
            lhs = Expr::Binary(
                Box::new(lhs),
                op.expect("checked via branch"), // panic-audited: the traced branch condition is op.is_some()
                Box::new(rhs),
            );
        }
    }

    fn additive(&mut self) -> Expr {
        let mut lhs = self.term();
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => Some(BinOp::Add),
                Some(Token::Minus) => Some(BinOp::Sub),
                _ => None,
            };
            if !self.t.branch(site!(), op.is_some()) {
                return lhs;
            }
            self.pos += 1;
            let rhs = self.term();
            lhs = Expr::Binary(
                Box::new(lhs),
                op.expect("checked via branch"), // panic-audited: the traced branch condition is op.is_some()
                Box::new(rhs),
            );
        }
    }

    fn term(&mut self) -> Expr {
        let mut lhs = self.factor();
        loop {
            let op = match self.peek() {
                Some(Token::Star) => Some(BinOp::Mul),
                Some(Token::Slash) => Some(BinOp::Div),
                Some(Token::Percent) => Some(BinOp::Rem),
                _ => None,
            };
            if !self.t.branch(site!(), op.is_some()) {
                return lhs;
            }
            self.pos += 1;
            let rhs = self.factor();
            lhs = Expr::Binary(
                Box::new(lhs),
                op.expect("checked via branch"), // panic-audited: the traced branch condition is op.is_some()
                Box::new(rhs),
            );
        }
    }

    fn factor(&mut self) -> Expr {
        let tok = self.peek().cloned();
        if self.t.branch(site!(), matches!(tok, Some(Token::LParen))) {
            self.pos += 1;
            let e = self.expr();
            self.eat(&Token::RParen);
            return e;
        }
        match tok {
            Some(Token::Num(n)) => {
                self.pos += 1;
                Expr::Num(n)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                Expr::Var(name)
            }
            other => panic!("parse error: unexpected {other:?}"),
        }
    }
}

// ----------------------------------------------------------- optimiser

/// Constant folding + algebraic identities, with one pattern-match site
/// per (unit, op, pattern) triple — the fan-out that gives gcc its
/// thousands-of-statics branch spread (each compiled unit behaves like a
/// separately expanded copy of the pattern matcher, as inlining and
/// generated code do in the real compiler).
fn fold(t: &mut Tracer, e: Expr, unit: u32) -> Expr {
    let pattern = site!();
    match e {
        Expr::Binary(l, op, r) => {
            let l = fold(t, *l, unit);
            let r = fold(t, *r, unit);
            let op_idx = unit * 64 + op as u32;
            // Both constants: evaluate at compile time.
            if let (Expr::Num(a), Expr::Num(b)) = (&l, &r) {
                t.branch(pattern.with_index(op_idx * 4), true);
                let (a, b) = (*a, *b);
                let v = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if t.branch(site!(), b == 0) {
                            return Expr::Binary(Box::new(l), op, Box::new(r));
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if t.branch(site!(), b == 0) {
                            return Expr::Binary(Box::new(l), op, Box::new(r));
                        }
                        a.wrapping_rem(b)
                    }
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Gt => i64::from(a > b),
                    BinOp::Eq => i64::from(a == b),
                };
                return Expr::Num(v);
            }
            t.branch(pattern.with_index(op_idx * 4), false);
            // x + 0, x - 0, x * 1, x / 1 => x ; x * 0 => 0
            let ident = matches!(
                (&op, &r),
                (BinOp::Add | BinOp::Sub, Expr::Num(0)) | (BinOp::Mul | BinOp::Div, Expr::Num(1))
            );
            if t.branch(pattern.with_index(op_idx * 4 + 1), ident) {
                return l;
            }
            let zero = matches!((&op, &r), (BinOp::Mul, Expr::Num(0)));
            if t.branch(pattern.with_index(op_idx * 4 + 2), zero) {
                return Expr::Num(0);
            }
            Expr::Binary(Box::new(l), op, Box::new(r))
        }
        other => other,
    }
}

fn fold_stmts(t: &mut Tracer, stmts: Vec<Stmt>, unit: u32) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Assign(n, e) => out.push(Stmt::Assign(n, fold(t, e, unit))),
            Stmt::Print(e) => out.push(Stmt::Print(fold(t, e, unit))),
            Stmt::If(c, a, b) => {
                let c = fold(t, c, unit);
                // Branch elimination on constant conditions.
                let is_const = matches!(c, Expr::Num(_));
                if t.branch(site!(), is_const) {
                    let Expr::Num(v) = c else {
                        unreachable!("checked via branch")
                    };
                    let chosen = if v != 0 { a } else { b };
                    out.extend(fold_stmts(t, chosen, unit));
                } else {
                    out.push(Stmt::If(c, fold_stmts(t, a, unit), fold_stmts(t, b, unit)));
                }
            }
            Stmt::While(c, body) => {
                let c = fold(t, c, unit);
                let dead = matches!(c, Expr::Num(0));
                if t.branch(site!(), dead) {
                    // Dead loop eliminated.
                } else {
                    out.push(Stmt::While(c, fold_stmts(t, body, unit)));
                }
            }
        }
    }
    out
}

// ------------------------------------------------------------- codegen

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    Push(i64),
    Load(u16),
    Store(u16),
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Gt,
    Eq,
    JumpIfZero(usize),
    Jump(usize),
    Print,
}

#[derive(Debug, Default)]
struct Codegen {
    code: Vec<Op>,
    vars: HashMap<String, u16>,
    unit: u32,
}

impl Codegen {
    fn slot(&mut self, t: &mut Tracer, name: &str) -> u16 {
        let known = self.vars.get(name).copied();
        if t.branch(site!(), known.is_some()) {
            known.expect("checked via branch") // panic-audited: the traced branch condition is known.is_some()
        } else {
            let s = self.vars.len() as u16;
            self.vars.insert(name.to_owned(), s);
            s
        }
    }

    fn expr(&mut self, t: &mut Tracer, e: &Expr) {
        let emit = site!();
        match e {
            Expr::Num(n) => self.code.push(Op::Push(*n)),
            Expr::Var(v) => {
                let s = self.slot(t, v);
                self.code.push(Op::Load(s));
            }
            Expr::Binary(l, op, r) => {
                self.expr(t, l);
                self.expr(t, r);
                // One emission site per (unit, operator), as in a
                // table-driven instruction selector.
                let idx = *op as u32;
                for k in 0..8u32 {
                    t.branch(emit.with_index(self.unit * 8 + k), idx == k);
                }
                self.code.push(match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Rem => Op::Rem,
                    BinOp::Lt => Op::Lt,
                    BinOp::Gt => Op::Gt,
                    BinOp::Eq => Op::Eq,
                });
            }
        }
    }

    fn stmts(&mut self, t: &mut Tracer, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Assign(n, e) => {
                    self.expr(t, e);
                    let slot = self.slot(t, n);
                    self.code.push(Op::Store(slot));
                }
                Stmt::Print(e) => {
                    self.expr(t, e);
                    self.code.push(Op::Print);
                }
                Stmt::If(c, a, b) => {
                    self.expr(t, c);
                    let jz = self.code.len();
                    self.code.push(Op::JumpIfZero(0));
                    self.stmts(t, a);
                    if t.branch(site!(), !b.is_empty()) {
                        let jend = self.code.len();
                        self.code.push(Op::Jump(0));
                        self.code[jz] = Op::JumpIfZero(self.code.len());
                        self.stmts(t, b);
                        self.code[jend] = Op::Jump(self.code.len());
                    } else {
                        self.code[jz] = Op::JumpIfZero(self.code.len());
                    }
                }
                Stmt::While(c, body) => {
                    let top = self.code.len();
                    self.expr(t, c);
                    let jz = self.code.len();
                    self.code.push(Op::JumpIfZero(0));
                    self.stmts(t, body);
                    self.code.push(Op::Jump(top));
                    self.code[jz] = Op::JumpIfZero(self.code.len());
                }
            }
        }
    }
}

// ------------------------------------------------- dead-store elimination

/// Collects the variables an expression reads.
fn expr_reads(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Num(_) => {}
        Expr::Var(v) => out.push(v.clone()),
        Expr::Binary(l, _, r) => {
            expr_reads(l, out);
            expr_reads(r, out);
        }
    }
}

/// Dead-store elimination over a statement list: an assignment whose
/// variable is overwritten before any read (within the same straight-
/// line region, conservatively keeping everything live across control
/// flow) is dropped. One traced decision branch per assignment — the
/// liveness test a real DCE pass performs.
fn eliminate_dead_stores(t: &mut Tracer, stmts: Vec<Stmt>) -> Vec<Stmt> {
    // Backward scan; `dead` holds variables whose current value is
    // provably overwritten before being read.
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    let mut dead: Vec<String> = Vec::new();
    for s in stmts.into_iter().rev() {
        match s {
            Stmt::Assign(name, e) => {
                let is_dead = dead.contains(&name);
                if t.branch(site!(), is_dead) {
                    // Dropped; its operands are not read here either,
                    // but side-effect-free expressions need no keep.
                    continue;
                }
                // The assignment kills `name` for earlier statements and
                // makes everything it reads live.
                dead.push(name.clone());
                let mut reads = Vec::new();
                expr_reads(&e, &mut reads);
                dead.retain(|d| !reads.contains(d));
                out.push(Stmt::Assign(name, e));
            }
            Stmt::Print(e) => {
                let mut reads = Vec::new();
                expr_reads(&e, &mut reads);
                dead.retain(|d| !reads.contains(d));
                out.push(Stmt::Print(e));
            }
            control => {
                // Control flow: conservatively, everything becomes live.
                let had_dead = !dead.is_empty();
                t.branch(site!(), had_dead);
                dead.clear();
                out.push(control);
            }
        }
    }
    out.reverse();
    out
}

// ------------------------------------------- local common subexpressions

/// Local value-numbering CSE over one statement list's expressions:
/// repeated side-effect-free (expr) occurrences within a statement are
/// detected (traced per comparison) and rewritten to a temp variable.
/// Only whole-statement-local duplicates are handled — the shape of a
/// quick local CSE, not a global one.
fn cse_statement(t: &mut Tracer, stmt: Stmt, fresh: &mut u32) -> Vec<Stmt> {
    fn collect<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
        if let Expr::Binary(l, _, r) = e {
            out.push(e);
            collect(l, out);
            collect(r, out);
        }
    }
    fn replace(e: &Expr, needle: &Expr, var: &str) -> Expr {
        if e == needle {
            return Expr::Var(var.to_owned());
        }
        match e {
            Expr::Binary(l, op, r) => Expr::Binary(
                Box::new(replace(l, needle, var)),
                *op,
                Box::new(replace(r, needle, var)),
            ),
            other => other.clone(),
        }
    }
    /// How to rebuild the statement around its (rewritten) expression.
    type Rebuild = fn(Option<String>, Expr) -> Stmt;
    let (name, e, rebuild): (Option<String>, Expr, Rebuild) = match stmt {
        Stmt::Assign(n, e) => (Some(n), e, |n, e| Stmt::Assign(n.expect("assign"), e)), // panic-audited: the Assign arm always passes Some(name) to its rebuild fn
        Stmt::Print(e) => (None, e, |_, e| Stmt::Print(e)),
        control => return vec![control],
    };
    let mut subexprs = Vec::new();
    collect(&e, &mut subexprs);
    // Find the first repeated binary subexpression, if any.
    let mut found: Option<Expr> = None;
    'outer: for (i, a) in subexprs.iter().enumerate() {
        for b in &subexprs[i + 1..] {
            if t.branch(site!(), *a == *b) {
                found = Some((*a).clone());
                break 'outer;
            }
        }
    }
    match found {
        Some(dup) => {
            let tmp = format!("_cse{fresh}");
            *fresh += 1;
            let rewritten = replace(&e, &dup, &tmp);
            vec![Stmt::Assign(tmp, dup), rebuild(name, rewritten)]
        }
        None => vec![rebuild(name, e)],
    }
}

fn cse_stmts(t: &mut Tracer, stmts: Vec<Stmt>, fresh: &mut u32) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::If(c, a, b) => {
                let a = cse_stmts(t, a, fresh);
                let b = cse_stmts(t, b, fresh);
                out.push(Stmt::If(c, a, b));
            }
            Stmt::While(c, body) => {
                let body = cse_stmts(t, body, fresh);
                out.push(Stmt::While(c, body));
            }
            simple => out.extend(cse_statement(t, simple, fresh)),
        }
    }
    out
}

/// Peephole: Push(a) Push(b) <op> never survives folding, but Load x;
/// Store x pairs do appear; remove them.
fn peephole(t: &mut Tracer, code: &mut Vec<Op>) {
    let mut i = 0;
    let mut out: Vec<Op> = Vec::with_capacity(code.len());
    // Only run the pair-removal when no jump targets the middle; for
    // simplicity (and to keep targets valid) the pass only fires when
    // the code has no jumps at all — common for straight-line functions.
    let has_jumps = code
        .iter()
        .any(|op| matches!(op, Op::Jump(_) | Op::JumpIfZero(_)));
    if t.branch(site!(), has_jumps) {
        return;
    }
    while t.branch(site!(), i < code.len()) {
        if t.branch(
            site!(),
            i + 1 < code.len()
                && matches!((code[i], code[i + 1]), (Op::Load(a), Op::Store(b)) if a == b),
        ) {
            i += 2; // drop the no-op pair
        } else {
            out.push(code[i]);
            i += 1;
        }
    }
    *code = out;
}

/// Executes the generated stack code, tracing the interpreter dispatch.
fn execute(t: &mut Tracer, code: &[Op], unit: u32, max_steps: u64) -> Vec<i64> {
    let dispatch = site!();
    let mut stack: Vec<i64> = Vec::new();
    let mut vars = vec![0i64; 256];
    let mut printed = Vec::new();
    let mut pc = 0usize;
    let mut steps = 0u64;
    while t.branch(site!(), pc < code.len() && steps < max_steps) {
        steps += 1;
        let op = code[pc];
        pc += 1;
        // Table-driven dispatch: one site per opcode family.
        let family = match op {
            Op::Push(_) => 0u32,
            Op::Load(_) | Op::Store(_) => 1,
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Rem => 2,
            Op::Lt | Op::Gt | Op::Eq => 3,
            Op::JumpIfZero(_) | Op::Jump(_) => 4,
            Op::Print => 5,
        };
        for k in 0..6u32 {
            t.branch(dispatch.with_index(unit * 8 + k), family == k);
        }
        match op {
            Op::Push(v) => stack.push(v),
            Op::Load(s) => stack.push(vars[s as usize]),
            Op::Store(s) => vars[s as usize] = stack.pop().expect("stack underflow"), // panic-audited: own compiler emits stack-balanced bytecode
            Op::Print => printed.push(stack.pop().expect("stack underflow")), // panic-audited: own compiler emits stack-balanced bytecode
            Op::Jump(target) => pc = target,
            Op::JumpIfZero(target) => {
                let v = stack.pop().expect("stack underflow"); // panic-audited: own compiler emits stack-balanced bytecode
                if t.branch(site!(), v == 0) {
                    pc = target;
                }
            }
            binary => {
                let b = stack.pop().expect("stack underflow"); // panic-audited: own compiler emits stack-balanced bytecode
                let a = stack.pop().expect("stack underflow"); // panic-audited: own compiler emits stack-balanced bytecode
                let v = match binary {
                    Op::Add => a.wrapping_add(b),
                    Op::Sub => a.wrapping_sub(b),
                    Op::Mul => a.wrapping_mul(b),
                    Op::Div => {
                        if t.branch(site!(), b == 0) {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    Op::Rem => {
                        if t.branch(site!(), b == 0) {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    Op::Lt => i64::from(a < b),
                    Op::Gt => i64::from(a > b),
                    Op::Eq => i64::from(a == b),
                    _ => unreachable!("non-binary ops handled above"),
                };
                stack.push(v);
            }
        }
    }
    printed
}

// ------------------------------------------------------ source generator

/// Generates a random well-formed source program.
fn generate_source(rng: &mut Rng, stmts: usize, depth: u32) -> String {
    let mut src = String::new();
    let vars = ["a", "b", "c", "d", "e", "f", "g", "h"];
    // Seed all variables so expressions never read junk.
    for (i, v) in vars.iter().enumerate() {
        src.push_str(&format!("{v} = {};\n", i + 1));
    }
    fn gen_expr(rng: &mut Rng, vars: &[&str], depth: u32) -> String {
        if depth == 0 || rng.chance(0.3) {
            if rng.chance(0.5) {
                format!("{}", rng.below(100))
            } else {
                (*rng.pick(vars)).to_owned()
            }
        } else {
            let ops = ["+", "-", "*", "/", "%", "<", ">", "=="];
            format!(
                "({} {} {})",
                gen_expr(rng, vars, depth - 1),
                rng.pick(&ops),
                gen_expr(rng, vars, depth - 1)
            )
        }
    }
    fn gen_stmt(rng: &mut Rng, vars: &[&str], out: &mut String, depth: u32) {
        let choice = rng.below(10);
        if choice < 5 || depth == 0 {
            let depth = 2 + rng.below(2) as u32;
            let var = *rng.pick(vars);
            out.push_str(&format!("{var} = {};\n", gen_expr(rng, vars, depth)));
        } else if choice < 7 {
            out.push_str(&format!("print {};\n", gen_expr(rng, vars, 2)));
        } else if choice < 9 {
            out.push_str(&format!("if ({}) {{\n", gen_expr(rng, vars, 2)));
            for _ in 0..1 + rng.below(3) {
                gen_stmt(rng, vars, out, depth - 1);
            }
            if rng.chance(0.4) {
                out.push_str("} else {\n");
                for _ in 0..1 + rng.below(2) {
                    gen_stmt(rng, vars, out, depth - 1);
                }
            }
            out.push_str("}\n");
        } else {
            // Bounded counting loop, guaranteed to terminate.
            let v = rng.pick(vars);
            let bound = 2 + rng.below(10);
            out.push_str(&format!("{v} = 0;\nwhile ({v} < {bound}) {{\n"));
            for _ in 0..1 + rng.below(2) {
                gen_stmt(rng, vars, out, depth - 1);
            }
            out.push_str(&format!("{v} = {v} + 1;\n}}\n"));
        }
    }
    for _ in 0..stmts {
        gen_stmt(rng, &vars, &mut src, depth);
    }
    src
}

/// Compiles and runs one source program end to end. `unit` is the
/// translation-unit index used to fan out the pattern/dispatch sites.
pub(crate) fn compile_and_run(t: &mut Tracer, src: &str, unit: u32) -> Vec<i64> {
    let tokens = lex(t, src);
    let mut parser = Parser { t, tokens, pos: 0 };
    let mut program = Vec::new();
    while parser.t.branch(site!(), parser.peek().is_some()) {
        program.push(parser.statement());
    }
    let t = parser.t;
    let program = fold_stmts(t, program, unit);
    let mut fresh = 0;
    let program = cse_stmts(t, program, &mut fresh);
    let program = eliminate_dead_stores(t, program);
    let mut cg = Codegen {
        unit,
        ..Codegen::default()
    };
    cg.stmts(t, &program);
    let mut code = cg.code;
    peephole(t, &mut code);
    execute(t, &code, unit, 12_000)
}

fn run_workload(name: &str, seed: u64, programs: u64, stmts: usize) -> Trace {
    let mut t = Tracer::new(name);
    let mut rng = Rng::new(seed);
    for unit in 0..programs {
        let src = generate_source(&mut rng, stmts, 3);
        // 48 distinct expanded-code identities, reused cyclically.
        let _ = compile_and_run(&mut t, &src, (unit % 48) as u32);
    }
    t.into_trace()
}

/// Runs the `gcc` workload at the given scale.
#[must_use]
pub fn trace(scale: Scale) -> Trace {
    run_workload("gcc", 0x6CC, 4 * scale.factor(), 60)
}

/// Runs the `real_gcc` workload (the IBS trace of gcc itself): the same
/// compiler over a larger, more statement-heavy input mix, traced with
/// kernel-ish interleaving absent (IBS real_gcc is user+kernel; the mix
/// difference is modelled by input size and seed).
#[must_use]
pub fn trace_real_gcc(scale: Scale) -> Trace {
    run_workload("real_gcc", 0x04EA_16CC, 2 * scale.factor(), 110)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str) -> Vec<i64> {
        let mut t = Tracer::new("t");
        compile_and_run(&mut t, src, 0)
    }

    #[test]
    fn arithmetic_pipeline_end_to_end() {
        assert_eq!(run_src("print 1 + 2 * 3;"), vec![7]);
        assert_eq!(run_src("a = 10; b = 4; print a - b;"), vec![6]);
        assert_eq!(run_src("print (8 / 2) % 3;"), vec![1]);
    }

    #[test]
    fn comparisons_and_if() {
        assert_eq!(
            run_src("if (1 < 2) { print 1; } else { print 0; }"),
            vec![1]
        );
        assert_eq!(
            run_src("if (2 < 1) { print 1; } else { print 0; }"),
            vec![0]
        );
        assert_eq!(run_src("a = 5; if (a == 5) { print 42; }"), vec![42]);
    }

    #[test]
    fn while_loop_computes() {
        // sum 0..5
        assert_eq!(
            run_src("s = 0; i = 0; while (i < 5) { s = s + i; i = i + 1; } print s;"),
            vec![10]
        );
    }

    #[test]
    fn constant_folding_preserves_semantics() {
        // 2*3+4 folds to 10 at compile time; result must match.
        assert_eq!(run_src("print 2 * 3 + 4;"), vec![10]);
        // Dead branch elimination: condition folds to 0.
        assert_eq!(
            run_src("if (1 > 2) { print 111; } else { print 222; }"),
            vec![222]
        );
        // x * 0 => 0 with a variable operand.
        assert_eq!(run_src("a = 7; print a * 0;"), vec![0]);
        // x + 0 identity.
        assert_eq!(run_src("a = 9; print a + 0;"), vec![9]);
    }

    #[test]
    fn division_by_zero_is_defined_as_zero() {
        assert_eq!(run_src("a = 3; b = 0; print a / b;"), vec![0]);
        assert_eq!(run_src("a = 3; b = 0; print a % b;"), vec![0]);
    }

    #[test]
    fn fold_handles_constant_div_by_zero_without_folding() {
        // 1/0 cannot fold; runtime defines it as 0.
        assert_eq!(run_src("print 1 / 0;"), vec![0]);
    }

    #[test]
    fn generated_sources_compile_and_run() {
        let mut rng = Rng::new(99);
        for _ in 0..5 {
            let src = generate_source(&mut rng, 20, 3);
            let _ = run_src(&src); // must not panic
        }
    }

    #[test]
    fn dead_stores_are_eliminated_semantically_safely() {
        // b's first assignment is dead (overwritten before any read).
        assert_eq!(run_src("b = 1; b = 2; print b;"), vec![2]);
        // A read in between keeps both stores live.
        assert_eq!(run_src("b = 1; a = b; b = 2; print a + b;"), vec![3]);
        // Control flow conservatively keeps stores alive.
        assert_eq!(
            run_src("b = 1; if (1 < 2) { print b; } b = 2; print b;"),
            vec![1, 2]
        );
    }

    #[test]
    fn cse_preserves_semantics_on_repeated_subexpressions() {
        assert_eq!(run_src("a = 3; print (a + 1) * (a + 1);"), vec![16]);
        assert_eq!(run_src("a = 2; b = (a * a) + (a * a); print b;"), vec![8]);
        // No duplicates: unchanged.
        assert_eq!(run_src("a = 2; print a + 1;"), vec![3]);
    }

    #[test]
    fn generated_sources_survive_all_passes() {
        let mut rng = Rng::new(4242);
        for _ in 0..8 {
            let src = generate_source(&mut rng, 25, 3);
            let _ = run_src(&src); // folding + CSE + DCE must not break programs
        }
    }

    #[test]
    fn workload_has_gcc_like_static_spread() {
        let trace = trace(Scale::Smoke);
        let stats = trace.stats();
        assert!(
            stats.static_conditional > 80,
            "gcc-like workloads need a wide static spread, got {}",
            stats.static_conditional
        );
        assert!(stats.dynamic_conditional > 50_000);
    }

    #[test]
    fn real_gcc_is_bigger_than_gcc_per_program() {
        let a = trace(Scale::Smoke).stats();
        let b = trace_real_gcc(Scale::Smoke).stats();
        assert!(b.static_conditional >= a.static_conditional / 2);
        assert_ne!(a, b);
    }

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(trace(Scale::Smoke), trace(Scale::Smoke));
    }
}
