//! `go` (SPEC CINT95 099.go analogue): Monte-Carlo self-play on a real
//! 9x9 Go board with capture logic.
//!
//! The original go benchmark is the paper's hard case: roughly half its
//! dynamic branches are weakly biased (Section 4.4, Figure 8), because
//! position-evaluation branches depend on board data with no stable
//! bias. This kernel reproduces that: stone-colour tests during random
//! playouts are intrinsically close to 50/50, so the weakly-biased class
//! dominates and no de-aliasing scheme can fix it — only longer history
//! helps, which is exactly the paper's conclusion.

use bpred_trace::Trace;

use crate::registry::Scale;
use crate::rng::Rng;
use crate::site;
use crate::tracer::Tracer;

const SIZE: usize = 9;
const POINTS: usize = SIZE * SIZE;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Point {
    Empty,
    Black,
    White,
}

#[derive(Debug, Clone)]
struct Board {
    points: [Point; POINTS],
}

impl Board {
    fn new() -> Self {
        Self {
            points: [Point::Empty; POINTS],
        }
    }

    fn neighbours(idx: usize) -> impl Iterator<Item = usize> {
        let (r, c) = (idx / SIZE, idx % SIZE);
        [
            (r > 0).then(|| idx - SIZE),
            (r + 1 < SIZE).then(|| idx + SIZE),
            (c > 0).then(|| idx - 1),
            (c + 1 < SIZE).then(|| idx + 1),
        ]
        .into_iter()
        .flatten()
    }

    /// Flood-fills the group containing `start`, returning its stones
    /// and whether it has at least one liberty. Branch-heavy and
    /// data-dependent: the go workload's signature code path.
    fn group_and_liberty(&self, t: &mut Tracer, start: usize) -> (Vec<usize>, bool) {
        let colour = self.points[start];
        let mut stack = vec![start];
        let mut seen = [false; POINTS];
        seen[start] = true;
        let mut group = Vec::new();
        let mut has_liberty = false;
        while t.branch(site!(), !stack.is_empty()) {
            let p = stack.pop().expect("loop guard ensures non-empty"); // panic-audited: the traced loop guard is !stack.is_empty()
            group.push(p);
            for n in Self::neighbours(p) {
                if t.branch(site!(), self.points[n] == Point::Empty) {
                    has_liberty = true;
                } else if t.branch(site!(), self.points[n] == colour && !seen[n]) {
                    seen[n] = true;
                    stack.push(n);
                }
            }
        }
        (group, has_liberty)
    }

    /// Plays a stone if legal (not suicide); removes captured enemy
    /// groups. Returns whether the move stood.
    fn play(&mut self, t: &mut Tracer, idx: usize, colour: Point) -> bool {
        if t.branch(site!(), self.points[idx] != Point::Empty) {
            return false;
        }
        self.points[idx] = colour;
        let enemy = if colour == Point::Black {
            Point::White
        } else {
            Point::Black
        };
        // Capture adjacent enemy groups with no liberties.
        let mut captured_any = false;
        for n in Self::neighbours(idx) {
            if t.branch(site!(), self.points[n] == enemy) {
                let (group, liberty) = self.group_and_liberty(t, n);
                if t.branch(site!(), !liberty) {
                    captured_any = true;
                    for g in group {
                        self.points[g] = Point::Empty;
                    }
                }
            }
        }
        // Suicide check for our own stone.
        let (own_group, own_liberty) = self.group_and_liberty(t, idx);
        if t.branch(site!(), !own_liberty && !captured_any) {
            for g in own_group {
                self.points[g] = Point::Empty;
            }
            self.points[idx] = Point::Empty;
            return false;
        }
        true
    }

    /// Rough area score for black (stones plus empty points whose
    /// neighbours are all black).
    fn score_black(&self, t: &mut Tracer) -> i32 {
        let mut score = 0;
        for idx in 0..POINTS {
            match self.points[idx] {
                Point::Black => score += 1,
                Point::White => score -= 1,
                Point::Empty => {
                    let mut all_black = true;
                    let mut all_white = true;
                    for n in Self::neighbours(idx) {
                        if t.branch(site!(), self.points[n] != Point::Black) {
                            all_black = false;
                        }
                        if t.branch(site!(), self.points[n] != Point::White) {
                            all_white = false;
                        }
                    }
                    if t.branch(site!(), all_black) {
                        score += 1;
                    } else if t.branch(site!(), all_white) {
                        score -= 1;
                    }
                }
            }
        }
        score
    }
}

/// Matches a library of 3x3 patterns around a just-played point — the
/// pattern-matching code that gives real go engines (and the go
/// benchmark) their thousands of static, data-dependent branches. Each
/// pattern is one fanned-out site whose outcome depends on board data.
const PATTERNS: u32 = 384;
const PATTERNS_PER_BUCKET: u32 = 8;

fn match_patterns(t: &mut Tracer, board: &Board, idx: usize) -> u32 {
    let site = site!();
    // Encode the 8-neighbourhood as 2 bits per point (off-board = 3).
    let (r, c) = (idx / SIZE, idx % SIZE);
    let mut code: u32 = 0;
    for dr in -1i32..=1 {
        for dc in -1i32..=1 {
            if dr == 0 && dc == 0 {
                continue;
            }
            let (nr, nc) = (r as i32 + dr, c as i32 + dc);
            let v = if (0..SIZE as i32).contains(&nr) && (0..SIZE as i32).contains(&nc) {
                match board.points[(nr * SIZE as i32 + nc) as usize] {
                    Point::Empty => 0u32,
                    Point::Black => 1,
                    Point::White => 2,
                }
            } else {
                3
            };
            code = (code << 2) | v;
        }
    }
    // The matcher is bucketed by the neighbourhood code, so only one
    // bucket's patterns execute per move — a large *static* footprint
    // (384 sites, like a real engine's pattern tables) with a small
    // dynamic cost, exactly how generated pattern code behaves.
    let bucket = code % (PATTERNS / PATTERNS_PER_BUCKET);
    let mut hits = 0;
    for j in 0..PATTERNS_PER_BUCKET {
        let k = bucket * PATTERNS_PER_BUCKET + j;
        // Deterministic pseudo-random pattern k: a masked template.
        let h = (u64::from(k) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let template = (h >> 13) as u32 & 0xFFFF;
        let mask = ((h >> 37) as u32 & 0xFFFF) | 0x0003;
        let matched = (code & mask) == (template & mask);
        if t.branch(site.with_index(k), matched) {
            hits += 1;
        }
    }
    hits
}

fn run_playout(t: &mut Tracer, rng: &mut Rng, max_moves: usize) -> i32 {
    let mut board = Board::new();
    let mut colour = Point::Black;
    let mut played = 0usize;
    let mut attempts = 0usize;
    while t.branch(site!(), played < max_moves && attempts < max_moves * 4) {
        attempts += 1;
        let idx = rng.below(POINTS as u64) as usize;
        let stood = board.play(t, idx, colour);
        if t.branch(site!(), stood) {
            played += 1;
            std::hint::black_box(match_patterns(t, &board, idx));
            colour = if colour == Point::Black {
                Point::White
            } else {
                Point::Black
            };
        }
    }
    board.score_black(t)
}

/// Runs the workload at the given scale.
#[must_use]
pub fn trace(scale: Scale) -> Trace {
    let mut t = Tracer::new("go");
    let mut rng = Rng::new(0x60_60);
    let games = 10 * scale.factor();
    let mut total = 0i64;
    for _ in 0..games {
        total += i64::from(run_playout(&mut t, &mut rng, 90));
    }
    // Keep the aggregate alive so the computation cannot be elided.
    std::hint::black_box(total);
    t.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stone_capture() {
        let mut t = Tracer::new("t");
        let mut b = Board::new();
        // Surround the white stone at (1,1) with black.
        assert!(b.play(&mut t, SIZE + 1, Point::White));
        for idx in [1, SIZE, SIZE + 2, 2 * SIZE + 1] {
            assert!(b.play(&mut t, idx, Point::Black));
        }
        assert_eq!(
            b.points[SIZE + 1],
            Point::Empty,
            "white stone must be captured"
        );
    }

    #[test]
    fn suicide_is_rejected() {
        let mut t = Tracer::new("t");
        let mut b = Board::new();
        // Black surrounds (0,0)'s liberties: (0,1) and (1,0).
        assert!(b.play(&mut t, 1, Point::Black));
        assert!(b.play(&mut t, SIZE, Point::Black));
        // White playing (0,0) is suicide.
        assert!(!b.play(&mut t, 0, Point::White));
        assert_eq!(b.points[0], Point::Empty);
    }

    #[test]
    fn capture_beats_suicide() {
        let mut t = Tracer::new("t");
        let mut b = Board::new();
        // White at (0,1); black at (0,2),(1,1) leaves white one liberty
        // at (0,0). Black playing (0,0) would itself have no liberties
        // but captures white first, so it stands.
        assert!(b.play(&mut t, 1, Point::White));
        assert!(b.play(&mut t, 2, Point::Black));
        assert!(b.play(&mut t, SIZE + 1, Point::Black));
        assert!(b.play(&mut t, SIZE, Point::Black));
        assert!(b.play(&mut t, 0, Point::Black));
        assert_eq!(b.points[1], Point::Empty, "white must be captured");
        assert_eq!(b.points[0], Point::Black);
    }

    #[test]
    fn occupied_point_is_illegal() {
        let mut t = Tracer::new("t");
        let mut b = Board::new();
        assert!(b.play(&mut t, 40, Point::Black));
        assert!(!b.play(&mut t, 40, Point::White));
    }

    #[test]
    fn scoring_counts_stones_and_territory() {
        let mut t = Tracer::new("t");
        let mut b = Board::new();
        b.points[1] = Point::Black;
        b.points[SIZE] = Point::Black;
        // (0,0) is empty with all-black neighbours: black territory.
        assert_eq!(b.score_black(&mut t), 3);
    }

    #[test]
    fn workload_is_weakly_biased_like_the_original() {
        let trace = trace(Scale::Smoke);
        let stats = trace.stats();
        assert!(stats.dynamic_conditional > 20_000);
        // Section 4.4: about half of go's dynamic branches are weakly
        // biased. Require a substantially higher WB share than the
        // loop-dominated workloads exhibit.
        let wb = stats.from_weakly_biased as f64 / stats.dynamic_conditional as f64;
        assert!(
            wb > 0.3,
            "go must be weakly biased, got WB fraction {wb:.2}"
        );
    }

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(trace(Scale::Smoke), trace(Scale::Smoke));
    }
}
