//! `xlisp` (SPEC CINT95 130.li analogue): a real Lisp interpreter running
//! recursive list-processing programs.
//!
//! Like the original, this workload has very few static branches (the
//! paper counts 636) concentrated in the evaluator's dispatch and the
//! association-list lookup loop, with heavy recursion. The paper notes
//! that xlisp (with compress) is one of the two benchmarks where even a
//! single-PHT gshare suffers no aliasing.

use std::collections::HashMap;
use std::rc::Rc;

use bpred_trace::Trace;

use crate::registry::Scale;
use crate::site;
use crate::tracer::Tracer;

/// A parsed s-expression.
#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Num(i64),
    Sym(Rc<str>),
    List(Rc<[Expr]>),
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(i64),
    Nil,
    Cons(Rc<(Value, Value)>),
}

impl Value {
    fn truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::Num(0))
    }
}

fn tokenize(t: &mut Tracer, src: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in src.chars() {
        if t.branch(site!(), ch == '(' || ch == ')') {
            if t.branch(site!(), !cur.is_empty()) {
                tokens.push(std::mem::take(&mut cur));
            }
            tokens.push(ch.to_string());
        } else if t.branch(site!(), ch.is_whitespace()) {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
        } else {
            cur.push(ch);
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

fn parse(t: &mut Tracer, tokens: &[String], pos: &mut usize) -> Expr {
    let tok = &tokens[*pos];
    *pos += 1;
    if t.branch(site!(), tok == "(") {
        let mut items = Vec::new();
        while t.branch(site!(), tokens[*pos] != ")") {
            items.push(parse(t, tokens, pos));
        }
        *pos += 1; // consume ')'
        Expr::List(items.into())
    } else if t.branch(
        site!(),
        tok.bytes()
            .next()
            .is_some_and(|b| b.is_ascii_digit() || b == b'-')
            && tok.len() < 19
            && tok.parse::<i64>().is_ok(),
    ) {
        Expr::Num(tok.parse().expect("checked above")) // panic-audited: the traced branch condition included parse::<i64>().is_ok()
    } else {
        Expr::Sym(tok.as_str().into())
    }
}

/// User-defined function: parameter names and a body.
#[derive(Debug, Clone)]
struct Defun {
    params: Vec<Rc<str>>,
    body: Expr,
}

struct Interp<'t> {
    t: &'t mut Tracer,
    functions: HashMap<Rc<str>, Rc<Defun>>,
    steps: u64,
}

impl Interp<'_> {
    /// Association-list variable lookup — the classic Lisp inner loop.
    fn lookup(&mut self, env: &[(Rc<str>, Value)], name: &str) -> Value {
        let mut i = env.len();
        while self.t.branch(site!(), i > 0) {
            i -= 1;
            if self.t.branch(site!(), &*env[i].0 == name) {
                return env[i].1.clone();
            }
        }
        panic!("unbound symbol `{name}`");
    }

    fn eval(&mut self, expr: &Expr, env: &mut Vec<(Rc<str>, Value)>) -> Value {
        self.steps += 1;
        assert!(self.steps < 200_000_000, "runaway lisp program");
        match expr {
            Expr::Num(n) => Value::Num(*n),
            Expr::Sym(s) => {
                if self.t.branch(site!(), &**s == "nil") {
                    Value::Nil
                } else {
                    self.lookup(env, s)
                }
            }
            Expr::List(items) => self.eval_list(items, env),
        }
    }

    fn eval_list(&mut self, items: &[Expr], env: &mut Vec<(Rc<str>, Value)>) -> Value {
        if self.t.branch(site!(), items.is_empty()) {
            return Value::Nil;
        }
        let Expr::Sym(head) = &items[0] else {
            panic!("cannot apply a non-symbol");
        };
        let t = &mut *self;
        match &**head {
            "if" => {
                let cond = t.eval(&items[1], env);
                if t.t.branch(site!(), cond.truthy()) {
                    t.eval(&items[2], env)
                } else if t.t.branch(site!(), items.len() > 3) {
                    t.eval(&items[3], env)
                } else {
                    Value::Nil
                }
            }
            "defun" => {
                let Expr::Sym(name) = &items[1] else {
                    panic!("defun needs a name")
                };
                let Expr::List(params) = &items[2] else {
                    panic!("defun needs params")
                };
                let params = params
                    .iter()
                    .map(|p| match p {
                        Expr::Sym(s) => Rc::clone(s),
                        _ => panic!("parameter must be a symbol"),
                    })
                    .collect();
                t.functions.insert(
                    Rc::clone(name),
                    Rc::new(Defun {
                        params,
                        body: items[3].clone(),
                    }),
                );
                Value::Nil
            }
            "quotelist" => {
                // (quotelist 1 2 3) builds a list of numbers.
                let mut list = Value::Nil;
                for item in items[1..].iter().rev() {
                    let v = t.eval(item, env);
                    list = Value::Cons(Rc::new((v, list)));
                }
                list
            }
            "+" | "-" | "*" | "<" | "=" | ">" => {
                let a = t.eval(&items[1], env);
                let b = t.eval(&items[2], env);
                let (Value::Num(x), Value::Num(y)) = (&a, &b) else {
                    panic!("arithmetic on non-numbers");
                };
                let (x, y) = (*x, *y);
                match &**head {
                    "+" => Value::Num(x.wrapping_add(y)),
                    "-" => Value::Num(x.wrapping_sub(y)),
                    "*" => Value::Num(x.wrapping_mul(y)),
                    "<" => {
                        if t.t.branch(site!(), x < y) {
                            Value::Num(1)
                        } else {
                            Value::Nil
                        }
                    }
                    ">" => {
                        if t.t.branch(site!(), x > y) {
                            Value::Num(1)
                        } else {
                            Value::Nil
                        }
                    }
                    _ => {
                        if t.t.branch(site!(), x == y) {
                            Value::Num(1)
                        } else {
                            Value::Nil
                        }
                    }
                }
            }
            "cons" => {
                let a = t.eval(&items[1], env);
                let b = t.eval(&items[2], env);
                Value::Cons(Rc::new((a, b)))
            }
            "car" => match t.eval(&items[1], env) {
                Value::Cons(c) => c.0.clone(),
                _ => Value::Nil,
            },
            "cdr" => match t.eval(&items[1], env) {
                Value::Cons(c) => c.1.clone(),
                _ => Value::Nil,
            },
            "null" => {
                let v = t.eval(&items[1], env);
                if t.t.branch(site!(), matches!(v, Value::Nil)) {
                    Value::Num(1)
                } else {
                    Value::Nil
                }
            }
            name => {
                // User-defined function application.
                let f = t
                    .functions
                    .get(name)
                    .unwrap_or_else(|| panic!("undefined function `{name}`"))
                    .clone();
                let mut frame = Vec::with_capacity(f.params.len());
                let mut i = 0;
                while t.t.branch(site!(), i < f.params.len()) {
                    let v = t.eval(&items[1 + i], env);
                    frame.push((Rc::clone(&f.params[i]), v));
                    i += 1;
                }
                let depth = env.len();
                env.extend(frame);
                let result = t.eval(&f.body, env);
                env.truncate(depth);
                result
            }
        }
    }
}

/// The benchmark program suite: classic list-recursion kernels.
const PROGRAM: &str = r"
(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(defun len (l) (if (null l) 0 (+ 1 (len (cdr l)))))
(defun sum (l) (if (null l) 0 (+ (car l) (sum (cdr l)))))
(defun append2 (a b) (if (null a) b (cons (car a) (append2 (cdr a) b))))
(defun rev (l) (if (null l) nil (append2 (rev (cdr l)) (cons (car l) nil))))
(defun double (l) (if (null l) nil (cons (* 2 (car l)) (double (cdr l)))))
(defun take (n l) (if (= n 0) nil (cons (car l) (take (- n 1) (cdr l)))))
(defun countdown (n) (if (= n 0) 0 (countdown (- n 1))))
(defun tak (x y z) (if (< y x) (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y)) z))
";

fn run_program(t: &mut Tracer, source: &str) -> Vec<Value> {
    let tokens = tokenize(t, source);
    let mut interp = Interp {
        t,
        functions: HashMap::new(),
        steps: 0,
    };
    let mut results = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let expr = parse(interp.t, &tokens, &mut pos);
        let mut env = Vec::new();
        results.push(interp.eval(&expr, &mut env));
    }
    results
}

/// Runs the workload at the given scale.
#[must_use]
pub fn trace(scale: Scale) -> Trace {
    let mut t = Tracer::new("xlisp");
    let reps = scale.factor();
    for rep in 0..reps {
        // Vary arguments across reps so the recursion depths differ.
        let fib_n = 13 + (rep % 3);
        let list_n = 40 + (rep % 17) * 3;
        let tak = 8 + (rep % 2);
        let driver = format!(
            r"{PROGRAM}
            (fib {fib_n})
            (sum (rev (double (quotelist 1 2 3 4 5 6 7 8 9 10 11 12))))
            (len (append2 (quotelist 1 2 3 4 5) (quotelist 6 7 8 9)))
            (countdown {list_n})
            (tak {tak} 4 2)
            (take 3 (quotelist 9 8 7 6 5))
            "
        );
        run_program(&mut t, &driver);
    }
    t.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_one(src: &str) -> Value {
        let mut t = Tracer::new("t");
        run_program(&mut t, src).pop().expect("one result")
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(eval_one("(+ 2 (* 3 4))"), Value::Num(14));
        assert_eq!(eval_one("(< 1 2)"), Value::Num(1));
        assert_eq!(eval_one("(< 2 1)"), Value::Nil);
        assert_eq!(eval_one("(= 5 5)"), Value::Num(1));
    }

    #[test]
    fn fib_is_correct() {
        assert_eq!(
            eval_one("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)"),
            Value::Num(55)
        );
    }

    #[test]
    fn list_primitives() {
        assert_eq!(eval_one("(car (cons 1 2))"), Value::Num(1));
        assert_eq!(eval_one("(cdr (cons 1 2))"), Value::Num(2));
        assert_eq!(eval_one("(null nil)"), Value::Num(1));
        assert_eq!(eval_one("(null (cons 1 nil))"), Value::Nil);
    }

    #[test]
    fn recursion_over_lists() {
        assert_eq!(
            eval_one(
                "(defun sum (l) (if (null l) 0 (+ (car l) (sum (cdr l)))))
                 (sum (quotelist 1 2 3 4 5))"
            ),
            Value::Num(15)
        );
    }

    #[test]
    fn if_without_else_yields_nil() {
        assert_eq!(eval_one("(if (< 2 1) 42)"), Value::Nil);
    }

    #[test]
    fn shadowing_uses_innermost_binding() {
        // f binds n, then calls g which rebinds n: the assoc-list lookup
        // must find the innermost frame.
        assert_eq!(
            eval_one(
                "(defun g (n) (+ n 100))
                 (defun f (n) (g (* n 2)))
                 (f 3)"
            ),
            Value::Num(106)
        );
    }

    #[test]
    fn workload_shape_matches_the_original() {
        let trace = trace(Scale::Smoke);
        let stats = trace.stats();
        assert!(
            stats.static_conditional < 80,
            "{}",
            stats.static_conditional
        );
        assert!(stats.dynamic_conditional > 20_000);
        assert_eq!(trace, super::trace(Scale::Smoke), "determinism");
    }
}
