//! `groff` (IBS-Ultrix analogue): a text formatter with line filling,
//! full justification, hyphenation, and embedded formatting requests.
//!
//! Branch profile: per-character classification loops, a
//! fits-on-this-line test whose bias tracks word-length statistics, a
//! justification space-distribution loop, and request dispatch — the
//! medium-static-count, moderately-biased mix of the IBS text tools.

use bpred_trace::Trace;

use crate::kernels::textgen;
use crate::registry::Scale;
use crate::rng::Rng;
use crate::site;
use crate::tracer::Tracer;

/// Formatter state driven by embedded requests.
#[derive(Debug, Clone)]
struct State {
    width: usize,
    indent: usize,
    justify: bool,
}

/// Splits a long word at syllable-ish boundaries (after a vowel that is
/// followed by a consonant), returning the split point if any.
fn hyphenation_point(t: &mut Tracer, word: &str, max: usize) -> Option<usize> {
    let bytes = word.as_bytes();
    let is_vowel = |b: u8| matches!(b, b'a' | b'e' | b'i' | b'o' | b'u');
    let mut best = None;
    let mut i = 1;
    while t.branch(site!(), i + 1 < bytes.len() && i < max) {
        if t.branch(site!(), is_vowel(bytes[i]) && !is_vowel(bytes[i + 1])) {
            best = Some(i + 1);
        }
        i += 1;
    }
    // Require at least two characters on each side.
    best.filter(|&p| t.branch(site!(), p >= 2 && word.len() - p >= 2))
}

/// Distributes `extra` spaces across `gaps` gaps, left-biased — the
/// justification inner loop.
fn justify_line(t: &mut Tracer, words: &[String], width: usize) -> String {
    if t.branch(site!(), words.len() <= 1) {
        return words.first().cloned().unwrap_or_default();
    }
    let content: usize = words.iter().map(String::len).sum();
    let gaps = words.len() - 1;
    let total_space = width.saturating_sub(content).max(gaps);
    let base = total_space / gaps;
    let mut remainder = total_space % gaps;
    let mut line = String::with_capacity(width);
    for (i, w) in words.iter().enumerate() {
        line.push_str(w);
        if t.branch(site!(), i < gaps) {
            let mut n = base;
            if t.branch(site!(), remainder > 0) {
                n += 1;
                remainder -= 1;
            }
            for _ in 0..n {
                line.push(' ');
            }
        }
    }
    line
}

/// Formats the document, returning the output lines.
fn format(t: &mut Tracer, input: &str) -> Vec<String> {
    let mut state = State {
        width: 64,
        indent: 0,
        justify: true,
    };
    let mut out = Vec::new();
    let mut line_words: Vec<String> = Vec::new();
    let mut line_len = 0usize;

    let flush = |t: &mut Tracer,
                 out: &mut Vec<String>,
                 words: &mut Vec<String>,
                 len: &mut usize,
                 state: &State,
                 justify: bool| {
        if t.branch(site!(), words.is_empty()) {
            return;
        }
        let body = if t.branch(site!(), justify && state.justify) {
            justify_line(t, words, state.width - state.indent)
        } else {
            words.join(" ")
        };
        let mut line = " ".repeat(state.indent);
        line.push_str(&body);
        out.push(line);
        words.clear();
        *len = 0;
    };

    for raw_line in input.lines() {
        // Request lines start with '.'
        if t.branch(site!(), raw_line.starts_with('.')) {
            let mut parts = raw_line[1..].split_whitespace();
            let req = parts.next().unwrap_or("");
            let arg: Option<usize> = parts.next().and_then(|a| a.parse().ok());
            // Request dispatch: one biased site per request kind.
            if t.branch(site!(), req == "br") {
                flush(t, &mut out, &mut line_words, &mut line_len, &state, false);
            } else if t.branch(site!(), req == "sp") {
                flush(t, &mut out, &mut line_words, &mut line_len, &state, false);
                for _ in 0..arg.unwrap_or(1) {
                    out.push(String::new());
                }
            } else if t.branch(site!(), req == "in") {
                state.indent = arg.unwrap_or(0).min(state.width / 2);
            } else if t.branch(site!(), req == "ll") {
                state.width = arg.unwrap_or(64).clamp(16, 120);
            } else if t.branch(site!(), req == "ad") {
                state.justify = true;
            } else if t.branch(site!(), req == "na") {
                state.justify = false;
            }
            continue;
        }
        for word in raw_line.split_whitespace() {
            let mut word = word.to_owned();
            let avail = state.width - state.indent;
            loop {
                let needed = line_len + usize::from(line_len > 0) + word.len();
                if t.branch(site!(), needed <= avail) {
                    line_len += usize::from(line_len > 0) + word.len();
                    line_words.push(std::mem::take(&mut word));
                    break;
                }
                // Word does not fit: try hyphenating into the gap.
                let gap = avail.saturating_sub(line_len + usize::from(line_len > 0) + 1);
                if let Some(split) = hyphenation_point(t, &word, gap) {
                    let (head, tail) = word.split_at(split);
                    line_words.push(format!("{head}-"));
                    flush(t, &mut out, &mut line_words, &mut line_len, &state, true);
                    word = tail.to_owned();
                } else {
                    flush(t, &mut out, &mut line_words, &mut line_len, &state, true);
                    // A word longer than the whole line is force-broken.
                    if t.branch(site!(), word.len() > avail) {
                        let head: String = word.chars().take(avail).collect();
                        out.push(" ".repeat(state.indent) + &head);
                        word = word.chars().skip(avail).collect();
                    }
                }
                if t.branch(site!(), word.is_empty()) {
                    break;
                }
            }
        }
    }
    flush(t, &mut out, &mut line_words, &mut line_len, &state, false);
    out
}

/// Builds a document with interleaved formatting requests.
fn build_document(rng: &mut Rng, bytes: usize) -> String {
    let body = textgen::generate(rng, bytes);
    let mut doc = String::with_capacity(bytes + bytes / 20);
    for (i, sentence) in body.split_inclusive(". ").enumerate() {
        if rng.chance(0.06) {
            doc.push_str("\n.br\n");
        }
        if rng.chance(0.03) {
            doc.push_str(&format!("\n.in {}\n", rng.below(9)));
        }
        if rng.chance(0.02) {
            doc.push_str(&format!("\n.ll {}\n", 40 + rng.below(50)));
        }
        if rng.chance(0.02) {
            doc.push_str(if i % 2 == 0 { "\n.na\n" } else { "\n.ad\n" });
        }
        if rng.chance(0.02) {
            doc.push_str(&format!("\n.sp {}\n", 1 + rng.below(2)));
        }
        doc.push_str(sentence);
    }
    doc
}

/// Runs the workload at the given scale.
#[must_use]
pub fn trace(scale: Scale) -> Trace {
    let mut t = Tracer::new("groff");
    let mut rng = Rng::new(0x6077);
    for _ in 0..4 * scale.factor() {
        let doc = build_document(&mut rng, 12_000);
        let lines = format(&mut t, &doc);
        std::hint::black_box(lines.len());
    }
    t.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(input: &str) -> Vec<String> {
        let mut t = Tracer::new("t");
        format(&mut t, input)
    }

    #[test]
    fn fills_lines_to_width() {
        let lines = fmt(".na\nalpha beta gamma delta epsilon zeta eta theta iota kappa lambda mu nu xi omicron pi rho sigma tau");
        assert!(lines.len() > 1);
        for l in &lines {
            assert!(l.len() <= 64, "line too long: {l:?} ({})", l.len());
        }
    }

    #[test]
    fn break_request_forces_new_line() {
        let lines = fmt("one two\n.br\nthree");
        assert_eq!(lines, vec!["one two".to_owned(), "three".to_owned()]);
    }

    #[test]
    fn spacing_request_emits_blank_lines() {
        let lines = fmt("a\n.sp 2\nb");
        assert_eq!(
            lines,
            vec!["a".to_owned(), String::new(), String::new(), "b".to_owned()]
        );
    }

    #[test]
    fn indent_request_indents() {
        let lines = fmt(".in 4\nhello");
        assert_eq!(lines, vec!["    hello".to_owned()]);
    }

    #[test]
    fn justification_pads_interior_lines_to_width() {
        let text = "alpha beta gamma delta epsilon zeta eta theta iota kappa lambda mu nu xi omicron pi rho sigma tau upsilon phi chi psi omega";
        let lines = fmt(text);
        // Every line except the last must be exactly the line width.
        for l in &lines[..lines.len() - 1] {
            assert_eq!(l.len(), 64, "justified line has wrong width: {l:?}");
        }
    }

    #[test]
    fn words_survive_formatting() {
        let input = "the quick brown fox jumps over the lazy dog";
        let lines = fmt(input);
        let output = lines.join(" ");
        for w in input.split_whitespace() {
            assert!(output.contains(w), "lost word {w}");
        }
    }

    #[test]
    fn hyphenation_splits_long_words() {
        let mut t = Tracer::new("t");
        // "tenrokamiro" has vowel-consonant boundaries.
        let p = hyphenation_point(&mut t, "tenrokamiro", 8);
        assert!(p.is_some());
        let p = p.unwrap();
        assert!((2..=9).contains(&p));
        // Too-short words are not hyphenated.
        assert_eq!(hyphenation_point(&mut t, "abc", 8), None);
    }

    #[test]
    fn oversized_unhyphenatable_word_is_force_broken() {
        let lines = fmt(&format!(".na\n{}", "x".repeat(100)));
        assert!(lines.iter().all(|l| l.len() <= 64));
        let total: usize = lines.iter().map(|l| l.trim().len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn workload_shape() {
        let trace = trace(Scale::Smoke);
        let stats = trace.stats();
        assert!(stats.dynamic_conditional > 20_000);
        assert_eq!(trace, super::trace(Scale::Smoke));
    }
}
