//! `perl` (SPEC CINT95 134.perl analogue): text scanning with a real
//! backtracking regex-lite engine, hash-based word counting, and
//! sorting — the scripting-language branch mix.
//!
//! Branch profile: the matcher's per-character compare branches are
//! data-dependent with partial-match backtracking (weakly biased), the
//! hash-probe and sort branches are moderately biased, and the scan
//! loops are strongly taken.

// BTreeMap rather than HashMap: word iteration order feeds the traced
// top-list insertion, so it must be deterministic across runs.
use std::collections::BTreeMap;

use bpred_trace::Trace;

use crate::kernels::textgen;
use crate::registry::Scale;
use crate::rng::Rng;
use crate::site;
use crate::tracer::Tracer;

/// One element of a compiled pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Atom {
    /// A literal byte.
    Lit(u8),
    /// Any single byte (`.`).
    Any,
    /// One byte from a class.
    Class(Vec<u8>),
    /// Zero or more of the previous atom.
    Star(Box<Atom>),
}

/// Compiles a tiny regex supporting literals, `.`, `[abc]`, and
/// postfix `*`.
fn compile(t: &mut Tracer, pattern: &str) -> Vec<Atom> {
    let bytes = pattern.as_bytes();
    let mut atoms: Vec<Atom> = Vec::new();
    let mut i = 0;
    while t.branch(site!(), i < bytes.len()) {
        let atom = if t.branch(site!(), bytes[i] == b'[') {
            let mut class = Vec::new();
            i += 1;
            while t.branch(site!(), bytes[i] != b']') {
                class.push(bytes[i]);
                i += 1;
            }
            i += 1;
            Atom::Class(class)
        } else if t.branch(site!(), bytes[i] == b'.') {
            i += 1;
            Atom::Any
        } else {
            let b = bytes[i];
            i += 1;
            Atom::Lit(b)
        };
        if t.branch(site!(), i < bytes.len() && bytes[i] == b'*') {
            i += 1;
            atoms.push(Atom::Star(Box::new(atom)));
        } else {
            atoms.push(atom);
        }
    }
    atoms
}

fn atom_matches(t: &mut Tracer, atom: &Atom, b: u8) -> bool {
    match atom {
        // Literal compares are fanned out by character class, modelling
        // the generated-code spread of a real regex engine.
        Atom::Lit(l) => t.branch(site!().with_index(u32::from(*l) % 16), *l == b),
        // `.` matches unconditionally: no branch in generated matchers.
        Atom::Any => true,
        Atom::Class(set) => {
            let mut found = false;
            let mut i = 0;
            while t.branch(site!(), i < set.len()) {
                if t.branch(site!(), set[i] == b) {
                    found = true;
                    break;
                }
                i += 1;
            }
            found
        }
        Atom::Star(_) => unreachable!("nested star"),
    }
}

/// Backtracking match of the full pattern against the full text
/// (anchored at both ends; the workload driver uses the unanchored
/// [`search`], this entry point serves API users and tests).
#[cfg_attr(not(test), allow(dead_code))]
fn match_here(t: &mut Tracer, atoms: &[Atom], text: &[u8]) -> bool {
    let Some((first, rest)) = atoms.split_first() else {
        return t.branch(site!(), text.is_empty());
    };
    if let Atom::Star(inner) = first {
        // Greedy star with backtracking: try the longest extent first.
        let mut extent = 0;
        loop {
            let can_extend = extent < text.len() && atom_matches(t, inner, text[extent]);
            if !t.branch(site!(), can_extend) {
                break;
            }
            extent += 1;
        }
        loop {
            let rest_matches = match_here(t, rest, &text[extent..]);
            if t.branch(site!(), rest_matches) {
                return true;
            }
            if t.branch(site!(), extent == 0) {
                return false;
            }
            extent -= 1;
        }
    }
    if t.branch(site!(), text.is_empty()) {
        return false;
    }
    let head_matches = atom_matches(t, first, text[0]);
    if t.branch(site!(), head_matches) {
        match_here(t, rest, &text[1..])
    } else {
        false
    }
}

/// Substring (unanchored) search.
fn search(t: &mut Tracer, atoms: &[Atom], text: &[u8]) -> bool {
    let mut start = 0;
    loop {
        // Anchored prefix attempt at each start offset: an unanchored
        // match succeeds if the pattern matches a prefix of some suffix.
        let hit = match_prefix(t, atoms, &text[start..]);
        if t.branch(site!(), hit) {
            return true;
        }
        if t.branch(site!(), start >= text.len()) {
            return false;
        }
        start += 1;
    }
}

/// Matches the pattern against a prefix of `text`.
fn match_prefix(t: &mut Tracer, atoms: &[Atom], text: &[u8]) -> bool {
    let Some((first, rest)) = atoms.split_first() else {
        return true;
    };
    if let Atom::Star(inner) = first {
        let mut extent = 0;
        loop {
            let can_extend = extent < text.len() && atom_matches(t, inner, text[extent]);
            if !t.branch(site!(), can_extend) {
                break;
            }
            extent += 1;
        }
        loop {
            let rest_matches = match_prefix(t, rest, &text[extent..]);
            if t.branch(site!(), rest_matches) {
                return true;
            }
            if t.branch(site!(), extent == 0) {
                return false;
            }
            extent -= 1;
        }
    }
    if t.branch(site!(), text.is_empty()) {
        return false;
    }
    let head_matches = atom_matches(t, first, text[0]);
    if t.branch(site!(), head_matches) {
        match_prefix(t, rest, &text[1..])
    } else {
        false
    }
}

/// The word-frequency phase: split, count, sort (insertion sort over the
/// top list, as scripting code would).
fn word_frequencies(t: &mut Tracer, text: &str) -> Vec<(String, u32)> {
    let mut counts: BTreeMap<String, u32> = BTreeMap::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if t.branch(site!(), ch.is_ascii_alphanumeric()) {
            cur.push(ch.to_ascii_lowercase());
        } else if t.branch(site!(), !cur.is_empty()) {
            *counts.entry(std::mem::take(&mut cur)).or_insert(0) += 1;
        }
    }
    if !cur.is_empty() {
        *counts.entry(cur).or_insert(0) += 1;
    }
    // Keep a top-32 list by insertion, like a report script.
    let mut top: Vec<(String, u32)> = Vec::new();
    for (w, c) in counts {
        let mut pos = top.len();
        while t.branch(site!(), pos > 0 && top[pos - 1].1 < c) {
            pos -= 1;
        }
        if t.branch(site!(), pos < 32) {
            top.insert(pos, (w, c));
            if t.branch(site!(), top.len() > 32) {
                top.pop();
            }
        }
    }
    top
}

/// Runs the workload at the given scale.
#[must_use]
pub fn trace(scale: Scale) -> Trace {
    let mut t = Tracer::new("perl");
    let mut rng = Rng::new(0x9E71);
    let patterns = [
        "ka[rv]o*",
        "so*l",
        "t.n",
        "qua.*m",
        "[aeiou][aeiou]",
        "pre.*ex",
        "dak*",
    ];
    for _ in 0..scale.factor() {
        let text = textgen::generate(&mut rng, 7_000);
        let mut matches = 0u32;
        for pat in &patterns {
            let atoms = compile(&mut t, pat);
            for word in text.split_whitespace() {
                if search(&mut t, &atoms, word.as_bytes()) {
                    matches += 1;
                }
            }
        }
        let top = word_frequencies(&mut t, &text);
        std::hint::black_box((matches, top));
    }
    t.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches(pattern: &str, text: &str) -> bool {
        let mut t = Tracer::new("t");
        let atoms = compile(&mut t, pattern);
        search(&mut t, &atoms, text.as_bytes())
    }

    #[test]
    fn literal_matching() {
        assert!(matches("abc", "xxabcyy"));
        assert!(!matches("abc", "ab"));
        assert!(matches("a", "a"));
        assert!(!matches("z", "abc"));
    }

    #[test]
    fn dot_matches_any_single_byte() {
        assert!(matches("a.c", "abc"));
        assert!(matches("a.c", "azc"));
        assert!(!matches("a.c", "ac"));
    }

    #[test]
    fn star_is_greedy_with_backtracking() {
        assert!(matches("ab*c", "ac"));
        assert!(matches("ab*c", "abbbbc"));
        assert!(matches("a.*c", "axyzc"));
        // Backtracking required: .* must give back the final 'c'.
        assert!(matches("a.*cd", "axxcdcd"));
        assert!(!matches("ab*c", "ad"));
    }

    #[test]
    fn character_classes() {
        assert!(matches("[abc]x", "bx"));
        assert!(!matches("[abc]x", "dx"));
        assert!(matches("x[0123456789]*y", "x2024y"));
    }

    #[test]
    fn anchored_full_match_helper() {
        let mut t = Tracer::new("t");
        let atoms = compile(&mut t, "abc");
        assert!(match_here(&mut t, &atoms, b"abc"));
        assert!(
            !match_here(&mut t, &atoms, b"abcd"),
            "match_here is fully anchored"
        );
    }

    #[test]
    fn word_frequency_ranking() {
        let mut t = Tracer::new("t");
        let top = word_frequencies(&mut t, "b a a c a b, a; c");
        assert_eq!(top[0], ("a".to_owned(), 4));
        assert_eq!(top[1], ("b".to_owned(), 2));
    }

    #[test]
    fn workload_shape() {
        let trace = trace(Scale::Smoke);
        let stats = trace.stats();
        assert!(stats.dynamic_conditional > 50_000);
        assert!(stats.static_conditional < 120);
        assert_eq!(trace, super::trace(Scale::Smoke));
    }
}
