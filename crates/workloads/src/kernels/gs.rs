//! `gs` (IBS-Ultrix Ghostscript analogue): a software rasteriser —
//! scanline polygon fill with an active-edge table, Bresenham line
//! drawing, and rectangle clipping over generated vector scenes.
//!
//! Branch profile: edge-crossing and clip tests are data-dependent on
//! scene geometry (mixed bias), span loops are strongly taken, and the
//! Bresenham error-accumulator branch is the classic ~slope-biased
//! branch.

use bpred_trace::Trace;

use crate::registry::Scale;
use crate::rng::Rng;
use crate::site;
use crate::tracer::Tracer;

const WIDTH: i32 = 160;
const HEIGHT: i32 = 120;

#[derive(Debug)]
struct Canvas {
    pixels: Vec<u8>,
}

impl Canvas {
    fn new() -> Self {
        Self {
            pixels: vec![0; (WIDTH * HEIGHT) as usize],
        }
    }

    fn plot(&mut self, t: &mut Tracer, x: i32, y: i32, colour: u8) {
        // Clip test: biased taken for mostly-on-screen scenes.
        if t.branch(site!(), (0..WIDTH).contains(&x) && (0..HEIGHT).contains(&y)) {
            self.pixels[(y * WIDTH + x) as usize] = colour;
        }
    }

    fn ink(&self) -> usize {
        self.pixels.iter().filter(|p| **p != 0).count()
    }
}

/// Bresenham line rasterisation.
fn draw_line(
    t: &mut Tracer,
    c: &mut Canvas,
    mut x0: i32,
    mut y0: i32,
    x1: i32,
    y1: i32,
    colour: u8,
) {
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        c.plot(t, x0, y0, colour);
        if t.branch(site!(), x0 == x1 && y0 == y1) {
            break;
        }
        let e2 = 2 * err;
        // The two error-threshold branches: bias follows the slope.
        if t.branch(site!(), e2 >= dy) {
            err += dy;
            x0 += sx;
        }
        if t.branch(site!(), e2 <= dx) {
            err += dx;
            y0 += sy;
        }
    }
}

/// One polygon edge for the scanline fill.
#[derive(Debug, Clone, Copy)]
struct Edge {
    y_min: i32,
    y_max: i32,
    x_at_y_min: f64,
    inv_slope: f64,
}

/// Scanline polygon fill with an active edge table.
fn fill_polygon(t: &mut Tracer, c: &mut Canvas, points: &[(i32, i32)], colour: u8) {
    if t.branch(site!(), points.len() < 3) {
        return;
    }
    let mut edges = Vec::new();
    for i in 0..points.len() {
        let (x0, y0) = points[i];
        let (x1, y1) = points[(i + 1) % points.len()];
        // Horizontal edges contribute nothing to scanline crossings.
        if t.branch(site!(), y0 == y1) {
            continue;
        }
        let (top, bottom) = if t.branch(site!(), y0 < y1) {
            ((x0, y0), (x1, y1))
        } else {
            ((x1, y1), (x0, y0))
        };
        edges.push(Edge {
            y_min: top.1,
            y_max: bottom.1,
            x_at_y_min: f64::from(top.0),
            inv_slope: f64::from(bottom.0 - top.0) / f64::from(bottom.1 - top.1),
        });
    }
    let y_lo = edges.iter().map(|e| e.y_min).min().unwrap_or(0).max(0);
    let y_hi = edges
        .iter()
        .map(|e| e.y_max)
        .max()
        .unwrap_or(0)
        .min(HEIGHT - 1);

    let mut y = y_lo;
    while t.branch(site!(), y <= y_hi) {
        // Gather crossings of this scanline. The active test is fanned
        // out by scanline band, modelling the specialised span code of a
        // real rasteriser (a wide static footprint, same dynamic count).
        let active_site = site!();
        let mut xs: Vec<f64> = Vec::new();
        for e in &edges {
            // Active test: y_min <= y < y_max (half-open avoids double
            // counting shared vertices).
            if t.branch(
                active_site.with_index((y % 24) as u32),
                e.y_min <= y && y < e.y_max,
            ) {
                xs.push(e.x_at_y_min + e.inv_slope * f64::from(y - e.y_min));
            }
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("crossings are finite")); // panic-audited: edge crossings are finite coordinate arithmetic, never NaN
                                                                            // Fill between crossing pairs.
        let mut i = 0;
        while t.branch(site!(), i + 1 < xs.len()) {
            let start = xs[i].ceil() as i32;
            let end = xs[i + 1].floor() as i32;
            let mut x = start;
            while t.branch(site!(), x <= end) {
                c.plot(t, x, y, colour);
                x += 1;
            }
            i += 2;
        }
        y += 1;
    }
}

/// Cohen–Sutherland style rectangle pre-clip decision for lines.
fn trivially_rejected(t: &mut Tracer, x0: i32, y0: i32, x1: i32, y1: i32) -> bool {
    let code = |x: i32, y: i32| -> u8 {
        let mut c = 0;
        if x < 0 {
            c |= 1;
        }
        if x >= WIDTH {
            c |= 2;
        }
        if y < 0 {
            c |= 4;
        }
        if y >= HEIGHT {
            c |= 8;
        }
        c
    };
    t.branch(site!(), code(x0, y0) & code(x1, y1) != 0)
}

fn random_polygon(rng: &mut Rng, vertices: usize) -> Vec<(i32, i32)> {
    let cx = rng.range(10, (WIDTH - 10) as u64) as i32;
    let cy = rng.range(10, (HEIGHT - 10) as u64) as i32;
    let r = rng.range(4, 40) as i32;
    (0..vertices)
        .map(|i| {
            let angle = (i as f64 / vertices as f64) * std::f64::consts::TAU;
            let jitter = rng.range(0, 8) as i32;
            (
                cx + ((r + jitter) as f64 * angle.cos()) as i32,
                cy + ((r + jitter) as f64 * angle.sin()) as i32,
            )
        })
        .collect()
}

/// Runs the workload at the given scale.
#[must_use]
pub fn trace(scale: Scale) -> Trace {
    let mut t = Tracer::new("gs");
    let mut rng = Rng::new(0x6057);
    let pages = 2 * scale.factor();
    for _ in 0..pages {
        let mut canvas = Canvas::new();
        for _ in 0..70 {
            if t.branch(site!(), rng.chance(0.55)) {
                let vertices = 3 + rng.below(6) as usize;
                let poly = random_polygon(&mut rng, vertices);
                fill_polygon(&mut t, &mut canvas, &poly, 1 + rng.below(254) as u8);
            } else {
                // Lines, deliberately sometimes off-screen to exercise
                // clipping.
                let (x0, y0) = (rng.range(0, 220) as i32 - 30, rng.range(0, 180) as i32 - 30);
                let (x1, y1) = (rng.range(0, 220) as i32 - 30, rng.range(0, 180) as i32 - 30);
                if !trivially_rejected(&mut t, x0, y0, x1, y1) {
                    draw_line(&mut t, &mut canvas, x0, y0, x1, y1, 255);
                }
            }
        }
        std::hint::black_box(canvas.ink());
    }
    t.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_line_is_contiguous() {
        let mut t = Tracer::new("t");
        let mut c = Canvas::new();
        draw_line(&mut t, &mut c, 10, 5, 20, 5, 9);
        for x in 10..=20 {
            assert_eq!(c.pixels[(5 * WIDTH + x) as usize], 9);
        }
        assert_eq!(c.ink(), 11);
    }

    #[test]
    fn diagonal_line_has_expected_extent() {
        let mut t = Tracer::new("t");
        let mut c = Canvas::new();
        draw_line(&mut t, &mut c, 0, 0, 10, 10, 7);
        assert_eq!(c.pixels[0], 7);
        assert_eq!(c.pixels[(10 * WIDTH + 10) as usize], 7);
        assert_eq!(c.ink(), 11);
    }

    #[test]
    fn offscreen_plots_are_clipped() {
        let mut t = Tracer::new("t");
        let mut c = Canvas::new();
        draw_line(&mut t, &mut c, -5, -5, 3, 3, 7);
        assert!(c.ink() <= 4);
    }

    #[test]
    fn rectangle_fill_covers_interior() {
        let mut t = Tracer::new("t");
        let mut c = Canvas::new();
        fill_polygon(&mut t, &mut c, &[(10, 10), (30, 10), (30, 20), (10, 20)], 5);
        // Interior point.
        assert_eq!(c.pixels[(15 * WIDTH + 20) as usize], 5);
        // Outside point.
        assert_eq!(c.pixels[(15 * WIDTH + 40) as usize], 0);
        // Roughly 21x10 pixels.
        let ink = c.ink();
        assert!((180..=240).contains(&ink), "got {ink}");
    }

    #[test]
    fn triangle_fill_respects_edges() {
        let mut t = Tracer::new("t");
        let mut c = Canvas::new();
        fill_polygon(&mut t, &mut c, &[(10, 10), (50, 10), (10, 50)], 3);
        assert_eq!(
            c.pixels[(12 * WIDTH + 12) as usize],
            3,
            "near the right angle"
        );
        assert_eq!(
            c.pixels[(45 * WIDTH + 45) as usize],
            0,
            "beyond the hypotenuse"
        );
    }

    #[test]
    fn degenerate_polygon_is_ignored() {
        let mut t = Tracer::new("t");
        let mut c = Canvas::new();
        fill_polygon(&mut t, &mut c, &[(1, 1), (2, 2)], 9);
        assert_eq!(c.ink(), 0);
    }

    #[test]
    fn trivial_rejection_matches_geometry() {
        let mut t = Tracer::new("t");
        assert!(trivially_rejected(&mut t, -10, 5, -2, 8), "fully left");
        assert!(
            !trivially_rejected(&mut t, -10, 5, 10, 8),
            "crosses the boundary"
        );
        assert!(!trivially_rejected(&mut t, 5, 5, 20, 20), "fully inside");
    }

    #[test]
    fn workload_shape() {
        let trace = trace(Scale::Smoke);
        assert!(trace.stats().dynamic_conditional > 30_000);
        assert_eq!(trace, super::trace(Scale::Smoke));
    }
}
