//! Deterministic natural-text generation shared by the text-processing
//! workloads (compress, perl, groff, nroff).
//!
//! Produces word/sentence-structured ASCII with Zipf-distributed word
//! frequencies — the property that gives LZW its dictionary hits and the
//! formatters their realistic line-fill branch behaviour.

use crate::rng::Rng;

/// A deterministic vocabulary of `n` pseudo-words.
#[must_use]
pub fn vocabulary(rng: &mut Rng, n: usize) -> Vec<String> {
    const SYLLABLES: [&str; 16] = [
        "ka", "ro", "mi", "ten", "sol", "ar", "ve", "lu", "qua", "bis", "ner", "tol", "ex", "ium",
        "pre", "dak",
    ];
    (0..n)
        .map(|_| {
            let syllables = 1 + rng.below(3) as usize;
            let mut w = String::new();
            for _ in 0..=syllables {
                let syllable = *rng.pick::<&str>(&SYLLABLES);
                w.push_str(syllable);
            }
            w
        })
        .collect()
}

/// Generates roughly `target_bytes` of sentence-structured text drawn
/// from a Zipf-weighted vocabulary.
#[must_use]
pub fn generate(rng: &mut Rng, target_bytes: usize) -> String {
    let vocab = vocabulary(rng, 600);
    let mut out = String::with_capacity(target_bytes + 64);
    while out.len() < target_bytes {
        // One sentence: 4..14 words, occasional comma, final period.
        let words = 4 + rng.below(11) as usize;
        for w in 0..words {
            let word = &vocab[rng.zipf(vocab.len())];
            if w == 0 {
                // Capitalise the first letter.
                let mut chars = word.chars();
                if let Some(first) = chars.next() {
                    out.push(first.to_ascii_uppercase());
                    out.push_str(chars.as_str());
                }
            } else {
                out.push_str(word);
            }
            if w + 1 < words {
                if rng.chance(0.08) {
                    out.push(',');
                }
                out.push(' ');
            }
        }
        out.push_str(". ");
        if rng.chance(0.15) {
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&mut Rng::new(11), 2000);
        let b = generate(&mut Rng::new(11), 2000);
        assert_eq!(a, b);
    }

    #[test]
    fn output_reaches_target_and_is_ascii() {
        let t = generate(&mut Rng::new(1), 5000);
        assert!(t.len() >= 5000);
        assert!(t.is_ascii());
    }

    #[test]
    fn text_has_sentence_structure() {
        let t = generate(&mut Rng::new(2), 5000);
        assert!(t.contains(". "));
        assert!(t.contains(' '));
        assert!(t.chars().any(|c| c.is_ascii_uppercase()));
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let t = generate(&mut Rng::new(3), 20_000);
        let mut counts = std::collections::HashMap::new();
        for w in t.split_whitespace() {
            let w = w.trim_matches(|c: char| !c.is_ascii_alphanumeric());
            if !w.is_empty() {
                *counts.entry(w.to_ascii_lowercase()).or_insert(0u32) += 1;
            }
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Zipf: the top word should dwarf the median word.
        let median = freqs[freqs.len() / 2];
        assert!(freqs[0] > median * 5, "top {} median {median}", freqs[0]);
    }
}
