//! The benchmark kernel implementations, one module per benchmark the
//! paper traces (Table 2). See each module's docs for the algorithmic
//! core it models and the branch structure it contributes.

pub mod compress;
pub mod gcc;
pub mod go;
pub mod groff;
pub mod gs;
pub mod mpeg;
pub mod nroff;
pub mod perl;
pub mod sdet;
pub mod textgen;
pub mod verilog;
pub mod vortex;
pub mod xlisp;
