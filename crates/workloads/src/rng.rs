//! A small, self-contained deterministic RNG (xoshiro256** seeded via
//! SplitMix64).
//!
//! Hand-rolled instead of depending on `rand` so that workload traces
//! are bit-stable forever: a `rand` version bump must never silently
//! change every measured misprediction rate in EXPERIMENTS.md.

/// Deterministic pseudo-random generator for workload construction.
///
/// ```
/// use bpred_workloads::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift bounded sampling (Lemire); the slight modulo
        // bias of the simple fallback is irrelevant here, but this is
        // just as cheap.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A skewed (Zipf-ish, exponent ~1) index in `0..n`, favouring small
    /// indices the way symbol/identifier frequencies do in real inputs.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn zipf(&mut self, n: usize) -> usize {
        assert!(n > 0, "zipf over an empty domain");
        // Inverse-CDF of 1/x on [1, n+1): floor(exp(u * ln(n+1))) - 1.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = ((n as f64 + 1.0).ln() * u).exp();
        ((x as usize).saturating_sub(1)).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        // All residues appear.
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn range_is_inclusive_exclusive() {
        let mut r = Rng::new(4);
        for _ in 0..1000 {
            let v = r.range(10, 13);
            assert!((10..13).contains(&v));
        }
    }

    #[test]
    fn chance_extremes_and_middle() {
        let mut r = Rng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(6);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn zipf_favours_small_indices() {
        let mut r = Rng::new(8);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.zipf(10)] += 1;
        }
        assert!(counts[0] > counts[5], "{counts:?}");
        assert!(counts[0] > 2 * counts[9], "{counts:?}");
        assert!(counts.iter().all(|c| *c > 0), "{counts:?}");
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut r = Rng::new(9);
        let items = ['a', 'b', 'c'];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let c = *r.pick(&items);
            seen[(c as u8 - b'a') as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        let _ = Rng::new(0).below(0);
    }
}
