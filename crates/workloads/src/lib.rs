//! Deterministic benchmark workloads standing in for the paper's
//! IBS-Ultrix and SPEC CINT95 traces.
//!
//! The original traces came from hardware monitoring (IBS) and ATOM
//! instrumentation (SPEC) of real benchmark runs — inputs this
//! reproduction cannot obtain. Each module here instead implements the
//! *algorithmic core* of the corresponding benchmark in Rust and routes
//! every interesting conditional through a [`Tracer`], producing a branch
//! stream with the same statistical structure: compress is a real LZW
//! codec, go plays Monte-Carlo games on a real board, xlisp is a real
//! Lisp interpreter, verilog a real event-driven gate simulator, and so
//! on. All workloads are seeded and fully deterministic.
//!
//! Branch site addresses are stable compile-time hashes of the source
//! location (see [`site!`]), optionally fanned out with
//! [`Site::with_index`] to model code expanded from large dispatch
//! tables — that is how the gcc-like workloads reach thousands of static
//! branch sites, matching the paper's Table 2 spread.
//!
//! ```
//! use bpred_workloads::{Scale, Workload};
//!
//! let trace = Workload::by_name("compress").unwrap().trace(Scale::Smoke);
//! assert!(trace.stats().dynamic_conditional > 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod registry;
pub mod rng;
pub mod tracer;

mod kernels;

pub use registry::{sim_kernel_observed, sim_kernel_program, Scale, Suite, Workload};
pub use rng::Rng;
pub use tracer::{Site, Tracer};

/// Every source file that can change what a generated trace contains:
/// the kernels themselves plus the tracer, RNG, registry (scale
/// factors), and this file. Baked in at compile time so the digest
/// tracks the code that actually ran, not whatever is on disk at run
/// time.
const GENERATOR_SOURCES: &[&str] = &[
    include_str!("lib.rs"),
    include_str!("registry.rs"),
    include_str!("rng.rs"),
    include_str!("tracer.rs"),
    include_str!("kernels/mod.rs"),
    include_str!("kernels/compress.rs"),
    include_str!("kernels/gcc.rs"),
    include_str!("kernels/go.rs"),
    include_str!("kernels/groff.rs"),
    include_str!("kernels/gs.rs"),
    include_str!("kernels/mpeg.rs"),
    include_str!("kernels/nroff.rs"),
    include_str!("kernels/perl.rs"),
    include_str!("kernels/sdet.rs"),
    include_str!("kernels/textgen.rs"),
    include_str!("kernels/verilog.rs"),
    include_str!("kernels/vortex.rs"),
    include_str!("kernels/xlisp.rs"),
];

/// FNV-1a-64 digest of every workload-generator source file.
///
/// Trace caches key their files by this digest, so editing any kernel
/// (or the tracer, RNG, or scale table) automatically invalidates
/// every cached trace — no manually bumped version to forget.
#[must_use]
pub fn source_digest() -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    for src in GENERATOR_SOURCES {
        for b in src.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // Separator: moving bytes across file boundaries must not
        // produce the same digest.
        h ^= 0xFF;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod source_digest_tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_nonzero() {
        assert_eq!(source_digest(), source_digest());
        assert_ne!(source_digest(), 0);
    }

    #[test]
    fn every_kernel_module_is_digested() {
        // One include per kernel file plus the four support files; a
        // new kernel must be added to GENERATOR_SOURCES or cached
        // traces would survive its edits.
        let this = include_str!("lib.rs");
        let kernel_count = this.matches("include_str!(\"kernels/").count();
        assert_eq!(
            kernel_count,
            1 + 13,
            "kernels/mod.rs plus one include per kernel module"
        );
    }
}
