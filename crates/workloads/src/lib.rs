//! Deterministic benchmark workloads standing in for the paper's
//! IBS-Ultrix and SPEC CINT95 traces.
//!
//! The original traces came from hardware monitoring (IBS) and ATOM
//! instrumentation (SPEC) of real benchmark runs — inputs this
//! reproduction cannot obtain. Each module here instead implements the
//! *algorithmic core* of the corresponding benchmark in Rust and routes
//! every interesting conditional through a [`Tracer`], producing a branch
//! stream with the same statistical structure: compress is a real LZW
//! codec, go plays Monte-Carlo games on a real board, xlisp is a real
//! Lisp interpreter, verilog a real event-driven gate simulator, and so
//! on. All workloads are seeded and fully deterministic.
//!
//! Branch site addresses are stable compile-time hashes of the source
//! location (see [`site!`]), optionally fanned out with
//! [`Site::with_index`] to model code expanded from large dispatch
//! tables — that is how the gcc-like workloads reach thousands of static
//! branch sites, matching the paper's Table 2 spread.
//!
//! ```
//! use bpred_workloads::{Scale, Workload};
//!
//! let trace = Workload::by_name("compress").unwrap().trace(Scale::Smoke);
//! assert!(trace.stats().dynamic_conditional > 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod registry;
pub mod rng;
pub mod tracer;

mod kernels;

pub use registry::{Scale, Suite, Workload};
pub use rng::Rng;
pub use tracer::{Site, Tracer};
