//! The software instrumentation harness: the reproduction's stand-in for
//! ATOM (\[EustaceSrivastava95\]).
//!
//! A workload routes each modelled conditional through
//! [`Tracer::branch`], identified by a [`Site`] whose program counter is
//! a stable compile-time hash of the source location. The recorded
//! stream is exactly what a binary-instrumented run would produce: one
//! `(pc, outcome)` event per dynamic conditional branch, in program
//! order.

use bpred_trace::{BranchKind, BranchRecord, Trace};

/// Base byte address of the synthetic text segment sites are hashed
/// into (disjoint from `bpred_sim`'s text base).
pub const SITE_BASE: u64 = 0x0100_0000;

/// Number of addressable site slots (word-aligned) in the segment.
pub const SITE_SLOTS: u64 = 1 << 22;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

const fn fnv_str(mut hash: u64, s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
        i += 1;
    }
    hash
}

const fn fnv_u64(mut hash: u64, v: u64) -> u64 {
    let mut i = 0;
    while i < 8 {
        hash ^= (v >> (8 * i)) & 0xFF;
        hash = hash.wrapping_mul(FNV_PRIME);
        i += 1;
    }
    hash
}

/// A static branch site: a stable synthetic program counter and taken
/// target.
///
/// Create sites with the [`site!`](crate::site!) macro, which hashes the
/// source location at compile time; fan one site out into a family of
/// sites (modelling macro-expanded or table-generated code) with
/// [`with_index`](Site::with_index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Site {
    pc: u64,
    target: u64,
}

impl Site {
    /// Derives a site from a source location. Used by [`crate::site!`];
    /// callable directly (`const`) when a site must be named explicitly.
    #[must_use]
    pub const fn from_location(module: &str, file: &str, line: u32, column: u32) -> Self {
        let mut h = FNV_OFFSET;
        h = fnv_str(h, module);
        h = fnv_str(h, file);
        h = fnv_u64(h, line as u64);
        h = fnv_u64(h, column as u64);
        Self::from_hash(h)
    }

    const fn from_hash(h: u64) -> Self {
        let slot = h % SITE_SLOTS;
        let pc = SITE_BASE + slot * 4;
        // Derive a plausible taken target: a displacement of 1..=256
        // instructions, backwards for roughly a third of sites (loops).
        let disp_words = 1 + ((h >> 23) % 256);
        let backward = (h >> 61).is_multiple_of(3);
        let target = if backward && disp_words * 4 <= pc {
            pc - disp_words * 4
        } else {
            pc + disp_words * 4
        };
        Self { pc, target }
    }

    /// The `k`-th member of a site family: models a block of similar
    /// branches produced by code expansion (large `match` arms, inlined
    /// bodies, generated parsers), which is how real programs like gcc
    /// reach thousands of static branch sites.
    #[must_use]
    pub const fn with_index(self, k: u32) -> Self {
        Self::from_hash(fnv_u64(self.pc ^ FNV_OFFSET, k as u64))
    }

    /// The synthetic byte PC of this site.
    #[must_use]
    pub const fn pc(self) -> u64 {
        self.pc
    }

    /// The synthetic taken-target byte address.
    #[must_use]
    pub const fn target(self) -> u64 {
        self.target
    }
}

/// Derives a [`Site`] from the macro invocation's source location, at
/// compile time.
///
/// ```
/// use bpred_workloads::{site, Tracer};
///
/// let mut t = Tracer::new("doc");
/// let mut count = 0;
/// for i in 0..10 {
///     if t.branch(site!(), i % 3 == 0) {
///         count += 1;
///     }
/// }
/// assert_eq!(count, 4);
/// assert_eq!(t.len(), 10);
/// ```
#[macro_export]
macro_rules! site {
    () => {{
        const SITE: $crate::tracer::Site =
            $crate::tracer::Site::from_location(module_path!(), file!(), line!(), column!());
        SITE
    }};
}

/// Records the branch events a workload produces.
#[derive(Debug, Clone)]
pub struct Tracer {
    trace: Trace,
}

impl Tracer {
    /// Creates a tracer whose trace carries the workload name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            trace: Trace::new(name),
        }
    }

    /// Records a conditional branch outcome and returns it, so the call
    /// can sit directly inside an `if` or `while` condition.
    #[inline]
    pub fn branch(&mut self, site: Site, taken: bool) -> bool {
        self.trace.push(BranchRecord {
            pc: site.pc,
            target: site.target,
            taken,
            kind: BranchKind::Conditional,
        });
        taken
    }

    /// Records a call event (not direction-predicted; kept for trace
    /// completeness).
    pub fn call(&mut self, site: Site) {
        self.trace.push(BranchRecord {
            pc: site.pc,
            target: site.target,
            taken: true,
            kind: BranchKind::Call,
        });
    }

    /// Records a return event.
    pub fn ret(&mut self, site: Site) {
        self.trace.push(BranchRecord {
            pc: site.pc,
            target: site.target,
            taken: true,
            kind: BranchKind::Return,
        });
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Finishes tracing and hands over the trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_are_stable_per_location_and_distinct_across_locations() {
        let a1 = site!();
        let b = site!();
        // Same line, created twice through a loop: identical.
        let mut pcs = Vec::new();
        for _ in 0..2 {
            pcs.push(site!().pc());
        }
        assert_eq!(pcs[0], pcs[1]);
        assert_ne!(a1.pc(), b.pc());
    }

    #[test]
    fn sites_are_word_aligned_in_segment() {
        for k in 0..100 {
            let s = site!().with_index(k);
            assert_eq!(s.pc() % 4, 0);
            assert!(s.pc() >= SITE_BASE);
            assert!(s.pc() < SITE_BASE + SITE_SLOTS * 4);
        }
    }

    #[test]
    fn with_index_fans_out() {
        let base = site!();
        let family: Vec<u64> = (0..50).map(|k| base.with_index(k).pc()).collect();
        let mut dedup = family.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert!(
            dedup.len() >= 49,
            "index family should be essentially collision-free"
        );
        // And it is reproducible.
        assert_eq!(base.with_index(7), base.with_index(7));
    }

    #[test]
    fn some_sites_are_backward_branches() {
        let backward = (0..300)
            .filter(|&k| {
                let s = site!().with_index(k);
                s.target() < s.pc()
            })
            .count();
        assert!(
            backward > 50,
            "expected a loop-like share of backward sites, got {backward}"
        );
        assert!(
            backward < 250,
            "not everything should be backward, got {backward}"
        );
    }

    #[test]
    fn branch_returns_its_condition() {
        let mut t = Tracer::new("t");
        assert!(t.branch(site!(), true));
        assert!(!t.branch(site!(), false));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn call_and_ret_record_kinds() {
        let mut t = Tracer::new("t");
        t.call(site!());
        t.ret(site!());
        let trace = t.into_trace();
        assert_eq!(trace.records()[0].kind, BranchKind::Call);
        assert_eq!(trace.records()[1].kind, BranchKind::Return);
        assert_eq!(trace.conditional().count(), 0);
    }

    #[test]
    fn tracer_preserves_program_order() {
        let mut t = Tracer::new("order");
        let s = site!();
        for i in 0..10 {
            t.branch(s, i % 2 == 0);
        }
        let trace = t.into_trace();
        let outcomes: Vec<bool> = trace.iter().map(|r| r.taken).collect();
        assert_eq!(
            outcomes,
            [true, false, true, false, true, false, true, false, true, false]
        );
    }
}
