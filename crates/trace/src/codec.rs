//! Trace persistence: a compact little-endian binary format and a
//! line-oriented text format.
//!
//! Binary layout (version 1):
//!
//! ```text
//! magic   "BPTR"            4 bytes
//! version u8                = 1
//! name    u32 len + UTF-8 bytes
//! count   u64
//! records count * { pc: u64, target: u64, flags: u8 }
//!           flags bit 0 = taken, bits 1..4 = kind tag
//! ```
//!
//! Text format: a `# trace: <name>` header line, then one record per
//! line: `<pc-hex> <target-hex> <T|N> <kind>`.

use std::fmt;
use std::io::{self, BufRead, Read, Write};

use crate::record::{BranchKind, BranchRecord};
use crate::trace::Trace;

const MAGIC: &[u8; 4] = b"BPTR";
const VERSION: u8 = 1;

/// Error produced by the trace codecs.
#[derive(Debug)]
pub enum CodecError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The input is not a valid trace in the expected format.
    Malformed(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "trace i/o error: {e}"),
            CodecError::Malformed(m) => write!(f, "malformed trace: {m}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            CodecError::Malformed(_) => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> CodecError {
    CodecError::Malformed(msg.into())
}

/// Writes a trace in the binary format.
///
/// A `&mut` reference can be passed for `writer`.
///
/// # Errors
///
/// Returns [`CodecError::Io`] on write failure.
pub fn write_binary<W: Write>(trace: &Trace, mut writer: W) -> Result<(), CodecError> {
    writer.write_all(MAGIC)?;
    writer.write_all(&[VERSION])?;
    let name = trace.name().as_bytes();
    writer.write_all(&(name.len() as u32).to_le_bytes())?;
    writer.write_all(name)?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    for r in trace.iter() {
        writer.write_all(&r.pc.to_le_bytes())?;
        writer.write_all(&r.target.to_le_bytes())?;
        let flags = u8::from(r.taken) | (r.kind.tag() << 1);
        writer.write_all(&[flags])?;
    }
    Ok(())
}

/// Reads a trace in the binary format.
///
/// A `&mut` reference can be passed for `reader`.
///
/// # Errors
///
/// Returns [`CodecError::Io`] on read failure and
/// [`CodecError::Malformed`] when the bytes are not a valid trace.
pub fn read_binary<R: Read>(mut reader: R) -> Result<Trace, CodecError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(malformed("bad magic"));
    }
    let mut version = [0u8; 1];
    reader.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(malformed(format!("unsupported version {}", version[0])));
    }
    let mut len4 = [0u8; 4];
    reader.read_exact(&mut len4)?;
    let name_len = u32::from_le_bytes(len4) as usize;
    if name_len > 4096 {
        return Err(malformed("unreasonable name length"));
    }
    let mut name = vec![0u8; name_len];
    reader.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| malformed("name is not UTF-8"))?;
    let mut len8 = [0u8; 8];
    reader.read_exact(&mut len8)?;
    let count = u64::from_le_bytes(len8);
    let mut trace = Trace::new(name);
    let mut rec = [0u8; 17];
    for i in 0..count {
        reader
            .read_exact(&mut rec)
            .map_err(|e| malformed(format!("truncated at record {i}: {e}")))?;
        let pc = u64::from_le_bytes(rec[0..8].try_into().expect("slice is 8 bytes")); // panic-audited: try_into of a fixed 8-byte subslice cannot fail
        let target = u64::from_le_bytes(rec[8..16].try_into().expect("slice is 8 bytes")); // panic-audited: try_into of a fixed 8-byte subslice cannot fail
        let flags = rec[16];
        let taken = flags & 1 == 1;
        let kind = BranchKind::from_tag(flags >> 1)
            .ok_or_else(|| malformed(format!("bad kind tag {}", flags >> 1)))?;
        trace.push(BranchRecord {
            pc,
            target,
            taken,
            kind,
        });
    }
    Ok(trace)
}

/// Writes a trace in the human-readable text format.
///
/// A `&mut` reference can be passed for `writer`.
///
/// # Errors
///
/// Returns [`CodecError::Io`] on write failure.
pub fn write_text<W: Write>(trace: &Trace, mut writer: W) -> Result<(), CodecError> {
    writeln!(writer, "# trace: {}", trace.name())?;
    for r in trace.iter() {
        writeln!(
            writer,
            "{:x} {:x} {} {}",
            r.pc,
            r.target,
            if r.taken { "T" } else { "N" },
            r.kind
        )?;
    }
    Ok(())
}

/// Reads a trace in the text format.
///
/// A `&mut` reference can be passed for `reader`.
///
/// # Errors
///
/// Returns [`CodecError::Io`] on read failure and
/// [`CodecError::Malformed`] on syntax errors.
pub fn read_text<R: BufRead>(reader: R) -> Result<Trace, CodecError> {
    let mut trace = Trace::new("");
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(name) = rest.trim().strip_prefix("trace:") {
                trace.set_name(name.trim());
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |what: &str| malformed(format!("line {}: {what}", lineno + 1));
        let pc = u64::from_str_radix(parts.next().ok_or_else(|| err("missing pc"))?, 16)
            .map_err(|_| err("bad pc"))?;
        let target = u64::from_str_radix(parts.next().ok_or_else(|| err("missing target"))?, 16)
            .map_err(|_| err("bad target"))?;
        let taken = match parts.next().ok_or_else(|| err("missing direction"))? {
            "T" => true,
            "N" => false,
            other => return Err(err(&format!("bad direction `{other}`"))),
        };
        let kind = match parts.next().ok_or_else(|| err("missing kind"))? {
            "cond" => BranchKind::Conditional,
            "jump" => BranchKind::Unconditional,
            "call" => BranchKind::Call,
            "ret" => BranchKind::Return,
            "ijmp" => BranchKind::Indirect,
            other => return Err(err(&format!("bad kind `{other}`"))),
        };
        trace.push(BranchRecord {
            pc,
            target,
            taken,
            kind,
        });
    }
    Ok(trace)
}

/// A streaming reader over a binary trace: yields records one at a
/// time without materialising the whole trace in memory — the way to
/// consume `--scale full` traces from disk.
///
/// Construct with [`stream_binary`]; iterate to get
/// `Result<BranchRecord, CodecError>` items. The trace name is
/// available from [`BinaryStream::name`] after construction.
#[derive(Debug)]
pub struct BinaryStream<R> {
    reader: R,
    name: String,
    remaining: u64,
    index: u64,
    failed: bool,
}

impl<R: Read> BinaryStream<R> {
    /// The trace's provenance name from the header.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records left to read.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

/// Opens a binary trace for streaming: reads and validates the header,
/// then returns an iterator over the records.
///
/// A `&mut` reference can be passed for `reader`.
///
/// # Errors
///
/// Returns [`CodecError::Io`] on read failure and
/// [`CodecError::Malformed`] if the header is not a valid trace
/// header.
pub fn stream_binary<R: Read>(mut reader: R) -> Result<BinaryStream<R>, CodecError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(malformed("bad magic"));
    }
    let mut version = [0u8; 1];
    reader.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(malformed(format!("unsupported version {}", version[0])));
    }
    let mut len4 = [0u8; 4];
    reader.read_exact(&mut len4)?;
    let name_len = u32::from_le_bytes(len4) as usize;
    if name_len > 4096 {
        return Err(malformed("unreasonable name length"));
    }
    let mut name = vec![0u8; name_len];
    reader.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| malformed("name is not UTF-8"))?;
    let mut len8 = [0u8; 8];
    reader.read_exact(&mut len8)?;
    let remaining = u64::from_le_bytes(len8);
    Ok(BinaryStream {
        reader,
        name,
        remaining,
        index: 0,
        failed: false,
    })
}

impl<R: Read> Iterator for BinaryStream<R> {
    type Item = Result<BranchRecord, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.remaining == 0 {
            return None;
        }
        let mut rec = [0u8; 17];
        if let Err(e) = self.reader.read_exact(&mut rec) {
            self.failed = true;
            return Some(Err(malformed(format!(
                "truncated at record {}: {e}",
                self.index
            ))));
        }
        self.remaining -= 1;
        self.index += 1;
        let pc = u64::from_le_bytes(rec[0..8].try_into().expect("slice is 8 bytes")); // panic-audited: try_into of a fixed 8-byte subslice cannot fail
        let target = u64::from_le_bytes(rec[8..16].try_into().expect("slice is 8 bytes")); // panic-audited: try_into of a fixed 8-byte subslice cannot fail
        let flags = rec[16];
        let taken = flags & 1 == 1;
        match BranchKind::from_tag(flags >> 1) {
            Some(kind) => Some(Ok(BranchRecord {
                pc,
                target,
                taken,
                kind,
            })),
            None => {
                self.failed = true;
                Some(Err(malformed(format!("bad kind tag {}", flags >> 1))))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.failed {
            (0, Some(0))
        } else {
            let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
            (n, Some(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Trace {
        let mut t = Trace::new("roundtrip");
        t.push(BranchRecord::conditional(0x1000, 0x1040, true));
        t.push(BranchRecord::conditional(0x1008, 0x0FF0, false));
        t.push(BranchRecord::unconditional(0x1010, 0x2000));
        t.push(BranchRecord {
            pc: 0x2000,
            target: 0x3000,
            taken: true,
            kind: BranchKind::Call,
        });
        t.push(BranchRecord {
            pc: 0x3010,
            target: 0x2004,
            taken: true,
            kind: BranchKind::Return,
        });
        t.push(BranchRecord {
            pc: 0x2008,
            target: 0x4000,
            taken: true,
            kind: BranchKind::Indirect,
        });
        t
    }

    #[test]
    fn streaming_matches_bulk_read() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let stream = stream_binary(Cursor::new(&buf)).unwrap();
        assert_eq!(stream.name(), "roundtrip");
        assert_eq!(stream.remaining(), t.len() as u64);
        let records: Vec<BranchRecord> = stream.map(|r| r.expect("valid record")).collect();
        assert_eq!(records, t.records());
    }

    #[test]
    fn streaming_size_hint_is_exact() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let mut stream = stream_binary(Cursor::new(&buf)).unwrap();
        assert_eq!(stream.size_hint(), (6, Some(6)));
        stream.next();
        assert_eq!(stream.size_hint(), (5, Some(5)));
    }

    #[test]
    fn streaming_reports_truncation_once_then_stops() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let stream = stream_binary(Cursor::new(&buf)).unwrap();
        let results: Vec<Result<BranchRecord, CodecError>> = stream.collect();
        assert_eq!(results.len(), 6, "5 good records + 1 error");
        assert!(results[..5].iter().all(Result::is_ok));
        assert!(results[5].as_ref().is_err());
    }

    #[test]
    fn streaming_rejects_bad_header() {
        assert!(stream_binary(Cursor::new(b"NOPE\x01")).is_err());
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(Cursor::new(&buf)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        let back = read_text(Cursor::new(&buf)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(Cursor::new(b"NOPE\x01")).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn binary_rejects_bad_version() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf[4] = 99;
        let err = read_binary(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));
    }

    #[test]
    fn binary_rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_binary(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn binary_rejects_bad_kind_tag() {
        let mut buf = Vec::new();
        let mut t = Trace::new("x");
        t.push(BranchRecord::conditional(0, 0, false));
        write_binary(&t, &mut buf).unwrap();
        let flags_pos = buf.len() - 1;
        buf[flags_pos] = 5 << 1;
        let err = read_binary(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("bad kind tag"));
    }

    #[test]
    fn text_tolerates_blank_lines_and_comments() {
        let input = "# trace: demo\n\n# a comment\n1000 1040 T cond\n";
        let t = read_text(Cursor::new(input)).unwrap();
        assert_eq!(t.name(), "demo");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn text_reports_line_numbers_on_errors() {
        let input = "# trace: demo\n1000 1040 X cond\n";
        let err = read_text(Cursor::new(input)).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new("empty");
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        assert_eq!(read_binary(Cursor::new(&buf)).unwrap(), t);
        let mut txt = Vec::new();
        write_text(&t, &mut txt).unwrap();
        assert_eq!(read_text(Cursor::new(&txt)).unwrap(), t);
    }
}
