//! A single dynamic branch event.

use std::fmt;

/// The control-flow class of a branch instruction.
///
/// Predictors in this reproduction train only on
/// [`Conditional`](BranchKind::Conditional) branches (the paper's Table 2
/// counts conditional branches only); the other kinds are carried so that
/// traces remain usable for BTB/fetch studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchKind {
    /// A direction-predicted conditional branch.
    Conditional,
    /// An unconditional direct jump.
    Unconditional,
    /// A direct call.
    Call,
    /// A return.
    Return,
    /// An indirect jump through a register.
    Indirect,
}

impl BranchKind {
    /// All kinds, in codec tag order.
    pub const ALL: [BranchKind; 5] = [
        BranchKind::Conditional,
        BranchKind::Unconditional,
        BranchKind::Call,
        BranchKind::Return,
        BranchKind::Indirect,
    ];

    /// Stable one-byte codec tag.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            BranchKind::Conditional => 0,
            BranchKind::Unconditional => 1,
            BranchKind::Call => 2,
            BranchKind::Return => 3,
            BranchKind::Indirect => 4,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.get(tag as usize).copied()
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Conditional => "cond",
            BranchKind::Unconditional => "jump",
            BranchKind::Call => "call",
            BranchKind::Return => "ret",
            BranchKind::Indirect => "ijmp",
        };
        f.write_str(s)
    }
}

/// One dynamic branch: the instruction's address, its (byte) target, the
/// resolved direction, and its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    /// Byte address of the branch instruction.
    pub pc: u64,
    /// Byte address of the taken-path target.
    pub target: u64,
    /// Resolved direction (`true` = taken). Always `true` for
    /// unconditional kinds.
    pub taken: bool,
    /// Control-flow class.
    pub kind: BranchKind,
}

impl BranchRecord {
    /// A conditional branch event.
    #[must_use]
    pub fn conditional(pc: u64, target: u64, taken: bool) -> Self {
        Self {
            pc,
            target,
            taken,
            kind: BranchKind::Conditional,
        }
    }

    /// An unconditional jump event (always taken).
    #[must_use]
    pub fn unconditional(pc: u64, target: u64) -> Self {
        Self {
            pc,
            target,
            taken: true,
            kind: BranchKind::Unconditional,
        }
    }

    /// Whether this branch jumps backwards (target below the branch),
    /// the heuristic behind BTFNT static prediction and loop detection.
    #[must_use]
    pub fn is_backward(&self) -> bool {
        self.target < self.pc
    }
}

impl fmt::Display for BranchRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#010x} -> {:#010x} {} {}",
            self.pc,
            self.target,
            if self.taken { "T" } else { "N" },
            self.kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_roundtrip() {
        for kind in BranchKind::ALL {
            assert_eq!(BranchKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(BranchKind::from_tag(5), None);
    }

    #[test]
    fn constructors_set_kind_and_direction() {
        let c = BranchRecord::conditional(0x10, 0x20, false);
        assert_eq!(c.kind, BranchKind::Conditional);
        assert!(!c.taken);
        let u = BranchRecord::unconditional(0x10, 0x8);
        assert_eq!(u.kind, BranchKind::Unconditional);
        assert!(u.taken);
    }

    #[test]
    fn backward_detection() {
        assert!(BranchRecord::conditional(0x100, 0x80, true).is_backward());
        assert!(!BranchRecord::conditional(0x100, 0x180, true).is_backward());
        assert!(!BranchRecord::conditional(0x100, 0x100, true).is_backward());
    }

    #[test]
    fn display_is_compact() {
        let r = BranchRecord::conditional(0x1000, 0x1040, true);
        assert_eq!(r.to_string(), "0x00001000 -> 0x00001040 T cond");
    }
}
