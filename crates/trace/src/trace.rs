//! The in-memory trace container.

use crate::record::{BranchKind, BranchRecord};
use crate::stats::TraceStats;

/// A named, ordered sequence of dynamic branch events.
///
/// ```
/// use bpred_trace::{BranchRecord, Trace};
///
/// let trace: Trace = std::iter::repeat_with(|| BranchRecord::conditional(0x40, 0x80, true))
///     .take(3)
///     .collect();
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.conditional().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    name: String,
    records: Vec<BranchRecord>,
}

impl Trace {
    /// Creates an empty trace with a provenance name (workload name).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Creates a trace from existing records.
    #[must_use]
    pub fn from_records(name: impl Into<String>, records: Vec<BranchRecord>) -> Self {
        Self {
            name: name.into(),
            records,
        }
    }

    /// The workload name this trace came from.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the trace (e.g. after filtering).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of dynamic branch events of all kinds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends one event.
    pub fn push(&mut self, record: BranchRecord) {
        self.records.push(record);
    }

    /// All events in program order.
    #[must_use]
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Iterates over all events.
    pub fn iter(&self) -> std::slice::Iter<'_, BranchRecord> {
        self.records.iter()
    }

    /// Iterates over the conditional branches only — the stream
    /// predictors train on.
    pub fn conditional(&self) -> impl Iterator<Item = &BranchRecord> + '_ {
        self.records
            .iter()
            .filter(|r| r.kind == BranchKind::Conditional)
    }

    /// A new trace holding only the conditional branches.
    #[must_use]
    pub fn conditional_only(&self) -> Trace {
        Trace {
            name: self.name.clone(),
            records: self.conditional().copied().collect(),
        }
    }

    /// A new trace truncated to at most `n` events (prefix). Useful for
    /// quick-look runs of the big workloads.
    #[must_use]
    pub fn truncated(&self, n: usize) -> Trace {
        Trace {
            name: self.name.clone(),
            records: self.records.iter().take(n).copied().collect(),
        }
    }

    /// Computes summary statistics (Table 2 columns and more).
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        TraceStats::measure(self)
    }

    /// Content digest of the record stream (see
    /// [`TraceDigest`](crate::TraceDigest)): every record's address,
    /// target, direction, and kind, in order. The provenance name is
    /// deliberately excluded — two traces with identical records are
    /// the same measurement input.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut d = crate::digest::TraceDigest::new();
        for r in &self.records {
            d.update(r);
        }
        d.finish()
    }
}

impl FromIterator<BranchRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = BranchRecord>>(iter: I) -> Self {
        Trace {
            name: String::new(),
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<BranchRecord> for Trace {
    fn extend<I: IntoIterator<Item = BranchRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a BranchRecord;
    type IntoIter = std::slice::Iter<'a, BranchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for Trace {
    type Item = BranchRecord;
    type IntoIter = std::vec::IntoIter<BranchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("sample");
        t.push(BranchRecord::conditional(0x100, 0x80, true));
        t.push(BranchRecord::unconditional(0x104, 0x200));
        t.push(BranchRecord::conditional(0x200, 0x300, false));
        t
    }

    #[test]
    fn push_and_len() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.name(), "sample");
    }

    #[test]
    fn conditional_filter_drops_jumps() {
        let t = sample();
        assert_eq!(t.conditional().count(), 2);
        let only = t.conditional_only();
        assert_eq!(only.len(), 2);
        assert!(only.iter().all(|r| r.kind == BranchKind::Conditional));
        assert_eq!(only.name(), "sample");
    }

    #[test]
    fn truncated_takes_prefix() {
        let t = sample();
        let head = t.truncated(2);
        assert_eq!(head.len(), 2);
        assert_eq!(head.records()[0], t.records()[0]);
        assert_eq!(t.truncated(100).len(), 3);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = (0..5)
            .map(|i| BranchRecord::conditional(i * 4, 0, true))
            .collect();
        t.extend((0..3).map(|i| BranchRecord::conditional(i * 4, 0, false)));
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn borrowing_iteration() {
        let t = sample();
        let pcs: Vec<u64> = (&t).into_iter().map(|r| r.pc).collect();
        assert_eq!(pcs, [0x100, 0x104, 0x200]);
        let owned: Vec<BranchRecord> = t.clone().into_iter().collect();
        assert_eq!(owned.len(), 3);
    }
}
