//! Streaming content digest for traces: the trace half of a result-store
//! job key.
//!
//! The harness caches measurement results under a key derived from the
//! predictor configuration and the *content* of the trace it was driven
//! over. Two traces with identical records must therefore hash
//! identically regardless of their provenance names, and any change to
//! any record — address, target, direction, or kind — must change the
//! hash. [`TraceDigest`] is a streaming FNV-1a-64 over the record
//! stream; [`Trace::digest`](crate::Trace::digest) folds a whole trace,
//! and [`PackedTrace`](crate::PackedTrace) carries the digest of the
//! trace it was packed from so the scalar and packed execution paths
//! agree on job keys.
//!
//! FNV-1a is not collision-resistant against adversaries, but the key
//! space here is a handful of deterministic workload generators — the
//! same trade the trace cache and the spec fingerprint make, and it
//! keeps the digest dependency-free.

use crate::record::BranchRecord;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// An incremental FNV-1a-64 digest over branch records.
///
/// ```
/// use bpred_trace::{BranchRecord, Trace, TraceDigest};
///
/// let records = [
///     BranchRecord::conditional(0x40, 0x80, true),
///     BranchRecord::unconditional(0x44, 0x40),
/// ];
/// let mut streaming = TraceDigest::new();
/// for r in &records {
///     streaming.update(r);
/// }
/// let whole: Trace = records.into_iter().collect();
/// assert_eq!(streaming.finish(), whole.digest());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDigest {
    state: u64,
    records: u64,
}

impl Default for TraceDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceDigest {
    /// A digest over the empty stream.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: FNV_OFFSET,
            records: 0,
        }
    }

    /// Folds one record into the digest. Every field that can alter a
    /// measurement participates: `pc` and `target` feed index and BTFNT
    /// logic, `taken` is the outcome, and `kind` decides whether
    /// predictors see the record at all.
    pub fn update(&mut self, record: &BranchRecord) {
        self.fold_u64(record.pc);
        self.fold_u64(record.target);
        self.fold_byte(u8::from(record.taken));
        self.fold_byte(record.kind.tag());
        self.records += 1;
    }

    /// The digest of everything folded so far. Record count is mixed in
    /// last so a prefix and its extension never collide trivially.
    #[must_use]
    pub fn finish(&self) -> u64 {
        let mut d = *self;
        d.fold_u64(self.records);
        d.state
    }

    fn fold_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.fold_byte(b);
        }
    }

    fn fold_byte(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn sample() -> Trace {
        let mut t = Trace::new("sample");
        t.push(BranchRecord::conditional(0x100, 0x80, true));
        t.push(BranchRecord::unconditional(0x104, 0x200));
        t.push(BranchRecord::conditional(0x200, 0x300, false));
        t
    }

    #[test]
    fn digest_is_deterministic_and_name_independent() {
        let a = sample();
        let mut b = sample();
        b.set_name("renamed");
        assert_eq!(a.digest(), a.digest());
        assert_eq!(a.digest(), b.digest(), "name must not affect content");
    }

    #[test]
    fn every_record_field_is_load_bearing() {
        let base = sample();
        let mutate = |f: &dyn Fn(&mut BranchRecord)| {
            let mut records = base.records().to_vec();
            f(&mut records[0]);
            Trace::from_records("sample", records).digest()
        };
        assert_ne!(base.digest(), mutate(&|r| r.pc ^= 4));
        assert_ne!(base.digest(), mutate(&|r| r.target ^= 4));
        assert_ne!(base.digest(), mutate(&|r| r.taken = !r.taken));
        assert_ne!(
            base.digest(),
            mutate(&|r| r.kind = crate::record::BranchKind::Call)
        );
    }

    #[test]
    fn prefix_and_extension_differ() {
        let t = sample();
        assert_ne!(t.digest(), t.truncated(2).digest());
        assert_ne!(Trace::new("a").digest(), t.digest());
        // Empty traces still have a well-defined digest.
        assert_eq!(Trace::new("a").digest(), Trace::new("b").digest());
    }

    #[test]
    fn order_matters() {
        let mut swapped = sample().records().to_vec();
        swapped.swap(0, 2);
        assert_ne!(
            sample().digest(),
            Trace::from_records("sample", swapped).digest()
        );
    }
}
