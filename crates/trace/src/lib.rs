//! Branch trace model for the bi-mode predictor reproduction.
//!
//! The paper's methodology is trace-driven simulation (Section 3): a
//! workload produces a sequence of branch events, and predictors consume
//! the conditional ones in program order. This crate provides:
//!
//! * [`BranchRecord`] / [`BranchKind`] — one dynamic branch event;
//! * [`Trace`] — an in-memory trace with its provenance;
//! * [`TraceStats`] — the static/dynamic counts and bias distribution
//!   reported in the paper's Table 2 and Section 4 analysis;
//! * [`codec`] — a compact binary format and a line-oriented text format
//!   for persisting traces.
//!
//! ```
//! use bpred_trace::{BranchRecord, Trace};
//!
//! let mut trace = Trace::new("demo");
//! trace.push(BranchRecord::conditional(0x1000, 0x1040, true));
//! trace.push(BranchRecord::conditional(0x1008, 0x0FF0, false));
//! let stats = trace.stats();
//! assert_eq!(stats.static_conditional, 2);
//! assert_eq!(stats.dynamic_conditional, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod digest;
pub mod packed;
pub mod record;
pub mod stats;
pub mod trace;

pub use codec::{
    read_binary, read_text, stream_binary, write_binary, write_text, BinaryStream, CodecError,
};
pub use digest::TraceDigest;
pub use packed::{PackError, PackedRecord, PackedTrace, PackedTraceBuilder, SEAL_RECORDS};
pub use record::{BranchKind, BranchRecord};
pub use stats::{site_table, BiasBucket, SiteSummary, TraceStats};
pub use trace::Trace;
