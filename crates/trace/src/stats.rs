//! Trace summary statistics: the static/dynamic branch counts of the
//! paper's Table 2 and the per-branch bias distribution that Section 4's
//! analysis builds on (cf. the \[Chang94\] measurement the paper cites:
//! ~50% of dynamic branches come from statics biased >90% one way).

use std::collections::HashMap;

use crate::record::BranchKind;
use crate::trace::Trace;

/// Per-branch bias buckets used in the distribution summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BiasBucket {
    /// Taken at least 90% of the time.
    StronglyTaken,
    /// Not-taken at least 90% of the time.
    StronglyNotTaken,
    /// Everything else.
    WeaklyBiased,
}

impl BiasBucket {
    /// Buckets a taken fraction using the paper's 90% thresholds.
    #[must_use]
    pub fn of(taken: u64, total: u64) -> Self {
        debug_assert!(taken <= total && total > 0);
        let t = taken as f64 / total as f64;
        if t >= 0.9 {
            BiasBucket::StronglyTaken
        } else if t <= 0.1 {
            BiasBucket::StronglyNotTaken
        } else {
            BiasBucket::WeaklyBiased
        }
    }
}

/// Outcome summary of one static conditional branch site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSummary {
    /// The site's static byte PC.
    pub pc: u64,
    /// Dynamic executions of the site.
    pub executions: u64,
    /// Executions that were taken.
    pub taken: u64,
}

impl SiteSummary {
    /// The site's bias class under the paper's 90% thresholds.
    #[must_use]
    pub fn bucket(&self) -> BiasBucket {
        BiasBucket::of(self.taken, self.executions)
    }
}

/// Per-site summary table of a trace's conditional branches, sorted by
/// PC: one row per static site with its execution count, taken count,
/// and (via [`SiteSummary::bucket`]) bias class at the paper's 90%
/// threshold. Shared by the bias experiments and the static/dynamic
/// cross-check in `cfa.report`.
#[must_use]
pub fn site_table(trace: &Trace) -> Vec<SiteSummary> {
    let mut per_branch: HashMap<u64, (u64, u64)> = HashMap::new();
    for r in trace.iter() {
        if r.kind != BranchKind::Conditional {
            continue;
        }
        let e = per_branch.entry(r.pc).or_insert((0, 0));
        e.0 += u64::from(r.taken);
        e.1 += 1;
    }
    let mut sites: Vec<SiteSummary> = per_branch
        .into_iter()
        .map(|(pc, (taken, executions))| SiteSummary {
            pc,
            executions,
            taken,
        })
        .collect();
    sites.sort_by_key(|s| s.pc);
    sites
}

/// Summary statistics of one trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceStats {
    /// Distinct conditional branch sites (Table 2, "static conditional").
    pub static_conditional: usize,
    /// Dynamic conditional branch executions (Table 2, "dynamic
    /// conditional").
    pub dynamic_conditional: u64,
    /// Dynamic events of any kind.
    pub dynamic_total: u64,
    /// Dynamic conditional branches that were taken.
    pub taken: u64,
    /// Dynamic conditional branches from statics biased >=90% taken.
    pub from_strongly_taken: u64,
    /// Dynamic conditional branches from statics biased >=90% not-taken.
    pub from_strongly_not_taken: u64,
    /// Dynamic conditional branches from weakly biased statics.
    pub from_weakly_biased: u64,
}

impl TraceStats {
    /// Measures a trace. The per-site aggregation is [`site_table`],
    /// so this summary and the per-site view can never disagree.
    #[must_use]
    pub fn measure(trace: &Trace) -> Self {
        let mut stats = TraceStats {
            dynamic_total: trace.len() as u64,
            ..Self::default()
        };
        let sites = site_table(trace);
        stats.static_conditional = sites.len();
        for site in &sites {
            stats.dynamic_conditional += site.executions;
            stats.taken += site.taken;
            match site.bucket() {
                BiasBucket::StronglyTaken => stats.from_strongly_taken += site.executions,
                BiasBucket::StronglyNotTaken => stats.from_strongly_not_taken += site.executions,
                BiasBucket::WeaklyBiased => stats.from_weakly_biased += site.executions,
            }
        }
        stats
    }

    /// Fraction of dynamic conditional branches that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.dynamic_conditional == 0 {
            0.0
        } else {
            self.taken as f64 / self.dynamic_conditional as f64
        }
    }

    /// Fraction of dynamic conditional branches coming from strongly
    /// biased statics (either direction) — the \[Chang94\] statistic.
    #[must_use]
    pub fn strongly_biased_fraction(&self) -> f64 {
        if self.dynamic_conditional == 0 {
            0.0
        } else {
            (self.from_strongly_taken + self.from_strongly_not_taken) as f64
                / self.dynamic_conditional as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchRecord;

    #[test]
    fn bias_bucket_thresholds_are_inclusive_at_90() {
        assert_eq!(BiasBucket::of(9, 10), BiasBucket::StronglyTaken);
        assert_eq!(BiasBucket::of(1, 10), BiasBucket::StronglyNotTaken);
        assert_eq!(BiasBucket::of(5, 10), BiasBucket::WeaklyBiased);
        assert_eq!(BiasBucket::of(89, 100), BiasBucket::WeaklyBiased);
        assert_eq!(BiasBucket::of(90, 100), BiasBucket::StronglyTaken);
        assert_eq!(BiasBucket::of(10, 100), BiasBucket::StronglyNotTaken);
        assert_eq!(BiasBucket::of(11, 100), BiasBucket::WeaklyBiased);
    }

    #[test]
    fn measure_counts_statics_and_dynamics() {
        let mut t = Trace::new("s");
        for i in 0..10 {
            t.push(BranchRecord::conditional(0x100, 0x80, true)); // ST
            t.push(BranchRecord::conditional(0x200, 0x300, i % 2 == 0)); // WB
        }
        t.push(BranchRecord::unconditional(0x300, 0x400)); // not counted
        let s = t.stats();
        assert_eq!(s.static_conditional, 2);
        assert_eq!(s.dynamic_conditional, 20);
        assert_eq!(s.dynamic_total, 21);
        assert_eq!(s.taken, 15);
        assert_eq!(s.from_strongly_taken, 10);
        assert_eq!(s.from_weakly_biased, 10);
        assert_eq!(s.from_strongly_not_taken, 0);
        assert!((s.taken_rate() - 0.75).abs() < 1e-12);
        assert!((s.strongly_biased_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_yields_zero_rates() {
        let s = Trace::new("e").stats();
        assert_eq!(s.static_conditional, 0);
        assert_eq!(s.taken_rate(), 0.0);
        assert_eq!(s.strongly_biased_fraction(), 0.0);
    }

    #[test]
    fn site_table_aggregates_per_pc_and_sorts() {
        let mut t = Trace::new("sites");
        for i in 0..10 {
            t.push(BranchRecord::conditional(0x200, 0x300, i % 2 == 0)); // WB
            t.push(BranchRecord::conditional(0x100, 0x80, true)); // ST
        }
        t.push(BranchRecord::conditional(0x300, 0x100, false)); // SNT
        t.push(BranchRecord::unconditional(0x400, 0x500)); // ignored
        let sites = site_table(&t);
        assert_eq!(sites.len(), 3);
        assert!(sites.windows(2).all(|w| w[0].pc < w[1].pc), "sorted by PC");
        assert_eq!(
            sites[0],
            SiteSummary {
                pc: 0x100,
                executions: 10,
                taken: 10
            }
        );
        assert_eq!(sites[0].bucket(), BiasBucket::StronglyTaken);
        assert_eq!(sites[1].bucket(), BiasBucket::WeaklyBiased);
        assert_eq!(sites[1].taken, 5);
        assert_eq!(sites[2].bucket(), BiasBucket::StronglyNotTaken);
    }

    #[test]
    fn site_table_matches_measure() {
        let mut t = Trace::new("agree");
        for i in 0..100u64 {
            let pc = 0x1000 + (i % 7) * 4;
            t.push(BranchRecord::conditional(pc, 0, i % 3 != 0));
        }
        let sites = site_table(&t);
        let s = t.stats();
        assert_eq!(sites.len(), s.static_conditional);
        assert_eq!(
            sites.iter().map(|x| x.executions).sum::<u64>(),
            s.dynamic_conditional
        );
        assert_eq!(sites.iter().map(|x| x.taken).sum::<u64>(), s.taken);
    }

    #[test]
    fn site_table_of_empty_trace_is_empty() {
        assert!(site_table(&Trace::new("e")).is_empty());
    }

    #[test]
    fn bias_attribution_sums_to_dynamic_count() {
        let mut t = Trace::new("sum");
        for i in 0..100u64 {
            let pc = 0x1000 + (i % 7) * 4;
            t.push(BranchRecord::conditional(pc, 0, i % 3 != 0));
        }
        let s = t.stats();
        assert_eq!(
            s.from_strongly_taken + s.from_strongly_not_taken + s.from_weakly_biased,
            s.dynamic_conditional
        );
    }
}
