//! `PackedTrace`: a cache-friendly structure-of-arrays view of the
//! conditional branches of a [`Trace`].
//!
//! The sweeps behind Figures 2–4 and the exhaustive `gshare.best`
//! search drive the *same* trace once per predictor configuration, so
//! the dominant cost is memory traffic over the 24-byte-per-record
//! array-of-structs [`BranchRecord`] stream (most of which — raw
//! targets, the kind tag, padding — the predictors never look at).
//! `PackedTrace` is built once per trace and keeps only what a
//! trace-driven predictor consumes, in parallel arrays:
//!
//! * a **deduplicated PC table** (`u32` site ids per record, one `u64`
//!   PC per distinct branch site),
//! * a **bit-packed outcome vector** (one taken bit per record),
//! * a **bit-packed backwardness vector** (one `target < pc` bit per
//!   record — the only target-derived information any predictor in
//!   this reproduction uses, via the BTFNT static heuristic),
//! * precomputed [`TraceStats`].
//!
//! The per-record working set shrinks from 24 bytes to 4.25 bytes
//! (~5.6×), so paper-scale traces fit in the last-level cache and a
//! batched sweep (see `bpred-analysis`'s `measure_batch`) re-reads hot
//! lines instead of streaming DRAM.
//!
//! Raw targets are *not* retained: records are replayed with a
//! synthesised target that preserves the `target < pc` predicate
//! exactly ([`PackedRecord::target`]), which keeps every predictor in
//! the workspace bit-identical to a scalar replay of the original
//! trace. A future predictor that hashes raw target bits would need
//! the targets added to the site table first.
//!
//! Traces that never exist whole in memory are packed piecewise with
//! [`PackedTraceBuilder`]: records are appended in arrival order, the
//! per-record columns seal in fixed-size blocks of [`SEAL_RECORDS`]
//! (a sealed block's bytes never change again), and a running
//! [`TraceDigest`] identifies the stream so far. [`PackedTraceBuilder::finish`]
//! yields a `PackedTrace` byte-identical to [`PackedTrace::build`] over
//! the same record sequence.

use crate::digest::TraceDigest;
use crate::record::{BranchKind, BranchRecord};
use crate::stats::{BiasBucket, TraceStats};
use crate::trace::Trace;

/// Error produced when a trace cannot be packed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    /// The trace has more than `u32::MAX` distinct conditional branch
    /// sites, so site ids would not fit the packed `u32` id column.
    TooManySites {
        /// Number of distinct sites found before overflowing.
        sites: u64,
    },
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::TooManySites { sites } => write!(
                f,
                "trace has {sites} distinct conditional branch sites; \
                 packed site ids are u32 (max {})",
                u32::MAX
            ),
        }
    }
}

impl std::error::Error for PackError {}

/// One replayed conditional branch, reconstructed from the packed
/// arrays. See [`PackedTrace::records`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedRecord {
    /// Byte address of the branch instruction.
    pub pc: u64,
    /// Dense site id of the branch (index into [`PackedTrace::site_pcs`]).
    pub site: u32,
    /// Resolved direction (`true` = taken).
    pub taken: bool,
    /// Whether the taken-path target lies below the branch.
    pub backward: bool,
}

impl PackedRecord {
    /// A synthesised target that preserves the `target < pc` predicate
    /// of the original record: `0` for backward branches (below every
    /// positive PC; a backward branch cannot sit at PC 0) and
    /// `u64::MAX` for forward ones (below no PC).
    #[must_use]
    pub fn target(&self) -> u64 {
        if self.backward {
            0
        } else {
            u64::MAX
        }
    }
}

const WORD_BITS: usize = 64;

/// A bit-per-record column (outcomes, backwardness).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct BitColumn {
    words: Vec<u64>,
}

impl BitColumn {
    fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(WORD_BITS)),
        }
    }

    fn push(&mut self, index: usize, bit: bool) {
        if index.is_multiple_of(WORD_BITS) {
            self.words.push(0);
        }
        if bit {
            self.words[index / WORD_BITS] |= 1u64 << (index % WORD_BITS);
        }
    }

    #[inline]
    fn get(&self, index: usize) -> bool {
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }
}

/// The packed, conditional-only form of one [`Trace`].
///
/// ```
/// use bpred_trace::{BranchRecord, PackedTrace, Trace};
///
/// let mut trace = Trace::new("demo");
/// trace.push(BranchRecord::conditional(0x1000, 0x0FF0, true));
/// trace.push(BranchRecord::unconditional(0x1004, 0x2000)); // dropped
/// trace.push(BranchRecord::conditional(0x1000, 0x0FF0, false));
/// let packed = PackedTrace::build(&trace).unwrap();
/// assert_eq!(packed.len(), 2);
/// assert_eq!(packed.num_sites(), 1);
/// let first = packed.record(0);
/// assert_eq!(first.pc, 0x1000);
/// assert!(first.taken && first.backward);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackedTrace {
    name: String,
    /// Per-record dense site ids, program order.
    sites: Vec<u32>,
    /// Per-record taken bits.
    outcomes: BitColumn,
    /// Per-record `target < pc` bits.
    backward: BitColumn,
    /// Site id -> PC, in first-appearance order.
    site_pcs: Vec<u64>,
    /// Stats of the *original* trace, measured once at build time.
    stats: TraceStats,
    /// Content digest of the *source* trace (see [`Trace::digest`]),
    /// captured at build time so packed and scalar measurement paths
    /// key the result store identically.
    digest: u64,
}

impl PackedTrace {
    /// Packs the conditional branches of `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`PackError::TooManySites`] if the trace has more than
    /// `u32::MAX` distinct conditional branch sites.
    pub fn build(trace: &Trace) -> Result<Self, PackError> {
        let mut site_ids: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        let mut site_pcs = Vec::new();
        let conditional_hint = trace
            .records()
            .iter()
            .filter(|r| r.kind == BranchKind::Conditional)
            .count();
        let mut sites = Vec::with_capacity(conditional_hint);
        let mut outcomes = BitColumn::with_capacity(conditional_hint);
        let mut backward = BitColumn::with_capacity(conditional_hint);
        for r in trace.conditional() {
            let id = match site_ids.get(&r.pc) {
                Some(&id) => id,
                None => {
                    let id =
                        u32::try_from(site_pcs.len()).map_err(|_| PackError::TooManySites {
                            sites: site_pcs.len() as u64 + 1,
                        })?;
                    site_ids.insert(r.pc, id);
                    site_pcs.push(r.pc);
                    id
                }
            };
            let index = sites.len();
            sites.push(id);
            outcomes.push(index, r.taken);
            backward.push(index, r.is_backward());
        }
        Ok(Self {
            name: trace.name().to_owned(),
            sites,
            outcomes,
            backward,
            site_pcs,
            stats: trace.stats(),
            digest: trace.digest(),
        })
    }

    /// The workload name of the source trace.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of conditional branch records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the packed trace holds no conditional branches.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Number of distinct conditional branch sites.
    #[must_use]
    pub fn num_sites(&self) -> usize {
        self.site_pcs.len()
    }

    /// Site id -> PC table, in first-appearance order.
    #[must_use]
    pub fn site_pcs(&self) -> &[u64] {
        &self.site_pcs
    }

    /// Stats of the source trace, precomputed at build time.
    #[must_use]
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Content digest of the source trace, captured at build time.
    /// Equal to [`Trace::digest`] of the trace this was packed from.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Reconstructs record `index` (program order over conditionals).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    #[must_use]
    pub fn record(&self, index: usize) -> PackedRecord {
        let site = self.sites[index];
        PackedRecord {
            pc: self.site_pcs[site as usize], // cast-audited: u32 id widens losslessly
            site,
            taken: self.outcomes.get(index),
            backward: self.backward.get(index),
        }
    }

    /// Iterates the replayed conditional records in program order.
    pub fn records(&self) -> impl Iterator<Item = PackedRecord> + '_ {
        (0..self.len()).map(|i| self.record(i))
    }

    /// Approximate resident bytes of the packed per-record columns
    /// (site ids + two bit columns), the engine's hot working set.
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.sites.len() * std::mem::size_of::<u32>()
            + (self.outcomes.words.len() + self.backward.words.len()) * std::mem::size_of::<u64>()
            + self.site_pcs.len() * std::mem::size_of::<u64>()
    }

    /// Bytes the same records occupy in the array-of-structs [`Trace`]
    /// representation, for reduction reporting.
    #[must_use]
    pub fn unpacked_bytes(&self) -> usize {
        self.sites.len() * std::mem::size_of::<BranchRecord>()
    }
}

/// Conditional records per sealed block of a [`PackedTraceBuilder`]:
/// once a block fills, its slice of the packed columns is immutable
/// (the bit columns only ever append to the final partial word), so
/// consumers may stream sealed blocks while the tail is still open.
/// Matches the batched engine's block size so one sealed block is one
/// cache-resident unit of work.
pub const SEAL_RECORDS: usize = 4096;

/// Chunked [`PackedTrace`] construction for piecewise trace ingestion.
///
/// [`PackedTrace::build`] needs the whole [`Trace`] in memory; the
/// builder accepts records one chunk at a time — from a socket, a file
/// reader, or a generator — while maintaining exactly the state the
/// one-shot path derives at the end: the deduplicated site table, the
/// bit-packed outcome/backwardness columns, per-site outcome tallies
/// (for [`TraceStats`]), and a running [`TraceDigest`] over *every*
/// record seen (all kinds, like [`Trace::digest`], so a streamed trace
/// keys the result store identically to its in-memory twin).
///
/// ```
/// use bpred_trace::{BranchRecord, PackedTrace, PackedTraceBuilder, Trace};
///
/// let records = [
///     BranchRecord::conditional(0x100, 0x80, true),
///     BranchRecord::unconditional(0x104, 0x200),
///     BranchRecord::conditional(0x100, 0x80, false),
/// ];
/// let mut builder = PackedTraceBuilder::new("demo");
/// for r in &records {
///     builder.append(r).unwrap();
/// }
/// let whole = Trace::from_records("demo", records.to_vec());
/// assert_eq!(builder.running_digest(), whole.digest());
/// assert_eq!(builder.finish(), PackedTrace::build(&whole).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct PackedTraceBuilder {
    name: String,
    site_ids: std::collections::HashMap<u64, u32>,
    site_pcs: Vec<u64>,
    sites: Vec<u32>,
    outcomes: BitColumn,
    backward: BitColumn,
    /// Per-site (taken, executions) tallies, indexed by site id: the
    /// incremental form of the one-shot path's end-of-build
    /// [`TraceStats`] measurement.
    site_outcomes: Vec<(u64, u64)>,
    digest: TraceDigest,
    records_seen: u64,
}

impl PackedTraceBuilder {
    /// An empty builder for a trace named `name`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            site_ids: std::collections::HashMap::new(),
            site_pcs: Vec::new(),
            sites: Vec::new(),
            outcomes: BitColumn::default(),
            backward: BitColumn::default(),
            site_outcomes: Vec::new(),
            digest: TraceDigest::new(),
            records_seen: 0,
        }
    }

    /// Appends one record. Every record (any kind) feeds the running
    /// digest; conditional records are packed and returned in their
    /// replay form, others are dropped from the columns exactly like
    /// [`PackedTrace::build`].
    ///
    /// # Errors
    ///
    /// Returns [`PackError::TooManySites`] when the record would create
    /// a distinct conditional site beyond the `u32` id space.
    pub fn append(&mut self, record: &BranchRecord) -> Result<Option<PackedRecord>, PackError> {
        self.digest.update(record);
        self.records_seen += 1;
        if record.kind != BranchKind::Conditional {
            return Ok(None);
        }
        let id = match self.site_ids.get(&record.pc) {
            Some(&id) => id,
            None => {
                let id =
                    u32::try_from(self.site_pcs.len()).map_err(|_| PackError::TooManySites {
                        sites: self.site_pcs.len() as u64 + 1,
                    })?;
                self.site_ids.insert(record.pc, id);
                self.site_pcs.push(record.pc);
                self.site_outcomes.push((0, 0));
                id
            }
        };
        let index = self.sites.len();
        self.sites.push(id);
        self.outcomes.push(index, record.taken);
        self.backward.push(index, record.is_backward());
        let tally = &mut self.site_outcomes[id as usize]; // cast-audited: u32 id widens losslessly
        tally.0 += u64::from(record.taken);
        tally.1 += 1;
        Ok(Some(PackedRecord {
            pc: record.pc,
            site: id,
            taken: record.taken,
            backward: record.is_backward(),
        }))
    }

    /// Appends a chunk of records, returning how many were conditional
    /// (and therefore packed).
    ///
    /// # Errors
    ///
    /// Returns [`PackError::TooManySites`] as [`Self::append`] does;
    /// records before the failing one stay appended.
    pub fn append_all<'a>(
        &mut self,
        records: impl IntoIterator<Item = &'a BranchRecord>,
    ) -> Result<usize, PackError> {
        let mut packed = 0;
        for r in records {
            packed += usize::from(self.append(r)?.is_some());
        }
        Ok(packed)
    }

    /// Conditional records packed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no conditional record has been packed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Records of any kind fed so far (the digest's record count).
    #[must_use]
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    /// Complete, immutable blocks of [`SEAL_RECORDS`] packed records.
    #[must_use]
    pub fn sealed_blocks(&self) -> usize {
        self.len() / SEAL_RECORDS
    }

    /// Packed records in the still-open tail block.
    #[must_use]
    pub fn open_records(&self) -> usize {
        self.len() % SEAL_RECORDS
    }

    /// The [`TraceDigest`] of every record fed so far — equal to
    /// [`Trace::digest`] of the same record sequence, at any point of
    /// the stream.
    #[must_use]
    pub fn running_digest(&self) -> u64 {
        self.digest.finish()
    }

    /// Seals the tail and returns the finished [`PackedTrace`] —
    /// field-for-field identical to [`PackedTrace::build`] over the
    /// same record sequence.
    #[must_use]
    pub fn finish(self) -> PackedTrace {
        let mut stats = TraceStats {
            static_conditional: self.site_pcs.len(),
            dynamic_total: self.records_seen,
            ..TraceStats::default()
        };
        for &(taken, executions) in &self.site_outcomes {
            stats.dynamic_conditional += executions;
            stats.taken += taken;
            match BiasBucket::of(taken, executions) {
                BiasBucket::StronglyTaken => stats.from_strongly_taken += executions,
                BiasBucket::StronglyNotTaken => stats.from_strongly_not_taken += executions,
                BiasBucket::WeaklyBiased => stats.from_weakly_biased += executions,
            }
        }
        PackedTrace {
            name: self.name,
            sites: self.sites,
            outcomes: self.outcomes,
            backward: self.backward,
            site_pcs: self.site_pcs,
            stats,
            digest: self.digest.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("sample");
        t.push(BranchRecord::conditional(0x100, 0x80, true)); // backward
        t.push(BranchRecord::unconditional(0x104, 0x200));
        t.push(BranchRecord::conditional(0x200, 0x300, false)); // forward
        t.push(BranchRecord::conditional(0x100, 0x80, false));
        t
    }

    #[test]
    fn packs_conditionals_only_with_deduped_sites() {
        let p = PackedTrace::build(&sample()).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.num_sites(), 2);
        assert_eq!(p.site_pcs(), [0x100, 0x200]);
        assert_eq!(p.name(), "sample");
        let records: Vec<PackedRecord> = p.records().collect();
        assert_eq!(
            records[0],
            PackedRecord {
                pc: 0x100,
                site: 0,
                taken: true,
                backward: true
            }
        );
        assert_eq!(
            records[1],
            PackedRecord {
                pc: 0x200,
                site: 1,
                taken: false,
                backward: false
            }
        );
        assert_eq!(
            records[2],
            PackedRecord {
                pc: 0x100,
                site: 0,
                taken: false,
                backward: true
            }
        );
    }

    #[test]
    fn empty_and_unconditional_only_traces_pack_to_empty() {
        let p = PackedTrace::build(&Trace::new("empty")).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.num_sites(), 0);
        assert_eq!(p.records().count(), 0);

        let mut t = Trace::new("jumps");
        t.push(BranchRecord::unconditional(0x10, 0x20));
        t.push(BranchRecord::unconditional(0x20, 0x10));
        let p = PackedTrace::build(&t).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.stats().dynamic_total, 2);
        assert_eq!(p.stats().dynamic_conditional, 0);
    }

    #[test]
    fn synthesised_target_preserves_backwardness() {
        let p = PackedTrace::build(&sample()).unwrap();
        for r in p.records() {
            assert_eq!(r.target() < r.pc, r.backward, "record at {:#x}", r.pc);
        }
    }

    #[test]
    fn stats_match_source_trace() {
        let t = sample();
        let p = PackedTrace::build(&t).unwrap();
        assert_eq!(*p.stats(), t.stats());
    }

    #[test]
    fn digest_is_the_source_traces() {
        let t = sample();
        let p = PackedTrace::build(&t).unwrap();
        assert_eq!(p.digest(), t.digest());
        // Conditional-only filtering changes content, hence the digest:
        // the packed trace carries the *source* identity, not its own.
        assert_ne!(
            PackedTrace::build(&t.conditional_only()).unwrap().digest(),
            p.digest()
        );
    }

    #[test]
    fn outcome_bits_survive_word_boundaries() {
        let mut t = Trace::new("long");
        for i in 0..1000u64 {
            t.push(BranchRecord::conditional(
                0x1000 + (i % 13) * 4,
                0x800,
                i % 3 == 0,
            ));
        }
        let p = PackedTrace::build(&t).unwrap();
        assert_eq!(p.len(), 1000);
        assert_eq!(p.num_sites(), 13);
        for (i, r) in p.records().enumerate() {
            assert_eq!(r.taken, (i as u64).is_multiple_of(3), "record {i}");
            assert!(r.backward);
        }
    }

    #[test]
    fn builder_matches_one_shot_build_field_for_field() {
        let t = sample();
        let mut b = PackedTraceBuilder::new("sample");
        let mut packed_count = 0;
        for r in t.records() {
            packed_count += usize::from(b.append(r).unwrap().is_some());
        }
        assert_eq!(packed_count, 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.records_seen(), 4);
        assert_eq!(b.running_digest(), t.digest());
        assert_eq!(b.finish(), PackedTrace::build(&t).unwrap());
    }

    #[test]
    fn builder_is_chunking_invariant() {
        let mut t = Trace::new("long");
        for i in 0..9000u64 {
            let pc = 0x1000 + (i % 131) * 4;
            t.push(BranchRecord::conditional(pc, 0x800, i % 3 == 0));
            if i % 17 == 0 {
                t.push(BranchRecord::unconditional(pc + 4, 0x1000));
            }
        }
        let want = PackedTrace::build(&t).unwrap();
        for chunk in [1usize, 63, 64, 65, 4096, 4097] {
            let mut b = PackedTraceBuilder::new("long");
            for records in t.records().chunks(chunk) {
                b.append_all(records).unwrap();
            }
            assert_eq!(b.running_digest(), t.digest(), "chunk {chunk}");
            assert_eq!(b.finish(), want, "chunk {chunk}");
        }
    }

    #[test]
    fn builder_replays_records_while_streaming() {
        let t = sample();
        let mut b = PackedTraceBuilder::new("sample");
        let mut streamed = Vec::new();
        for r in t.records() {
            if let Some(p) = b.append(r).unwrap() {
                streamed.push(p);
            }
        }
        let whole: Vec<PackedRecord> = PackedTrace::build(&t).unwrap().records().collect();
        assert_eq!(streamed, whole);
    }

    #[test]
    fn builder_seals_fixed_size_blocks() {
        let mut b = PackedTraceBuilder::new("blocks");
        assert_eq!((b.sealed_blocks(), b.open_records()), (0, 0));
        for i in 0..SEAL_RECORDS as u64 + 5 {
            b.append(&BranchRecord::conditional(0x100 + (i % 9) * 4, 0, true))
                .unwrap();
        }
        assert_eq!(b.sealed_blocks(), 1);
        assert_eq!(b.open_records(), 5);
        assert!(!b.is_empty());
    }

    #[test]
    fn builder_running_digest_tracks_every_prefix() {
        let t = sample();
        let mut b = PackedTraceBuilder::new("sample");
        for (i, r) in t.records().iter().enumerate() {
            b.append(r).unwrap();
            assert_eq!(
                b.running_digest(),
                t.truncated(i + 1).digest(),
                "prefix {}",
                i + 1
            );
        }
    }

    #[test]
    fn empty_builder_finishes_to_the_empty_packed_trace() {
        let b = PackedTraceBuilder::new("empty");
        assert!(b.is_empty());
        assert_eq!(b.running_digest(), Trace::new("empty").digest());
        let p = b.finish();
        assert_eq!(p, PackedTrace::build(&Trace::new("empty")).unwrap());
    }

    #[test]
    fn packed_bytes_report_a_real_reduction() {
        let mut t = Trace::new("big");
        for i in 0..10_000u64 {
            t.push(BranchRecord::conditional(
                0x1000 + (i % 200) * 4,
                0x2000,
                i % 2 == 0,
            ));
        }
        let p = PackedTrace::build(&t).unwrap();
        assert!(
            p.packed_bytes() * 5 < p.unpacked_bytes(),
            "packed {} vs unpacked {}",
            p.packed_bytes(),
            p.unpacked_bytes()
        );
    }
}
