//! Property test: chunked [`EngineSession`](bpred_analysis::session)
//! feeding is bit-identical to the one-shot `measure_*` engines for
//! **every** grammar spec, at every chunk geometry that has bitten a
//! streaming engine before — size 1 (every boundary), 63/64/65 (either
//! side of the plane word and shared-history width), and uneven tails.
//!
//! This is the contract that lets the harness sweep path and the
//! `repro serve` streaming service share one store key space with the
//! batch engines: a chunk boundary must never be observable in a
//! result, so a digest computed from streamed chunks addresses exactly
//! the result a whole-trace run would produce.

use bpred_analysis::session::{BatchSession, PackedSession, SlicedSession};
use bpred_analysis::sliced::LaneSpec;
use bpred_analysis::{measure_batch, measure_packed, measure_sliced, RunResult};
use bpred_core::spec::GRAMMAR;
use bpred_core::{Predictor, PredictorSpec};
use bpred_trace::{BranchKind, BranchRecord, PackedTrace, Trace};
use proptest::prelude::*;

/// One representative configuration per grammar name, with parameters
/// small enough that counters saturate and histories wrap inside the
/// test trace (the regimes where off-by-one chunk bugs would show).
const SPECS: &[&str] = &[
    "always-taken",
    "always-not-taken",
    "btfnt",
    "bimodal:s=5",
    "gshare:s=6,h=6",
    "gselect:a=3,h=3",
    "gag:h=6",
    "gas:a=3,h=4",
    "pag:i=4,h=5",
    "pas:i=4,a=3,h=4",
    "sag:i=4,k=2,h=5",
    "sas:i=4,k=2,a=3,h=4",
    "bimode:d=5",
    "agree:s=6,h=5,b=6",
    "gskew:s=6,h=5",
    "yags:c=6,e=4,h=5,t=4",
    "tournament:s=6",
    "2bcgskew:s=6,h=5",
    "trimode:d=5",
    "tage:t=3,h=8,tag=5,e=4",
    "perceptron:n=4,h=6,theta=25",
    "cascade:bimodal:s=4;gshare:s=5,h=5",
];

/// The chunk sizes every spec is replayed at: every boundary, either
/// side of the 64-wide plane word / shared-history register, and sizes
/// that leave uneven tails on the test trace length.
const CHUNKS: &[usize] = &[1, 63, 64, 65, 1000];

fn test_trace(seed: u64, len: u64) -> (Trace, PackedTrace) {
    let mut t = Trace::new("session-equivalence");
    let mut x = seed | 1;
    for i in 0..len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pc = 0x8000 + (x % 29) * 4;
        let target = if x.is_multiple_of(4) {
            pc - 0x40
        } else {
            pc + 0x40
        };
        t.push(BranchRecord::conditional(pc, target, (x >> 23) & 1 == 1));
        if i % 13 == 0 {
            t.push(BranchRecord::unconditional(pc + 4, 0x8000));
        }
    }
    let packed = PackedTrace::build(&t).expect("site table fits");
    (t, packed)
}

fn feed_in_chunks<F: FnMut(usize, usize)>(len: usize, chunk: usize, mut feed: F) {
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        feed(start, end);
        start = end;
    }
}

#[test]
fn the_spec_list_covers_every_grammar_name() {
    let mut names: Vec<&str> = SPECS
        .iter()
        .map(|s| s.split(':').next().unwrap_or(s))
        .collect();
    names.sort_unstable();
    let mut grammar: Vec<&str> = GRAMMAR.iter().map(|(n, _)| *n).collect();
    grammar.sort_unstable();
    assert_eq!(names, grammar, "one session spec per grammar name");
}

#[test]
fn chunked_packed_sessions_match_one_shots_for_every_grammar_spec() {
    // 2477 records: prime, so every CHUNKS size leaves an uneven tail.
    let (_, packed) = test_trace(41, 2477);
    for spec in SPECS {
        let spec: PredictorSpec = spec.parse().expect("grammar spec parses");
        let want = measure_packed(&packed, spec.build().as_mut());
        for &chunk in CHUNKS {
            let mut session = PackedSession::<_, dyn Predictor>::new(spec.build());
            feed_in_chunks(packed.len(), chunk, |s, e| {
                session.feed((s..e).map(|i| packed.record(i)));
            });
            assert_eq!(session.finish(), want, "spec {spec} chunk {chunk}");
        }
    }
}

#[test]
fn chunked_batch_sessions_match_the_one_shot_batch_for_the_whole_grammar() {
    let (_, packed) = test_trace(43, 2477);
    let specs: Vec<PredictorSpec> = SPECS.iter().map(|s| s.parse().expect("parses")).collect();
    let mut reference: Vec<Box<dyn Predictor>> = specs.iter().map(|s| s.build()).collect();
    let want = measure_batch(&packed, &mut reference);
    for &chunk in CHUNKS {
        let batch: Vec<Box<dyn Predictor>> = specs.iter().map(|s| s.build()).collect();
        let mut session = BatchSession::new(batch);
        feed_in_chunks(packed.len(), chunk, |s, e| {
            session.feed((s..e).map(|i| packed.record(i)));
        });
        assert_eq!(session.finish(), want, "chunk {chunk}");
    }
}

#[test]
fn chunked_sliced_sessions_match_the_one_shot_for_every_sliceable_spec() {
    let (_, packed) = test_trace(47, 2477);
    let lanes: Vec<LaneSpec> = SPECS
        .iter()
        .filter_map(|s| LaneSpec::of(&s.parse::<PredictorSpec>().expect("parses")))
        .collect();
    assert!(!lanes.is_empty(), "grammar has sliceable members");
    let want = measure_sliced(&packed, &lanes);
    for &chunk in CHUNKS {
        let mut session = SlicedSession::new(&lanes);
        feed_in_chunks(packed.len(), chunk, |s, e| {
            session.feed((s..e).map(|i| packed.record(i)));
        });
        assert_eq!(session.finish(), want, "chunk {chunk}");
    }
}

#[test]
fn mid_stream_checkpoints_equal_prefix_one_shots() {
    let (t, packed) = test_trace(53, 1200);
    let spec: PredictorSpec = "bimode:d=5".parse().expect("parses");
    let mut session = PackedSession::<_, dyn Predictor>::new(spec.build());
    let mut fed = 0;
    for chunk in [100usize, 64, 1, 300] {
        let end = (fed + chunk).min(packed.len());
        session.feed((fed..end).map(|i| packed.record(i)));
        fed = end;
        // A checkpoint must equal a one-shot over the conditional
        // prefix the session has consumed so far.
        let prefix: Trace = t
            .records()
            .iter()
            .filter(|r| r.kind == BranchKind::Conditional)
            .take(fed)
            .cloned()
            .collect();
        let prefix = PackedTrace::build(&prefix).expect("builds");
        assert_eq!(
            session.checkpoint(),
            measure_packed(&prefix, spec.build().as_mut()),
            "after {fed} records"
        );
    }
}

#[test]
fn site_tallies_sum_to_the_aggregate_for_every_grammar_spec() {
    let (t, packed) = test_trace(59, 2477);
    let sites = bpred_trace::stats::site_table(&t);
    // Packed: for every grammar spec the tally must cover exactly the
    // trace's site table, sum exactly to the aggregate result, and be
    // invisible to chunk boundaries.
    let mut references = Vec::new();
    for spec in SPECS {
        let spec: PredictorSpec = spec.parse().expect("parses");
        let mut whole = PackedSession::<_, dyn Predictor>::new(spec.build());
        whole.track_sites();
        whole.feed((0..packed.len()).map(|i| packed.record(i)));
        let reference = whole.site_tally().expect("tracking is on").clone();
        let aggregate = whole.finish();
        assert_eq!(
            reference.totals(),
            (aggregate.branches, aggregate.mispredictions),
            "spec {spec}: per-site counts must sum to the aggregate"
        );
        let rows = reference.rows();
        assert_eq!(
            rows.iter()
                .map(|r| (r.pc, r.executions))
                .collect::<Vec<_>>(),
            sites
                .iter()
                .map(|s| (s.pc, s.executions))
                .collect::<Vec<_>>(),
            "spec {spec}: tally rows line up with trace::stats::site_table"
        );
        for &chunk in CHUNKS {
            let mut session = PackedSession::<_, dyn Predictor>::new(spec.build());
            session.track_sites();
            feed_in_chunks(packed.len(), chunk, |s, e| {
                session.feed((s..e).map(|i| packed.record(i)));
            });
            assert_eq!(
                session.site_tally(),
                Some(&reference),
                "spec {spec} chunk {chunk}: tallies see no chunk boundaries"
            );
        }
        references.push(reference);
    }
    // Batch: all 22 configurations at once, fed in chunks; each
    // configuration's tally must equal its packed twin and sum to its
    // own aggregate.
    let specs: Vec<PredictorSpec> = SPECS.iter().map(|s| s.parse().expect("parses")).collect();
    let batch: Vec<Box<dyn Predictor>> = specs.iter().map(|s| s.build()).collect();
    let mut session = BatchSession::new(batch);
    session.track_sites();
    feed_in_chunks(packed.len(), 65, |s, e| {
        session.feed((s..e).map(|i| packed.record(i)));
    });
    let tallies = session.site_tallies().expect("tracking is on").to_vec();
    let results = session.finish();
    assert_eq!(tallies.len(), SPECS.len());
    for ((tally, result), reference) in tallies.iter().zip(&results).zip(&references) {
        assert_eq!(tally.totals(), (result.branches, result.mispredictions));
        assert_eq!(tally, reference, "batch tallies match the packed engine");
    }
    // Sliced: per-lane tallies over the sliceable subset.
    let lanes: Vec<LaneSpec> = specs.iter().filter_map(LaneSpec::of).collect();
    let mut session = SlicedSession::new(&lanes);
    session.track_sites();
    feed_in_chunks(packed.len(), 63, |s, e| {
        session.feed((s..e).map(|i| packed.record(i)));
    });
    let tallies = session.site_tallies().expect("tracking is on").to_vec();
    let results = session.finish();
    assert_eq!(tallies.len(), lanes.len());
    for (tally, result) in tallies.iter().zip(&results) {
        assert_eq!(tally.totals(), (result.branches, result.mispredictions));
    }
}

proptest! {
    /// Arbitrary chunkings of arbitrary traces are invisible: a random
    /// split list drives every engine to the same result as one shot.
    #[test]
    fn random_chunkings_are_bit_identical(
        seed in any::<u64>(),
        len in 1u64..600,
        splits in prop::collection::vec(1usize..97, 1..8),
        spec_index in 0usize..SPECS.len(),
    ) {
        let (_, packed) = test_trace(seed, len);
        let spec: PredictorSpec = SPECS[spec_index].parse().expect("parses");

        // Packed session under the random chunking.
        let want = measure_packed(&packed, spec.build().as_mut());
        let mut session = PackedSession::<_, dyn Predictor>::new(spec.build());
        let mut start = 0;
        let mut split = splits.iter().cycle();
        while start < packed.len() {
            let step = *split.next().expect("cycle never ends");
            let end = (start + step).min(packed.len());
            session.feed((start..end).map(|i| packed.record(i)));
            start = end;
        }
        prop_assert_eq!(session.finish(), want);

        // Sliced session under the same chunking, when sliceable.
        if let Some(lane) = LaneSpec::of(&spec) {
            let lanes = [lane];
            let mut session = SlicedSession::new(&lanes);
            let mut start = 0;
            let mut split = splits.iter().cycle();
            while start < packed.len() {
                let step = *split.next().expect("cycle never ends");
                let end = (start + step).min(packed.len());
                session.feed((start..end).map(|i| packed.record(i)));
                start = end;
            }
            let got: Vec<RunResult> = session.finish();
            prop_assert_eq!(got, measure_sliced(&packed, &lanes));
        }
    }
}
