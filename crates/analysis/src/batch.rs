//! Batched single-pass measurement over packed traces: the execution
//! engine behind the harness sweeps.
//!
//! The scalar [`measure`](crate::simulate::measure) loop walks the full
//! trace once per predictor configuration; an N-configuration sweep
//! therefore streams the trace N times. [`measure_batch`] instead
//! drives *all* configurations over a single pass of one
//! [`PackedTrace`], blocked so the trace side of the working set stays
//! cache-resident: records are the outer blocks
//! ([`BLOCK_RECORDS`] at a time, ~17 KB of packed columns), predictors
//! the inner loop, so each block is read from cache N times instead of
//! the whole trace being read from memory N times.
//!
//! Results are bit-identical to running the scalar loop per
//! configuration (property-tested in `tests/packed_engine.rs`): the
//! blocked schedule never reorders the per-predictor view of the
//! stream, and [`PackedRecord`](bpred_trace::PackedRecord) replays
//! exactly the (pc, backwardness, outcome) information the scalar loop
//! feeds each predictor.

use bpred_core::Predictor;
use bpred_trace::PackedTrace;

use crate::session::{BatchSession, PackedSession};
use crate::simulate::RunResult;

/// Records per block of the batched drive loop. 4096 records are
/// ~17 KB of packed columns (site ids plus two bit columns) — resident
/// in L1d while every predictor of the batch consumes them.
pub const BLOCK_RECORDS: usize = 4096;

/// Drives `predictor` over a packed trace in program order
/// (predict, then update), exactly like the scalar
/// [`measure`](crate::simulate::measure) over the source trace.
///
/// Thin wrapper over [`PackedSession`]: open, feed the whole trace,
/// finish.
pub fn measure_packed<P: Predictor + ?Sized>(packed: &PackedTrace, predictor: &mut P) -> RunResult {
    let mut session = PackedSession::<_, P>::new(predictor);
    session.feed(packed.records());
    session.finish()
}

/// Like [`measure_packed`], but resets the predictor every
/// `flush_interval` branches — the packed counterpart of
/// [`measure_with_flushes`](crate::simulate::measure_with_flushes).
///
/// Wrapper over [`PackedSession`]: feeds one `flush_interval`-sized
/// window per chunk and resets the resumable predictor state between
/// windows — the chunk boundary *is* the flush boundary.
///
/// # Panics
///
/// Panics if `flush_interval` is zero.
pub fn measure_packed_with_flushes<P: Predictor + ?Sized>(
    packed: &PackedTrace,
    predictor: &mut P,
    flush_interval: u64,
) -> RunResult {
    assert!(flush_interval > 0, "flush interval must be positive");
    let interval = usize::try_from(flush_interval).unwrap_or(usize::MAX);
    let mut session = PackedSession::<_, P>::new(predictor);
    let len = packed.len();
    let mut start = 0;
    while start < len {
        if start > 0 {
            session.predictor_mut().reset();
        }
        let end = start.saturating_add(interval).min(len);
        session.feed((start..end).map(|i| packed.record(i)));
        start = end;
    }
    session.finish()
}

/// Drives every predictor in `predictors` over `packed` in one blocked
/// pass, returning one [`RunResult`] per predictor in input order.
///
/// Each predictor sees the identical program-order stream the scalar
/// loop would feed it; predictors are assumed to start in the state the
/// caller wants measured (normally power-on fresh).
///
/// Loop nesting is records outer, predictors inner: each block is
/// decoded from the bit-packed columns exactly once (not once per
/// predictor), and because the N predictors' predict→update chains are
/// mutually independent, the inner loop gives the core N overlapping
/// dependency chains instead of the scalar loop's single serial one.
/// (Further tiling the predictor axis to keep a few tables L1-resident
/// was measured slower here: the wide interleave's extra independent
/// chains beat the locality win while the tables fit outer cache
/// levels anyway.) Homogeneous batches (`&mut [Gshare]`,
/// `&mut [BiMode]`, …) monomorphise the inner loop with no virtual
/// dispatch; mixed batches work through `Box<dyn Predictor>`.
pub fn measure_batch<P: Predictor>(packed: &PackedTrace, predictors: &mut [P]) -> Vec<RunResult> {
    let mut session = BatchSession::new(predictors);
    let len = packed.len();
    let mut block_start = 0;
    while block_start < len {
        let block_end = (block_start + BLOCK_RECORDS).min(len);
        session.feed((block_start..block_end).map(|i| packed.record(i)));
        block_start = block_end;
    }
    session.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{measure, measure_with_flushes};
    use bpred_core::{AlwaysTaken, BiMode, BiModeConfig, Bimodal, Gshare, PredictorSpec};
    use bpred_trace::{BranchRecord, Trace};

    fn mixed_trace(len: u64) -> Trace {
        let mut t = Trace::new("mixed");
        let mut x = 7u64;
        for i in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pc = 0x4000 + (x % 37) * 4;
            let target = if x.is_multiple_of(3) {
                pc - 0x100
            } else {
                pc + 0x100
            };
            t.push(BranchRecord::conditional(pc, target, (x >> 20) & 1 == 1));
            if i % 11 == 0 {
                t.push(BranchRecord::unconditional(pc + 4, 0x4000));
            }
        }
        t
    }

    #[test]
    fn packed_measure_matches_scalar() {
        let t = mixed_trace(5000);
        let packed = PackedTrace::build(&t).unwrap();
        for spec in [
            "always-taken",
            "btfnt",
            "bimodal:s=6",
            "gshare:s=8,h=8",
            "bimode:d=7",
        ] {
            let spec: PredictorSpec = spec.parse().unwrap();
            let scalar = measure(&t, &mut spec.build());
            let fast = measure_packed(&packed, &mut spec.build());
            assert_eq!(scalar, fast, "spec {spec}");
        }
    }

    #[test]
    fn batch_matches_per_config_scalar_runs() {
        let t = mixed_trace(9000); // spans multiple blocks
        let packed = PackedTrace::build(&t).unwrap();
        let specs = [
            "bimodal:s=6",
            "gshare:s=8,h=8",
            "gshare:s=8,h=2",
            "bimode:d=6",
            "btfnt",
        ];
        let mut batch: Vec<Box<dyn bpred_core::Predictor>> = specs
            .iter()
            .map(|s| s.parse::<PredictorSpec>().unwrap().build())
            .collect();
        let results = measure_batch(&packed, &mut batch);
        for (spec, got) in specs.iter().zip(&results) {
            let want = measure(&t, &mut spec.parse::<PredictorSpec>().unwrap().build());
            assert_eq!(want, *got, "spec {spec}");
        }
    }

    #[test]
    fn batch_handles_empty_inputs() {
        let packed = PackedTrace::build(&Trace::new("empty")).unwrap();
        let mut ps = [Gshare::new(6, 6), Gshare::new(6, 2)];
        let results = measure_batch(&packed, &mut ps);
        assert_eq!(results, [RunResult::default(), RunResult::default()]);

        let packed = PackedTrace::build(&mixed_trace(100)).unwrap();
        let results = measure_batch::<Bimodal>(&packed, &mut []);
        assert!(results.is_empty());
    }

    #[test]
    fn block_boundary_exactness() {
        // Lengths straddling the block size: one under, exact, one over.
        for extra in [-1i64, 0, 1] {
            let len = (BLOCK_RECORDS as i64 + extra) as u64;
            let t: Trace = (0..len)
                .map(|i| BranchRecord::conditional(0x1000 + (i % 5) * 4, 0, i % 7 < 3))
                .collect();
            let packed = PackedTrace::build(&t).unwrap();
            let mut batch = [Gshare::new(7, 7)];
            let got = measure_batch(&packed, &mut batch);
            let want = measure(&t, &mut Gshare::new(7, 7));
            assert_eq!(got, [want], "len {len}");
        }
    }

    #[test]
    fn packed_flushes_match_scalar_flushes() {
        let t = mixed_trace(3000);
        let packed = PackedTrace::build(&t).unwrap();
        for interval in [1u64, 10, 997] {
            let want = measure_with_flushes(
                &t,
                &mut BiMode::new(BiModeConfig::paper_default(7)),
                interval,
            );
            let got = measure_packed_with_flushes(
                &packed,
                &mut BiMode::new(BiModeConfig::paper_default(7)),
                interval,
            );
            assert_eq!(want, got, "interval {interval}");
        }
    }

    #[test]
    #[should_panic(expected = "flush interval")]
    fn zero_flush_interval_is_rejected() {
        let packed = PackedTrace::build(&mixed_trace(10)).unwrap();
        let _ = measure_packed_with_flushes(&packed, &mut AlwaysTaken, 0);
    }
}
