//! Per-site misprediction attribution.
//!
//! The aggregate tallies of [`crate::RunResult`] say *how many*
//! mispredictions a predictor took; a [`SiteTally`] says *where*. Each
//! engine session optionally carries one per configuration and records
//! every retired branch under its static PC, so the dynamic H2P view —
//! which sites concentrate the misses — costs one map update per
//! record and changes nothing about what is measured.
//!
//! Rows come back sorted by PC, exactly the order of
//! [`bpred_trace::stats::site_table`], so a tally lines up
//! index-by-index with the trace's per-site outcome table whenever the
//! whole trace was fed (both are keyed by the same conditional-branch
//! PCs).

use std::collections::BTreeMap;

/// Misprediction summary of one static conditional branch site under
/// one predictor — the predictor-facing twin of
/// [`bpred_trace::stats::SiteSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteMisses {
    /// The site's static byte PC.
    pub pc: u64,
    /// Dynamic executions of the site.
    pub executions: u64,
    /// Executions the predictor got wrong.
    pub mispredictions: u64,
}

/// Per-site running tally of executions and mispredictions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteTally {
    map: BTreeMap<u64, (u64, u64)>,
}

impl SiteTally {
    /// An empty tally.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one retired branch at `pc`.
    pub fn record(&mut self, pc: u64, missed: bool) {
        let slot = self.map.entry(pc).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += u64::from(missed);
    }

    /// The rows accumulated so far, sorted by PC.
    #[must_use]
    pub fn rows(&self) -> Vec<SiteMisses> {
        self.map
            .iter()
            .map(|(&pc, &(executions, mispredictions))| SiteMisses {
                pc,
                executions,
                mispredictions,
            })
            .collect()
    }

    /// Total `(executions, mispredictions)` across every site — must
    /// equal the aggregate session result when the tally saw every
    /// record.
    #[must_use]
    pub fn totals(&self) -> (u64, u64) {
        self.map
            .values()
            .fold((0, 0), |(e, m), &(ex, mi)| (e + ex, m + mi))
    }

    /// Number of distinct sites seen.
    #[must_use]
    pub fn sites(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates_and_sorts_by_pc() {
        let mut t = SiteTally::new();
        t.record(0x200, true);
        t.record(0x100, false);
        t.record(0x200, false);
        t.record(0x100, true);
        t.record(0x100, true);
        let rows = t.rows();
        assert_eq!(
            rows,
            vec![
                SiteMisses {
                    pc: 0x100,
                    executions: 3,
                    mispredictions: 2
                },
                SiteMisses {
                    pc: 0x200,
                    executions: 2,
                    mispredictions: 1
                },
            ]
        );
        assert_eq!(t.totals(), (5, 3));
        assert_eq!(t.sites(), 2);
    }

    #[test]
    fn empty_tally_is_empty() {
        let t = SiteTally::new();
        assert!(t.rows().is_empty());
        assert_eq!(t.totals(), (0, 0));
        assert_eq!(t.sites(), 0);
    }
}
