//! The two-pass substream attribution engine behind Figures 5–8 and
//! Table 4.
//!
//! Pass 1 simulates the predictor and accumulates [`StreamStats`] for
//! every (static branch, consulted counter) pair. Pass 2 re-simulates
//! from an identical power-on state — predictors are deterministic, so
//! every access consults the same counter — and attributes each access,
//! misprediction, and bias-class change to the class its substream
//! belongs to.

use std::collections::HashMap;

use bpred_core::Predictor;
use bpred_trace::Trace;

use crate::bias::{BiasClass, StreamStats};
use crate::simulate::RunResult;

/// Per-counter access totals split by the bias class of the incoming
/// substreams — one bar of Figure 5/6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterBias {
    /// Accesses from strongly-taken substreams.
    pub st: u64,
    /// Accesses from strongly-not-taken substreams.
    pub snt: u64,
    /// Accesses from weakly-biased substreams.
    pub wb: u64,
}

impl CounterBias {
    /// Total accesses at this counter.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.st + self.snt + self.wb
    }

    /// The dominant strong class at this counter (the more frequent of
    /// ST and SNT; ties go to ST as the paper's initialisation leans
    /// taken).
    #[must_use]
    pub fn dominant_class(&self) -> BiasClass {
        if self.st >= self.snt {
            BiasClass::StronglyTaken
        } else {
            BiasClass::StronglyNotTaken
        }
    }

    /// Normalized (fractional) counts `(dominant, non_dominant, wb)`.
    /// Returns zeros for an untouched counter.
    #[must_use]
    pub fn normalized(&self) -> (f64, f64, f64) {
        let total = self.total();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let (dom, non) = if self.st >= self.snt {
            (self.st, self.snt)
        } else {
            (self.snt, self.st)
        };
        let t = total as f64;
        (dom as f64 / t, non as f64 / t, self.wb as f64 / t)
    }
}

/// Table 4: counts of bias-class changes at the counters, attributed to
/// the (counter-relative) role of the class whose run was interrupted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassChanges {
    /// Interrupted runs of each counter's dominant class.
    pub dominant: u64,
    /// Interrupted runs of the non-dominant strong class.
    pub non_dominant: u64,
    /// Interrupted runs of weakly-biased substream accesses.
    pub wb: u64,
}

impl ClassChanges {
    /// Total class changes across all counters.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.dominant + self.non_dominant + self.wb
    }
}

/// Figures 7/8: mispredictions attributed to the bias class of the
/// substream they occurred in, as fractions of all dynamic conditional
/// branches (so the three components sum to the misprediction rate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MispredictionBreakdown {
    /// Mispredictions in strongly-taken substreams.
    pub st: u64,
    /// Mispredictions in strongly-not-taken substreams.
    pub snt: u64,
    /// Mispredictions in weakly-biased substreams.
    pub wb: u64,
    /// All dynamic conditional branches (the denominator).
    pub branches: u64,
}

impl MispredictionBreakdown {
    /// Percent of all branches mispredicted within ST substreams.
    #[must_use]
    pub fn st_percent(&self) -> f64 {
        self.percent(self.st)
    }

    /// Percent of all branches mispredicted within SNT substreams.
    #[must_use]
    pub fn snt_percent(&self) -> f64 {
        self.percent(self.snt)
    }

    /// Percent of all branches mispredicted within WB substreams.
    #[must_use]
    pub fn wb_percent(&self) -> f64 {
        self.percent(self.wb)
    }

    /// Total misprediction rate in percent (the stacked-bar height).
    #[must_use]
    pub fn total_percent(&self) -> f64 {
        self.percent(self.st + self.snt + self.wb)
    }

    fn percent(&self, n: u64) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            100.0 * n as f64 / self.branches as f64
        }
    }
}

/// The complete two-pass analysis of one (trace, predictor) pair.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// One entry per counter the predictor exposes, indexed by
    /// [`CounterId`](bpred_core::CounterId).
    pub per_counter: Vec<CounterBias>,
    /// Table 4 class-change counts.
    pub class_changes: ClassChanges,
    /// Figure 7/8 misprediction attribution.
    pub breakdown: MispredictionBreakdown,
    /// Plain accuracy numbers from the attribution pass.
    pub run: RunResult,
    /// Number of distinct (branch, counter) substreams observed.
    pub streams: usize,
}

impl Analysis {
    /// Runs the two-pass analysis. `make` must build a *fresh* predictor
    /// at its power-on state; it is called twice and both instances must
    /// behave identically (all predictors in `bpred-core` do).
    ///
    /// # Panics
    ///
    /// Panics if the predictor does not expose identifiable counters
    /// (`num_counters() == 0`), or if the two passes disagree on a
    /// counter id (a non-deterministic predictor).
    pub fn run<P, F>(trace: &Trace, make: F) -> Analysis
    where
        P: Predictor,
        F: Fn() -> P,
    {
        // ---- pass 1: collect substream statistics ----
        let started = std::time::Instant::now();
        let mut predictor = make();
        let num_counters = predictor.num_counters();
        assert!(
            num_counters > 0,
            "bias analysis needs identifiable counters; {} has none",
            predictor.name()
        );
        let mut streams: HashMap<(u64, usize), StreamStats> = HashMap::new();
        for record in trace.conditional() {
            let counter = predictor
                .counter_id(record.pc)
                .expect("num_counters > 0 implies counter_id is Some"); // panic-audited: num_counters() > 0 guard at entry implies table-backed counter_id
            streams
                .entry((record.pc, counter))
                .or_default()
                .record(record.taken);
            predictor.update(record.pc, record.taken);
        }

        // ---- pass 2: attribute accesses, misses, and changes ----
        let mut predictor = make();
        let mut per_counter = vec![CounterBias::default(); num_counters];
        let mut last_class: Vec<Option<BiasClass>> = vec![None; num_counters];
        let mut change_runs: Vec<u64> = vec![0; 3]; // interrupted runs by absolute class
        let mut changes_at: HashMap<usize, [u64; 3]> = HashMap::new();
        let mut breakdown = MispredictionBreakdown::default();
        let mut run = RunResult::default();

        for record in trace.conditional() {
            let counter = predictor
                .counter_id(record.pc)
                .expect("num_counters > 0 implies counter_id is Some"); // panic-audited: num_counters() > 0 guard at entry implies table-backed counter_id
            assert!(
                counter < num_counters,
                "pass 2 diverged: counter {counter} out of range"
            );
            let class = streams
                .get(&(record.pc, counter))
                .expect("pass 2 diverged: unseen substream") // panic-audited: pass 1 visited every (pc, counter) pass 2 can see
                .class();

            let bucket = &mut per_counter[counter];
            match class {
                BiasClass::StronglyTaken => bucket.st += 1,
                BiasClass::StronglyNotTaken => bucket.snt += 1,
                BiasClass::WeaklyBiased => bucket.wb += 1,
            }

            // Class-change accounting: a change interrupts the previous
            // class's run at this counter.
            if let Some(prev) = last_class[counter] {
                if prev != class {
                    let slot = match prev {
                        BiasClass::StronglyTaken => 0,
                        BiasClass::StronglyNotTaken => 1,
                        BiasClass::WeaklyBiased => 2,
                    };
                    change_runs[slot] += 1;
                    changes_at.entry(counter).or_default()[slot] += 1;
                }
            }
            last_class[counter] = Some(class);

            run.branches += 1;
            breakdown.branches += 1;
            let predicted = predictor.predict(record.pc);
            if predicted != record.taken {
                run.mispredictions += 1;
                match class {
                    BiasClass::StronglyTaken => breakdown.st += 1,
                    BiasClass::StronglyNotTaken => breakdown.snt += 1,
                    BiasClass::WeaklyBiased => breakdown.wb += 1,
                }
            }
            predictor.update(record.pc, record.taken);
        }

        // Re-bucket the change counts into counter-relative roles
        // (dominant / non-dominant / WB) now that dominance is known.
        let mut class_changes = ClassChanges::default();
        for (counter, counts) in &changes_at {
            let dominant = per_counter[*counter].dominant_class();
            for (slot, &count) in counts.iter().enumerate() {
                let class = [
                    BiasClass::StronglyTaken,
                    BiasClass::StronglyNotTaken,
                    BiasClass::WeaklyBiased,
                ][slot];
                if class == BiasClass::WeaklyBiased {
                    class_changes.wb += count;
                } else if class == dominant {
                    class_changes.dominant += count;
                } else {
                    class_changes.non_dominant += count;
                }
            }
        }

        // Both passes walk every conditional branch with one config.
        crate::metrics::record_engine_drive(
            crate::metrics::Engine::Scalar,
            2 * run.branches,
            1,
            started.elapsed(),
        );

        Analysis {
            per_counter,
            class_changes,
            breakdown,
            run,
            streams: streams.len(),
        }
    }

    /// Counters sorted by descending WB fraction, then descending
    /// non-dominant fraction — the X-axis ordering of Figures 5 and 6.
    #[must_use]
    pub fn sorted_for_figure(&self) -> Vec<(usize, CounterBias)> {
        let mut rows: Vec<(usize, CounterBias)> =
            self.per_counter.iter().copied().enumerate().collect();
        rows.sort_by(|a, b| {
            let (_, na, wa) = a.1.normalized();
            let (_, nb, wb) = b.1.normalized();
            wb.partial_cmp(&wa)
                .expect("fractions are finite") // panic-audited: normalized() fractions are ratios of finite counts, never NaN
                .then(nb.partial_cmp(&na).expect("fractions are finite")) // panic-audited: normalized() fractions are ratios of finite counts, never NaN
                .then(a.0.cmp(&b.0))
        });
        rows
    }

    /// Aggregate access-weighted fractions `(dominant, non_dominant,
    /// wb)` over all counters — the "area sizes" the paper's prose
    /// compares between Figures 5 and 6.
    #[must_use]
    pub fn area_fractions(&self) -> (f64, f64, f64) {
        let (mut dom, mut non, mut wb) = (0u64, 0u64, 0u64);
        for c in &self.per_counter {
            let (d, n) = if c.st >= c.snt {
                (c.st, c.snt)
            } else {
                (c.snt, c.st)
            };
            dom += d;
            non += n;
            wb += c.wb;
        }
        let total = (dom + non + wb) as f64;
        if total == 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (dom as f64 / total, non as f64 / total, wb as f64 / total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_core::{BiMode, BiModeConfig, Bimodal, Gshare};
    use bpred_trace::BranchRecord;

    /// Two opposite-biased branches aliasing onto one bimodal counter.
    fn aliased_trace() -> Trace {
        let s = 4u32;
        let a = 0x1000u64;
        let b = a + (1u64 << (s + 2));
        let mut t = Trace::new("alias");
        for _ in 0..200 {
            t.push(BranchRecord::conditional(a, 0, true));
            t.push(BranchRecord::conditional(b, 0, false));
        }
        t
    }

    #[test]
    fn detects_destructive_aliasing_as_mixed_counter() {
        let t = aliased_trace();
        let analysis = Analysis::run(&t, || Gshare::new(4, 0));
        // One counter sees both an ST and an SNT substream, 50/50.
        let mixed: Vec<&CounterBias> = analysis
            .per_counter
            .iter()
            .filter(|c| c.st > 0 && c.snt > 0)
            .collect();
        assert_eq!(mixed.len(), 1);
        let (dom, non, wb) = mixed[0].normalized();
        assert!((dom - 0.5).abs() < 1e-12);
        assert!((non - 0.5).abs() < 1e-12);
        assert_eq!(wb, 0.0);
        assert_eq!(analysis.streams, 2);
    }

    #[test]
    fn aliased_counter_produces_class_changes_and_misses() {
        let t = aliased_trace();
        let analysis = Analysis::run(&t, || Gshare::new(4, 0));
        // The two streams strictly alternate: ~399 changes.
        assert!(analysis.class_changes.total() >= 398);
        // Attribution: the SNT stream eats the mispredictions (the
        // counter oscillates between weakly/strongly taken).
        assert!(analysis.breakdown.snt > 150);
        assert_eq!(analysis.breakdown.wb, 0);
        assert_eq!(
            analysis.run.mispredictions,
            analysis.breakdown.st + analysis.breakdown.snt + analysis.breakdown.wb
        );
    }

    #[test]
    fn bimode_separates_the_same_aliases() {
        let t = aliased_trace();
        let analysis = Analysis::run(&t, || BiMode::new(BiModeConfig::new(4, 8, 0)));
        // Until the choice predictor steers the not-taken branch to bank
        // 0 (a couple of accesses), the taken bank briefly sees both
        // streams; after that no counter mixes strong classes. So the
        // minority share at every counter must be a transient, not the
        // persistent 50% gshare suffers.
        for c in &analysis.per_counter {
            let minority = c.st.min(c.snt);
            assert!(minority <= 3, "persistent class mixing at a counter: {c:?}");
        }
        assert!(analysis.class_changes.total() <= 4);
        assert!(analysis.run.mispredictions < 10);
    }

    #[test]
    fn weakly_biased_stream_is_classified_wb() {
        let mut t = Trace::new("wb");
        for i in 0..100 {
            t.push(BranchRecord::conditional(0x40, 0, i % 2 == 0));
        }
        let analysis = Analysis::run(&t, || Bimodal::new(4));
        let total_wb: u64 = analysis.per_counter.iter().map(|c| c.wb).sum();
        assert_eq!(total_wb, 100);
        let (_, _, wb_area) = analysis.area_fractions();
        assert!((wb_area - 1.0).abs() < 1e-12);
        assert_eq!(analysis.breakdown.wb, analysis.run.mispredictions);
    }

    #[test]
    fn attribution_pass_matches_plain_measurement() {
        let t = aliased_trace();
        let analysis = Analysis::run(&t, || Gshare::new(6, 4));
        let plain = crate::simulate::measure(&t, &mut Gshare::new(6, 4));
        assert_eq!(
            analysis.run, plain,
            "two-pass must not perturb the simulation"
        );
    }

    #[test]
    fn figure_sort_puts_wb_heavy_counters_first() {
        let mut t = Trace::new("mix");
        // Branch A alternates (WB) on one counter; branch B is ST on
        // another.
        for i in 0..100 {
            t.push(BranchRecord::conditional(0x40, 0, i % 2 == 0));
            t.push(BranchRecord::conditional(0x44, 0, true));
        }
        let analysis = Analysis::run(&t, || Bimodal::new(4));
        let sorted = analysis.sorted_for_figure();
        let (_, _, first_wb) = sorted[0].1.normalized();
        assert!(
            (first_wb - 1.0).abs() < 1e-12,
            "WB-heavy counter must sort first"
        );
    }

    #[test]
    fn dominant_class_tie_break_prefers_taken() {
        let c = CounterBias {
            st: 5,
            snt: 5,
            wb: 0,
        };
        assert_eq!(c.dominant_class(), BiasClass::StronglyTaken);
    }

    #[test]
    #[should_panic(expected = "identifiable counters")]
    fn rejects_predictors_without_counters() {
        let t = aliased_trace();
        let _ = Analysis::run(&t, || bpred_core::AlwaysTaken);
    }

    #[test]
    fn breakdown_percentages_sum_to_total() {
        let t = aliased_trace();
        let a = Analysis::run(&t, || Gshare::new(5, 3));
        let sum = a.breakdown.st_percent() + a.breakdown.snt_percent() + a.breakdown.wb_percent();
        assert!((sum - a.breakdown.total_percent()).abs() < 1e-9);
        assert!((a.breakdown.total_percent() - a.run.misprediction_percent()).abs() < 1e-9);
    }
}
