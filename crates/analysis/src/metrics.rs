//! Process-wide drive counters for the observability layer, broken
//! down by execution engine.
//!
//! Every measurement loop in this crate ([`measure`](crate::measure),
//! [`measure_packed`](crate::measure_packed),
//! [`measure_batch`](crate::measure_batch),
//! [`measure_sliced`](crate::measure_sliced) and the flush variants)
//! records, against its [`Engine`]: how many (lane, branch) pairs it
//! simulated, how many predictor lanes it retired, and how long the
//! loop itself ran (busy time). The counters are global, monotone,
//! and lock-free; callers attribute work to a stage by taking an
//! [`engine_snapshot`] before and after and differencing with
//! [`EngineSnapshot::since`].
//!
//! Accounting is **per lane retired, not per pass**: a batch pass
//! driving 24 configurations records 24 lanes, a sliced pass over a
//! 64-lane group records 64, and a scalar pass records 1 — so
//! `branches / busy` (see [`EngineDrive::mbranches_per_sec`]) is
//! comparable across scalar, packed, batch and sliced engines. Busy
//! time is summed across threads, making the figure a per-core
//! throughput independent of `--jobs`.
//!
//! Relaxed atomics suffice: the counters are statistics, not
//! synchronisation, and each is independently monotone. The aggregate
//! [`snapshot`] is *derived* from the per-engine slots (never stored
//! separately), so engine totals always sum exactly to the global
//! totals — an invariant the manifest validator checks per stage.

use std::time::Duration;

// `bpred-analysis` sits below the harness in the dependency graph, so
// it imports the sync facade from `bpred_race` directly (the harness's
// `crate::sync` re-exports the same module).
use bpred_race::sync::{AtomicU64, Ordering};

/// The measurement loops that can drive predictors, in the order they
/// were introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Per-config walks of an unpacked [`Trace`](bpred_trace::Trace):
    /// [`measure`](crate::measure) and friends, plus the warmup,
    /// aliasing and two-pass analysis loops.
    Scalar,
    /// Per-config walks of a [`PackedTrace`](bpred_trace::PackedTrace):
    /// [`measure_packed`](crate::measure_packed) and its flush variant.
    Packed,
    /// The blocked all-configs-in-one-pass loop
    /// [`measure_batch`](crate::measure_batch).
    Batch,
    /// The bit-sliced plane engine
    /// [`measure_sliced`](crate::measure_sliced).
    Sliced,
}

impl Engine {
    /// All engines, in display order.
    pub const ALL: [Engine; 4] = [
        Engine::Scalar,
        Engine::Packed,
        Engine::Batch,
        Engine::Sliced,
    ];

    /// The engine's lower-case label, used in notes and manifests.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Engine::Scalar => "scalar",
            Engine::Packed => "packed",
            Engine::Batch => "batch",
            Engine::Sliced => "sliced",
        }
    }

    fn slot(self) -> usize {
        match self {
            Engine::Scalar => 0,
            Engine::Packed => 1,
            Engine::Batch => 2,
            Engine::Sliced => 3,
        }
    }
}

struct Slot {
    branches: AtomicU64,
    lanes: AtomicU64,
    busy_nanos: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)] // const is an array seed, not shared state
const EMPTY_SLOT: Slot = Slot {
    branches: AtomicU64::new(0),
    lanes: AtomicU64::new(0),
    busy_nanos: AtomicU64::new(0),
};

static SLOTS: [Slot; 4] = [EMPTY_SLOT; 4];

/// One engine's cumulative (or differenced) drive counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineDrive {
    /// (lane, branch) pairs simulated.
    pub branches: u64,
    /// Predictor lanes retired — one per configuration per trace pass,
    /// regardless of how many rode a shared pass.
    pub lanes: u64,
    /// Nanoseconds the measurement loops spent, summed across threads.
    pub busy_nanos: u64,
}

impl EngineDrive {
    /// The work recorded between `earlier` and `self`.
    #[must_use]
    pub fn since(&self, earlier: &EngineDrive) -> EngineDrive {
        EngineDrive {
            branches: self.branches.saturating_sub(earlier.branches),
            lanes: self.lanes.saturating_sub(earlier.lanes),
            busy_nanos: self.busy_nanos.saturating_sub(earlier.busy_nanos),
        }
    }

    /// Component-wise sum.
    #[must_use]
    pub fn plus(&self, other: &EngineDrive) -> EngineDrive {
        EngineDrive {
            branches: self.branches + other.branches,
            lanes: self.lanes + other.lanes,
            busy_nanos: self.busy_nanos + other.busy_nanos,
        }
    }

    /// Busy time in seconds.
    #[must_use]
    pub fn busy_seconds(&self) -> f64 {
        self.busy_nanos as f64 / 1e9
    }

    /// Millions of (lane, branch) pairs retired per busy second — the
    /// per-core throughput figure, comparable across engines. Zero when
    /// the engine did no timed work.
    #[must_use]
    pub fn mbranches_per_sec(&self) -> f64 {
        if self.busy_nanos == 0 {
            0.0
        } else {
            self.branches as f64 * 1e3 / self.busy_nanos as f64
        }
    }
}

/// A point-in-time (or differenced) reading of every engine's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineSnapshot {
    per: [EngineDrive; 4],
}

impl EngineSnapshot {
    /// A snapshot with `drive` attributed to `engine` and every other
    /// engine idle (fixtures and tests).
    #[must_use]
    pub fn of(engine: Engine, drive: EngineDrive) -> EngineSnapshot {
        let mut out = EngineSnapshot::default();
        out.per[engine.slot()] = drive;
        out
    }

    /// One engine's counters.
    #[must_use]
    pub fn get(&self, engine: Engine) -> EngineDrive {
        self.per[engine.slot()]
    }

    /// The work recorded between `earlier` and `self`, per engine.
    #[must_use]
    pub fn since(&self, earlier: &EngineSnapshot) -> EngineSnapshot {
        let mut out = EngineSnapshot::default();
        for engine in Engine::ALL {
            out.per[engine.slot()] = self.get(engine).since(&earlier.get(engine));
        }
        out
    }

    /// Component-wise sum, for totalling stages.
    #[must_use]
    pub fn plus(&self, other: &EngineSnapshot) -> EngineSnapshot {
        let mut out = EngineSnapshot::default();
        for engine in Engine::ALL {
            out.per[engine.slot()] = self.get(engine).plus(&other.get(engine));
        }
        out
    }

    /// Iterates engines with their counters, in display order.
    pub fn iter(&self) -> impl Iterator<Item = (Engine, EngineDrive)> + '_ {
        Engine::ALL.into_iter().map(|e| (e, self.get(e)))
    }

    /// The aggregate view: engine branches and lanes summed into the
    /// legacy [`DriveSnapshot`] shape.
    #[must_use]
    pub fn total(&self) -> DriveSnapshot {
        let mut total = DriveSnapshot::default();
        for drive in self.per {
            total.branches += drive.branches;
            total.configs += drive.lanes;
        }
        total
    }
}

/// A point-in-time reading of the aggregate drive counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriveSnapshot {
    /// Total (lane, branch) pairs simulated so far.
    pub branches: u64,
    /// Total predictor lanes retired so far (historically "configs").
    pub configs: u64,
}

impl DriveSnapshot {
    /// The work recorded between `earlier` and `self`.
    #[must_use]
    pub fn since(&self, earlier: &DriveSnapshot) -> DriveSnapshot {
        DriveSnapshot {
            branches: self.branches.saturating_sub(earlier.branches),
            configs: self.configs.saturating_sub(earlier.configs),
        }
    }
}

/// Records one drive against `engine`: `branches` (lane, branch) pairs
/// across `lanes` retired predictor lanes, taking `busy` of loop time.
pub fn record_engine_drive(engine: Engine, branches: u64, lanes: u64, busy: Duration) {
    // Each counter is an independently monotone statistic: readers
    // difference snapshots and never use one counter to synchronize
    // access to another, so Relaxed suffices on every access — the
    // race/metrics model checks exactly this no-lost-updates /
    // no-negative-deltas contract under all schedules.
    let slot = &SLOTS[engine.slot()];
    slot.branches.fetch_add(branches, Ordering::Relaxed); // ordering-audited: monotone statistic, see above
    slot.lanes.fetch_add(lanes, Ordering::Relaxed); // ordering-audited: monotone statistic, see above
    let nanos = u64::try_from(busy.as_nanos()).unwrap_or(u64::MAX);
    slot.busy_nanos.fetch_add(nanos, Ordering::Relaxed); // ordering-audited: monotone statistic, see above
}

/// Records one untimed scalar drive. Kept for analysis loops whose
/// per-iteration work is not a plain measurement pass; their busy time
/// is attributed by the caller when it matters.
pub fn record_drive(branches: u64, configs: u64) {
    record_engine_drive(Engine::Scalar, branches, configs, Duration::ZERO);
}

/// Reads the current per-engine counter values.
#[must_use]
pub fn engine_snapshot() -> EngineSnapshot {
    let mut out = EngineSnapshot::default();
    for engine in Engine::ALL {
        let slot = &SLOTS[engine.slot()];
        out.per[engine.slot()] = EngineDrive {
            // A snapshot is three independent reads, not an atomic
            // triple: deltas of each component stay non-negative
            // because each counter is monotone (race/metrics checks
            // the snapshot contract under all schedules).
            branches: slot.branches.load(Ordering::Relaxed), // ordering-audited: monotone statistic, see `record_engine_drive`
            lanes: slot.lanes.load(Ordering::Relaxed), // ordering-audited: monotone statistic, see `record_engine_drive`
            busy_nanos: slot.busy_nanos.load(Ordering::Relaxed), // ordering-audited: monotone statistic, see `record_engine_drive`
        };
    }
    out
}

/// Reads the aggregate counter values (derived from the per-engine
/// slots, so engine breakdowns always sum to this total).
#[must_use]
pub fn snapshot() -> DriveSnapshot {
    engine_snapshot().total()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counters are process-global and other tests drive them
    // concurrently, so assertions are on deltas and monotonicity only.

    #[test]
    fn record_advances_both_counters() {
        let before = snapshot();
        record_drive(1000, 3);
        let delta = snapshot().since(&before);
        assert!(delta.branches >= 1000);
        assert!(delta.configs >= 3);
    }

    #[test]
    fn engine_drives_land_in_their_own_slot() {
        let before = engine_snapshot();
        record_engine_drive(Engine::Sliced, 640, 64, Duration::from_micros(5));
        let delta = engine_snapshot().since(&before);
        let sliced = delta.get(Engine::Sliced);
        assert!(sliced.branches >= 640);
        assert!(sliced.lanes >= 64);
        assert!(sliced.busy_nanos >= 5000);
    }

    #[test]
    fn totals_are_the_sum_of_engines() {
        let snap = engine_snapshot();
        let total = snap.total();
        let branches: u64 = Engine::ALL.iter().map(|&e| snap.get(e).branches).sum();
        let lanes: u64 = Engine::ALL.iter().map(|&e| snap.get(e).lanes).sum();
        assert_eq!(total.branches, branches);
        assert_eq!(total.configs, lanes);
    }

    #[test]
    fn equal_work_records_equal_lane_totals_across_engines() {
        // Regression: lanes are counted per lane retired, not per pass.
        // Three configurations over one 1000-branch trace must account
        // identically whether driven one-at-a-time or fused.
        let before = engine_snapshot();
        for _ in 0..3 {
            record_engine_drive(Engine::Packed, 1000, 1, Duration::from_micros(1));
        }
        record_engine_drive(Engine::Batch, 3000, 3, Duration::from_micros(1));
        record_engine_drive(Engine::Sliced, 3000, 3, Duration::from_micros(1));
        let delta = engine_snapshot().since(&before);
        let packed = delta.get(Engine::Packed);
        let batch = delta.get(Engine::Batch);
        let sliced = delta.get(Engine::Sliced);
        assert!(packed.branches >= 3000 && packed.lanes >= 3);
        assert!(batch.branches >= 3000 && batch.lanes >= 3);
        assert!(sliced.branches >= 3000 && sliced.lanes >= 3);
    }

    #[test]
    fn throughput_is_branches_over_busy_time() {
        let drive = EngineDrive {
            branches: 100_000_000,
            lanes: 10,
            busy_nanos: 1_000_000_000,
        };
        assert!((drive.mbranches_per_sec() - 100.0).abs() < 1e-9);
        assert_eq!(EngineDrive::default().mbranches_per_sec(), 0.0);
    }

    #[test]
    fn since_saturates_rather_than_wrapping() {
        let newer = DriveSnapshot {
            branches: 5,
            configs: 1,
        };
        let older = DriveSnapshot {
            branches: 9,
            configs: 4,
        };
        assert_eq!(newer.since(&older), DriveSnapshot::default());
        assert_eq!(
            older.since(&newer),
            DriveSnapshot {
                branches: 4,
                configs: 3
            }
        );
    }

    #[test]
    fn measurement_loops_feed_the_counters() {
        use bpred_core::Gshare;
        use bpred_trace::{BranchRecord, PackedTrace, Trace};
        let t: Trace = (0..500u64)
            .map(|i| BranchRecord::conditional(0x1000 + (i % 7) * 4, 0, i % 3 == 0))
            .collect();
        let packed = PackedTrace::build(&t).expect("7 sites fit");

        let before = engine_snapshot();
        let _ = crate::measure(&t, &mut Gshare::new(6, 6));
        let _ = crate::measure_packed(&packed, &mut Gshare::new(6, 6));
        let _ = crate::measure_batch(&packed, &mut [Gshare::new(6, 6), Gshare::new(6, 2)]);
        let delta = engine_snapshot().since(&before);
        assert!(delta.get(Engine::Scalar).branches >= 500, "got {delta:?}");
        assert!(delta.get(Engine::Packed).branches >= 500, "got {delta:?}");
        assert!(delta.get(Engine::Batch).branches >= 1000, "got {delta:?}");
        assert!(delta.get(Engine::Batch).lanes >= 2, "got {delta:?}");
        let total = snapshot().since(&before.total());
        assert!(total.branches >= 500 * 4, "got {total:?}");
        assert!(total.configs >= 4, "got {total:?}");
    }
}
