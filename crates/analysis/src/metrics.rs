//! Process-wide drive counters for the observability layer.
//!
//! Every measurement loop in this crate ([`measure`](crate::measure),
//! [`measure_packed`](crate::measure_packed),
//! [`measure_batch`](crate::measure_batch) and the flush variants)
//! records how many (configuration, branch) pairs it simulated and how
//! many predictor configurations it drove. The counters are global,
//! monotone, and lock-free; callers attribute work to a stage by taking
//! a [`snapshot`] before and after and differencing with
//! [`DriveSnapshot::since`].
//!
//! Relaxed atomics suffice: the counters are statistics, not
//! synchronisation, and each is independently monotone.

use std::sync::atomic::{AtomicU64, Ordering};

static BRANCHES: AtomicU64 = AtomicU64::new(0);
static CONFIGS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the global drive counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriveSnapshot {
    /// Total (configuration, branch) pairs simulated so far.
    pub branches: u64,
    /// Total predictor configurations driven so far.
    pub configs: u64,
}

impl DriveSnapshot {
    /// The work recorded between `earlier` and `self`.
    #[must_use]
    pub fn since(&self, earlier: &DriveSnapshot) -> DriveSnapshot {
        DriveSnapshot {
            branches: self.branches.saturating_sub(earlier.branches),
            configs: self.configs.saturating_sub(earlier.configs),
        }
    }
}

/// Records one drive: `branches` (configuration, branch) pairs across
/// `configs` predictor configurations.
pub fn record_drive(branches: u64, configs: u64) {
    BRANCHES.fetch_add(branches, Ordering::Relaxed);
    CONFIGS.fetch_add(configs, Ordering::Relaxed);
}

/// Reads the current counter values.
#[must_use]
pub fn snapshot() -> DriveSnapshot {
    DriveSnapshot {
        branches: BRANCHES.load(Ordering::Relaxed),
        configs: CONFIGS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counters are process-global and other tests drive them
    // concurrently, so assertions are on deltas and monotonicity only.

    #[test]
    fn record_advances_both_counters() {
        let before = snapshot();
        record_drive(1000, 3);
        let delta = snapshot().since(&before);
        assert!(delta.branches >= 1000);
        assert!(delta.configs >= 3);
    }

    #[test]
    fn since_saturates_rather_than_wrapping() {
        let newer = DriveSnapshot {
            branches: 5,
            configs: 1,
        };
        let older = DriveSnapshot {
            branches: 9,
            configs: 4,
        };
        assert_eq!(newer.since(&older), DriveSnapshot::default());
        assert_eq!(
            older.since(&newer),
            DriveSnapshot {
                branches: 4,
                configs: 3
            }
        );
    }

    #[test]
    fn measurement_loops_feed_the_counters() {
        use bpred_core::Gshare;
        use bpred_trace::{BranchRecord, PackedTrace, Trace};
        let t: Trace = (0..500u64)
            .map(|i| BranchRecord::conditional(0x1000 + (i % 7) * 4, 0, i % 3 == 0))
            .collect();
        let packed = PackedTrace::build(&t).expect("7 sites fit");

        let before = snapshot();
        let _ = crate::measure(&t, &mut Gshare::new(6, 6));
        let _ = crate::measure_packed(&packed, &mut Gshare::new(6, 6));
        let _ = crate::measure_batch(&packed, &mut [Gshare::new(6, 6), Gshare::new(6, 2)]);
        let delta = snapshot().since(&before);
        assert!(delta.branches >= 500 * 4, "got {delta:?}");
        assert!(delta.configs >= 4, "got {delta:?}");
    }
}
