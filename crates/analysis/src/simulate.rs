//! Plain trace-driven measurement: the inner loop of every sweep in
//! Figures 2–4.

use bpred_core::Predictor;
use bpred_trace::Trace;

/// The outcome of driving one predictor over one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunResult {
    /// Conditional branches simulated.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredictions: u64,
}

impl RunResult {
    /// Misprediction rate in `[0, 1]`; 0 for an empty run.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }

    /// Misprediction rate in percent, as the paper's figures report.
    #[must_use]
    pub fn misprediction_percent(&self) -> f64 {
        100.0 * self.misprediction_rate()
    }
}

/// Drives `predictor` over the conditional branches of `trace` in
/// program order (predict, then update with the architectural outcome),
/// exactly the paper's trace-driven methodology.
pub fn measure<P: Predictor + ?Sized>(trace: &Trace, predictor: &mut P) -> RunResult {
    let started = std::time::Instant::now();
    let mut result = RunResult::default();
    for record in trace.conditional() {
        result.branches += 1;
        let predicted = predictor.predict_with_target(record.pc, record.target);
        result.mispredictions += u64::from(predicted != record.taken);
        predictor.update(record.pc, record.taken);
    }
    crate::metrics::record_engine_drive(
        crate::metrics::Engine::Scalar,
        result.branches,
        1,
        started.elapsed(),
    );
    result
}

/// Like [`measure`], but resets the predictor to its power-on state
/// every `flush_interval` conditional branches — a simple model of
/// predictor-state loss across context switches, relevant to the IBS
/// traces which interleave kernel and user activity.
///
/// # Panics
///
/// Panics if `flush_interval` is zero.
pub fn measure_with_flushes<P: Predictor + ?Sized>(
    trace: &Trace,
    predictor: &mut P,
    flush_interval: u64,
) -> RunResult {
    assert!(flush_interval > 0, "flush interval must be positive");
    let started = std::time::Instant::now();
    let mut result = RunResult::default();
    for record in trace.conditional() {
        if result.branches > 0 && result.branches.is_multiple_of(flush_interval) {
            predictor.reset();
        }
        result.branches += 1;
        let predicted = predictor.predict_with_target(record.pc, record.target);
        result.mispredictions += u64::from(predicted != record.taken);
        predictor.update(record.pc, record.taken);
    }
    crate::metrics::record_engine_drive(
        crate::metrics::Engine::Scalar,
        result.branches,
        1,
        started.elapsed(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_core::{AlwaysTaken, Bimodal};
    use bpred_trace::BranchRecord;

    fn trace_of(outcomes: &[bool]) -> Trace {
        outcomes
            .iter()
            .map(|&t| BranchRecord::conditional(0x40, 0x80, t))
            .collect()
    }

    #[test]
    fn always_taken_scores_the_taken_rate() {
        let t = trace_of(&[true, true, false, true]);
        let r = measure(&t, &mut AlwaysTaken);
        assert_eq!(r.branches, 4);
        assert_eq!(r.mispredictions, 1);
        assert!((r.misprediction_rate() - 0.25).abs() < 1e-12);
        assert!((r.misprediction_percent() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn bimodal_warms_up_then_tracks() {
        // All-taken stream: weakly-taken init predicts correctly from
        // the start.
        let t = trace_of(&[true; 100]);
        let r = measure(&t, &mut Bimodal::new(4));
        assert_eq!(r.mispredictions, 0);
        // All-not-taken: one miss while the counter swings.
        let t = trace_of(&[false; 100]);
        let r = measure(&t, &mut Bimodal::new(4));
        assert_eq!(r.mispredictions, 1);
    }

    #[test]
    fn unconditional_branches_are_not_measured() {
        let mut t = trace_of(&[true, true]);
        t.push(BranchRecord::unconditional(0x100, 0x200));
        let r = measure(&t, &mut AlwaysTaken);
        assert_eq!(r.branches, 2);
    }

    #[test]
    fn empty_trace_yields_zero_rate() {
        let r = measure(&Trace::new("e"), &mut AlwaysTaken);
        assert_eq!(r.misprediction_rate(), 0.0);
    }

    #[test]
    fn flushes_reset_learned_state() {
        use bpred_core::Gshare;
        // A biased branch: without flushes nearly perfect; with a tiny
        // flush interval, the warm-up cost recurs.
        let t = trace_of(&[false; 1000]);
        let plain = measure(&t, &mut Bimodal::new(4));
        let flushed = measure_with_flushes(&t, &mut Bimodal::new(4), 10);
        assert_eq!(plain.mispredictions, 1);
        assert!(
            flushed.mispredictions >= 90,
            "each flush must cost a warm-up miss: {}",
            flushed.mispredictions
        );
        // A huge interval is equivalent to no flushes at all.
        let huge = measure_with_flushes(&t, &mut Gshare::new(6, 6), 1_000_000);
        let plain_g = measure(&t, &mut Gshare::new(6, 6));
        assert_eq!(huge, plain_g);
    }

    #[test]
    #[should_panic(expected = "flush interval")]
    fn zero_flush_interval_is_rejected() {
        let t = trace_of(&[true]);
        let _ = measure_with_flushes(&t, &mut Bimodal::new(4), 0);
    }

    #[test]
    fn works_through_dyn_predictor() {
        let t = trace_of(&[true, false, true]);
        let mut boxed: Box<dyn bpred_core::Predictor> = Box::new(AlwaysTaken);
        let r = measure(&t, boxed.as_mut());
        assert_eq!(r.mispredictions, 1);
    }
}
