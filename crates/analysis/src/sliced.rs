//! The bit-sliced execution engine: up to 64 predictor lanes advanced
//! per trace pass through the [`PlaneTable`] word-wide counter
//! transition.
//!
//! # Lanes
//!
//! A *lane* is one gshare-family configuration — table index width `s`
//! and history length `m <= s` — running against its own
//! [`PlaneTable`]. Bimodal is the `m = 0` member of the family (the
//! equivalence `bimodal(s) == gshare(s, 0)` is a `bpred-core`
//! invariant), so a lane group can mix sweep sizes and history lengths
//! freely. [`LaneSpec::of`] is the single classification point: specs
//! it returns `None` for (bi-mode's cross-bank choice update, tagged
//! and combining schemes, …) **must fall back** to the batch engine —
//! the harness dispatch does so explicitly, and `bpred-check` audits
//! the classification so a spec can never silently take the wrong
//! path.
//!
//! # Why it is fast
//!
//! Per retired (lane, branch) pair the loop does: two masked XOR index
//! ops, one word-wide plane transition (~10 branchless ALU ops on two
//! `u64` loads), and a branchless mispredict accumulate. Compared to
//! the batch engine's per-predictor `Counter2::update` — whose
//! data-dependent branch mispredicts on exactly the hard-to-predict
//! branches being measured — the sliced loop retires lanes with **no
//! outcome-dependent branches at all**, and its tables cost two bits
//! per counter instead of a byte, keeping whole sweep ladders
//! cache-resident. A single *unmasked* 64-bit shift register serves
//! every lane: lane `m`'s masked read `shared & ((1 << m) - 1)` equals
//! the per-predictor `m`-bit register, so one history push per record
//! covers the whole group.
//!
//! Results are bit-identical to the scalar loop per configuration
//! (proven by `bpred-check`'s engine-equivalence pass and
//! property-tested here): same pre-update index, same saturating
//! transition, same weakly-taken initialisation.

use bpred_core::PredictorSpec;
use bpred_trace::PackedTrace;

use crate::session::SlicedSession;
use crate::simulate::RunResult;

/// Maximum lanes per sliced group: one plane word's worth of
/// configurations per pass.
pub const MAX_LANES: usize = bpred_core::LANES;

/// One sliceable lane: a gshare-family configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneSpec {
    /// Table index width `s` (the lane's table holds `2^s` counters).
    pub table_bits: u32,
    /// History length `m <= s`; `0` is exactly bimodal.
    pub history_bits: u32,
}

impl LaneSpec {
    /// Classifies a spec for the sliced engine: `Some` for the
    /// gshare family (gshare and bimodal), `None` for every spec that
    /// must fall back to the batch engine.
    ///
    /// This is the *only* sliceability decision point — the harness
    /// dispatch and `bpred-check`'s coverage audit both consult it, so
    /// widening the engine to a new family is a one-site change that
    /// the equivalence pass immediately covers.
    #[must_use]
    pub fn of(spec: &PredictorSpec) -> Option<LaneSpec> {
        // Every grammar name is classified explicitly — no wildcard —
        // so a new family cannot be silently mis-sliced: the compiler
        // forces a decision here and the coverage audit probes it.
        match *spec {
            PredictorSpec::Gshare {
                table_bits,
                history_bits,
            } => Some(LaneSpec {
                table_bits,
                history_bits,
            }),
            PredictorSpec::Bimodal { table_bits } => Some(LaneSpec {
                table_bits,
                history_bits: 0,
            }),
            // Statics and every multi-table/choice scheme fall back to
            // the batch engine.
            PredictorSpec::AlwaysTaken
            | PredictorSpec::AlwaysNotTaken
            | PredictorSpec::Btfnt
            | PredictorSpec::Gselect { .. }
            | PredictorSpec::TwoLevel { .. }
            | PredictorSpec::BiMode(_)
            | PredictorSpec::Agree { .. }
            | PredictorSpec::Gskew { .. }
            | PredictorSpec::Yags { .. }
            | PredictorSpec::Tournament { .. }
            | PredictorSpec::TriMode { .. }
            | PredictorSpec::TwoBcGskew { .. } => None,
            // The zoo: tagged lookups, dot products and stage gating
            // have no branchless plane form — explicitly batch-fallback
            // (cascades stay so even when every stage is sliceable,
            // because the gates couple the lanes).
            PredictorSpec::Tage { .. }
            | PredictorSpec::Perceptron { .. }
            | PredictorSpec::Cascade(_) => None,
        }
    }
}

/// Drives up to [`MAX_LANES`] lanes over `packed` in one pass,
/// returning one [`RunResult`] per lane in input order — bit-identical
/// to running the scalar loop per configuration.
///
/// Thin wrapper over [`SlicedSession`]: open, feed the whole trace,
/// finish. The plane transition loop itself lives in
/// [`SlicedSession::feed`].
///
/// # Panics
///
/// Panics if `lanes` exceeds [`MAX_LANES`] entries, or a lane has
/// `history_bits > table_bits` (the gshare constructor's own
/// invariant).
#[must_use]
pub fn measure_sliced(packed: &PackedTrace, lanes: &[LaneSpec]) -> Vec<RunResult> {
    let mut session = SlicedSession::new(lanes);
    session.feed(packed.records());
    session.finish()
}

/// Like [`measure_sliced`], but accepts any number of lanes and runs
/// them in [`MAX_LANES`]-sized groups sequentially. Convenience for
/// checks and benches; the harness plans its own groups so it can
/// shard them across threads.
#[must_use]
pub fn measure_sliced_chunks(packed: &PackedTrace, lanes: &[LaneSpec]) -> Vec<RunResult> {
    lanes
        .chunks(MAX_LANES)
        .flat_map(|group| measure_sliced(packed, group))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::measure_packed;
    use crate::metrics::{self, Engine};
    use bpred_core::{Bimodal, Gshare};
    use bpred_trace::{BranchRecord, Trace};
    use proptest::prelude::*;

    fn lcg_trace(len: u64, sites: u64) -> PackedTrace {
        let mut t = Trace::new("sliced");
        let mut x = 3u64;
        for _ in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pc = 0x1000 + (x % sites) * 4;
            t.push(BranchRecord::conditional(pc, 0, (x >> 17) & 3 != 0));
        }
        PackedTrace::build(&t).expect("site table fits")
    }

    #[test]
    fn classification_covers_exactly_the_gshare_family() {
        let gshare = "gshare:s=10,h=6".parse::<PredictorSpec>().expect("parses");
        assert_eq!(
            LaneSpec::of(&gshare),
            Some(LaneSpec {
                table_bits: 10,
                history_bits: 6
            })
        );
        let bimodal = "bimodal:s=9".parse::<PredictorSpec>().expect("parses");
        assert_eq!(
            LaneSpec::of(&bimodal),
            Some(LaneSpec {
                table_bits: 9,
                history_bits: 0
            })
        );
        for spec in [
            "bimode:d=7",
            "always-taken",
            "gselect:a=4,h=4",
            // The zoo families are explicitly batch-fallback — a
            // cascade of sliceable stages included.
            "tage:t=4,h=16,tag=8,e=7",
            "perceptron:n=6,h=12,theta=37",
            "cascade:bimodal:s=8;gshare:s=8,h=8",
        ] {
            let spec = spec.parse::<PredictorSpec>().expect("parses");
            assert_eq!(LaneSpec::of(&spec), None, "{spec} must fall back");
        }
    }

    #[test]
    fn sliced_matches_scalar_gshare_lane_by_lane() {
        let packed = lcg_trace(6000, 37);
        let lanes: Vec<LaneSpec> = (0..=10u32)
            .map(|m| LaneSpec {
                table_bits: 10,
                history_bits: m,
            })
            .collect();
        let got = measure_sliced(&packed, &lanes);
        for (lane, got) in lanes.iter().zip(&got) {
            let want = measure_packed(
                &packed,
                &mut Gshare::new(lane.table_bits, lane.history_bits),
            );
            assert_eq!(*got, want, "lane {lane:?}");
        }
    }

    #[test]
    fn zero_history_lane_matches_bimodal() {
        let packed = lcg_trace(4000, 60);
        let got = measure_sliced(
            &packed,
            &[LaneSpec {
                table_bits: 5,
                history_bits: 0,
            }],
        );
        let want = measure_packed(&packed, &mut Bimodal::new(5));
        assert_eq!(got, [want]);
    }

    #[test]
    fn a_full_64_lane_group_matches_scalar_everywhere() {
        let packed = lcg_trace(3000, 11);
        // 64 distinct (s, m) shapes spanning tiny to multi-word tables.
        let lanes: Vec<LaneSpec> = (0..64u32)
            .map(|i| {
                let s = 2 + i % 9;
                LaneSpec {
                    table_bits: s,
                    history_bits: (i / 9) % (s + 1),
                }
            })
            .collect();
        let got = measure_sliced(&packed, &lanes);
        assert_eq!(got.len(), 64);
        for (lane, got) in lanes.iter().zip(&got) {
            let want = measure_packed(
                &packed,
                &mut Gshare::new(lane.table_bits, lane.history_bits),
            );
            assert_eq!(*got, want, "lane {lane:?}");
        }
    }

    #[test]
    fn chunked_driver_splits_groups_transparently() {
        let packed = lcg_trace(1500, 7);
        let lanes: Vec<LaneSpec> = (0..70u32)
            .map(|i| LaneSpec {
                table_bits: 4 + i % 5,
                history_bits: i % 3,
            })
            .collect();
        let chunked = measure_sliced_chunks(&packed, &lanes);
        assert_eq!(chunked.len(), 70);
        let grouped: Vec<RunResult> = measure_sliced(&packed, &lanes[..64])
            .into_iter()
            .chain(measure_sliced(&packed, &lanes[64..]))
            .collect();
        assert_eq!(chunked, grouped);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let packed = lcg_trace(100, 5);
        assert!(measure_sliced(&packed, &[]).is_empty());
        let empty = PackedTrace::build(&Trace::new("empty")).expect("builds");
        let results = measure_sliced(
            &empty,
            &[LaneSpec {
                table_bits: 4,
                history_bits: 2,
            }],
        );
        assert_eq!(results, [RunResult::default()]);
    }

    #[test]
    fn drives_are_recorded_per_lane_retired() {
        let packed = lcg_trace(500, 5);
        let before = metrics::engine_snapshot();
        let _ = measure_sliced(
            &packed,
            &[
                LaneSpec {
                    table_bits: 4,
                    history_bits: 0,
                },
                LaneSpec {
                    table_bits: 5,
                    history_bits: 5,
                },
            ],
        );
        let delta = metrics::engine_snapshot().since(&before);
        let sliced = delta.get(Engine::Sliced);
        assert!(sliced.branches >= 1000, "got {sliced:?}");
        assert!(sliced.lanes >= 2, "got {sliced:?}");
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn oversized_groups_are_rejected() {
        let packed = lcg_trace(10, 3);
        let lanes = vec![
            LaneSpec {
                table_bits: 4,
                history_bits: 0
            };
            65
        ];
        let _ = measure_sliced(&packed, &lanes);
    }

    proptest! {
        /// Every sliceable shape agrees with the scalar engine on
        /// arbitrary traces: random (s, m <= s) pairs over random
        /// outcome streams.
        #[test]
        fn arbitrary_lanes_match_scalar_on_arbitrary_traces(
            seed in any::<u64>(),
            len in 1u64..800,
            sites in 1u64..40,
            shapes in prop::collection::vec((0u32..11, 0u32..11), 1..6),
        ) {
            let mut t = Trace::new("prop");
            let mut x = seed | 1;
            for _ in 0..len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                t.push(BranchRecord::conditional(
                    0x4000 + (x % sites) * 4,
                    0,
                    x & (1 << 23) != 0,
                ));
            }
            let packed = PackedTrace::build(&t).expect("sites fit");
            let lanes: Vec<LaneSpec> = shapes
                .into_iter()
                .map(|(s, m)| LaneSpec { table_bits: s, history_bits: m.min(s) })
                .collect();
            let got = measure_sliced(&packed, &lanes);
            for (lane, got) in lanes.iter().zip(&got) {
                let want = measure_packed(
                    &packed,
                    &mut Gshare::new(lane.table_bits, lane.history_bits),
                );
                prop_assert_eq!(*got, want, "lane {:?}", lane);
            }
        }
    }
}
