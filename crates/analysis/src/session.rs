//! Incremental engine sessions: the `feed(chunk)` / `checkpoint()` /
//! `finish()` seam under every measurement loop.
//!
//! The one-shot `measure_*` entry points take a whole [`PackedTrace`]
//! and return finished results, which caps trace size at memory and
//! rules out long-running service use. A *session* is the same engine
//! with its state made explicit and resumable between chunks:
//!
//! * [`PackedSession`] — one predictor ([`crate::measure_packed`]'s
//!   loop); the resumable state is the predictor itself (its history
//!   register and counter tables) plus the running mispredict tally.
//! * [`BatchSession`] — N predictors in the records-outer /
//!   predictors-inner schedule of [`crate::measure_batch`]; state is
//!   the predictor batch plus one tally per configuration.
//! * [`SlicedSession`] — up to [`MAX_LANES`](crate::MAX_LANES)
//!   gshare-family lanes over [`PlaneTable`] bit-planes
//!   ([`crate::measure_sliced`]'s loop); state is the per-lane planes
//!   and masks, the per-lane tallies, and the single **shared unmasked
//!   history register** that must survive chunk boundaries for results
//!   to stay bit-identical.
//!
//! `feed` accepts any chunk of replayed [`PackedRecord`]s — a slice of
//! a packed trace, a freshly streamed network chunk, a
//! [`PackedTraceBuilder`](bpred_trace::PackedTraceBuilder) tail — and
//! chunk boundaries are *not observable*: feeding a trace in chunks of
//! 1, 63, 64, 65, or all at once produces bit-identical results (the
//! session property test drives every grammar spec through exactly
//! those splits). The `measure_*` one-shots are thin wrappers that
//! open a session, feed the whole trace, and finish.
//!
//! `checkpoint` reads the results accumulated so far without
//! disturbing the session — the live-metrics surface of the serving
//! path. `finish` consumes the session, records the engine drive in
//! [`crate::metrics`] (busy time is the sum of `feed` times, so
//! throughput accounting matches the one-shot paths), and returns the
//! final results.
//!
//! Sessions deliberately do **not** change what is measured — the
//! result store's `ENGINE_EPOCH` stays at 1 because every stored
//! result is reproduced bit-for-bit by the chunked paths.

use std::borrow::BorrowMut;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

use bpred_core::index::{low_bits, pc_word, to_index};
use bpred_core::{PlaneTable, Predictor};
use bpred_trace::PackedRecord;

use crate::metrics::{self, Engine};
use crate::simulate::RunResult;
use crate::sites::SiteTally;
use crate::sliced::{LaneSpec, MAX_LANES};

/// Incremental form of the packed single-predictor engine.
///
/// Generic over predictor ownership: `B` may be `&mut P` (the one-shot
/// wrapper borrows the caller's predictor) or an owning handle like
/// `Box<dyn Predictor>` (a long-lived tenant session).
///
/// ```
/// use bpred_analysis::session::PackedSession;
/// use bpred_core::{Gshare, Predictor};
/// use bpred_trace::{BranchRecord, PackedTrace, Trace};
///
/// let mut t = Trace::new("s");
/// for i in 0..100u64 {
///     t.push(BranchRecord::conditional(0x40 + (i % 3) * 4, 0, i % 2 == 0));
/// }
/// let packed = PackedTrace::build(&t).unwrap();
/// let mut session =
///     PackedSession::<_, dyn Predictor>::new(Box::new(Gshare::new(6, 6)) as Box<dyn Predictor>);
/// for start in (0..packed.len()).step_by(7) {
///     let end = (start + 7).min(packed.len());
///     session.feed((start..end).map(|i| packed.record(i)));
/// }
/// let chunked = session.finish();
/// let whole = bpred_analysis::measure_packed(&packed, &mut Gshare::new(6, 6));
/// assert_eq!(chunked, whole);
/// ```
#[derive(Debug)]
pub struct PackedSession<B, P: ?Sized> {
    predictor: B,
    branches: u64,
    mispredictions: u64,
    tally: Option<SiteTally>,
    busy: Duration,
    _predictor: PhantomData<fn() -> *const P>,
}

impl<P, B> PackedSession<B, P>
where
    P: Predictor + ?Sized,
    B: BorrowMut<P>,
{
    /// Opens a session over a predictor in whatever state the caller
    /// wants to resume from (normally power-on fresh).
    pub fn new(predictor: B) -> Self {
        Self {
            predictor,
            branches: 0,
            mispredictions: 0,
            tally: None,
            busy: Duration::ZERO,
            _predictor: PhantomData,
        }
    }

    /// Turns on per-site misprediction attribution for every record
    /// fed from here on. Off by default — the aggregate hot path pays
    /// nothing for the feature when unused.
    pub fn track_sites(&mut self) {
        self.tally.get_or_insert_with(SiteTally::new);
    }

    /// The per-site tally accumulated so far, when [`Self::track_sites`]
    /// was called.
    #[must_use]
    pub fn site_tally(&self) -> Option<&SiteTally> {
        self.tally.as_ref()
    }

    /// Feeds one chunk of replayed records, in program order.
    pub fn feed<I>(&mut self, chunk: I)
    where
        I: IntoIterator<Item = PackedRecord>,
    {
        let started = Instant::now();
        let predictor = self.predictor.borrow_mut();
        for r in chunk {
            self.branches += 1;
            let predicted = predictor.predict_with_target(r.pc, r.target());
            let miss = predicted != r.taken;
            self.mispredictions += u64::from(miss);
            if let Some(tally) = self.tally.as_mut() {
                tally.record(r.pc, miss);
            }
            predictor.update(r.pc, r.taken);
        }
        self.busy += started.elapsed();
    }

    /// The result over everything fed so far, without disturbing the
    /// session.
    #[must_use]
    pub fn checkpoint(&self) -> RunResult {
        RunResult {
            branches: self.branches,
            mispredictions: self.mispredictions,
        }
    }

    /// Mutable access to the resumable predictor state, for callers
    /// that reset between measurement windows (the flushed variants).
    pub fn predictor_mut(&mut self) -> &mut P {
        self.predictor.borrow_mut()
    }

    /// Closes the session: records the engine drive (one lane, busy
    /// time summed over every `feed`) and returns the final result.
    #[must_use]
    pub fn finish(self) -> RunResult {
        metrics::record_engine_drive(Engine::Packed, self.branches, 1, self.busy);
        RunResult {
            branches: self.branches,
            mispredictions: self.mispredictions,
        }
    }
}

/// Incremental form of the batched engine: N independent predictors
/// advanced records-outer / predictors-inner, exactly the schedule of
/// [`crate::measure_batch`].
///
/// `B` may be `&mut [P]` (borrowing wrapper) or `Vec<P>` (owning
/// session); homogeneous batches monomorphise the inner loop just like
/// the one-shot path.
#[derive(Debug)]
pub struct BatchSession<B, P> {
    batch: B,
    missed: Vec<u64>,
    tallies: Option<Vec<SiteTally>>,
    branches: u64,
    busy: Duration,
    _predictor: PhantomData<fn() -> *const P>,
}

impl<P, B> BatchSession<B, P>
where
    P: Predictor,
    B: AsMut<[P]>,
{
    /// Opens a session over a predictor batch; each predictor resumes
    /// from whatever state it holds (normally power-on fresh).
    pub fn new(mut batch: B) -> Self {
        let configs = batch.as_mut().len();
        Self {
            batch,
            missed: vec![0; configs],
            tallies: None,
            branches: 0,
            busy: Duration::ZERO,
            _predictor: PhantomData,
        }
    }

    /// Turns on per-site misprediction attribution (one tally per
    /// configuration) for every record fed from here on.
    pub fn track_sites(&mut self) {
        let configs = self.missed.len();
        self.tallies
            .get_or_insert_with(|| vec![SiteTally::new(); configs]);
    }

    /// The per-configuration tallies accumulated so far, in input
    /// order, when [`Self::track_sites`] was called.
    #[must_use]
    pub fn site_tallies(&self) -> Option<&[SiteTally]> {
        self.tallies.as_deref()
    }

    /// Feeds one chunk of replayed records to every predictor, in
    /// program order.
    pub fn feed<I>(&mut self, chunk: I)
    where
        I: IntoIterator<Item = PackedRecord>,
    {
        let started = Instant::now();
        let predictors = self.batch.as_mut();
        for r in chunk {
            let (pc, target, taken) = (r.pc, r.target(), r.taken);
            for (i, (predictor, missed)) in predictors.iter_mut().zip(&mut self.missed).enumerate()
            {
                let predicted = predictor.predict_with_target(pc, target);
                let miss = predicted != taken;
                *missed += u64::from(miss);
                if let Some(tallies) = self.tallies.as_mut() {
                    tallies[i].record(pc, miss);
                }
                predictor.update(pc, taken);
            }
            self.branches += 1;
        }
        self.busy += started.elapsed();
    }

    /// Per-configuration results over everything fed so far, without
    /// disturbing the session.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<RunResult> {
        self.missed
            .iter()
            .map(|&mispredictions| RunResult {
                branches: self.branches,
                mispredictions,
            })
            .collect()
    }

    /// Closes the session: records the engine drive (branches ×
    /// configurations retired, busy time summed over every `feed`) and
    /// returns the final per-configuration results in input order.
    #[must_use]
    pub fn finish(mut self) -> Vec<RunResult> {
        let configs = self.batch.as_mut().len() as u64;
        metrics::record_engine_drive(Engine::Batch, self.branches * configs, configs, self.busy);
        self.checkpoint()
    }
}

/// Incremental form of the bit-sliced engine: the per-lane
/// [`PlaneTable`]s, index masks, and mispredict tallies, plus the one
/// **shared unmasked history register** every lane reads through its
/// own mask — made explicit here so it survives chunk boundaries.
#[derive(Debug)]
pub struct SlicedSession {
    lanes: usize,
    tables: Vec<PlaneTable>,
    pc_masks: Vec<u64>,
    hist_masks: Vec<u64>,
    missed: Vec<u64>,
    tallies: Option<Vec<SiteTally>>,
    shared: u64,
    branches: u64,
    busy: Duration,
}

impl SlicedSession {
    /// Opens a session over a lane group, every lane's planes
    /// initialised weakly taken and the shared history register empty.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` exceeds [`MAX_LANES`] entries, or a lane has
    /// `history_bits > table_bits` — the same contract as
    /// [`crate::measure_sliced`].
    #[must_use]
    pub fn new(lanes: &[LaneSpec]) -> Self {
        assert!(
            lanes.len() <= MAX_LANES,
            "a sliced group holds at most {MAX_LANES} lanes, got {}",
            lanes.len()
        );
        for lane in lanes {
            assert!(
                lane.history_bits <= lane.table_bits,
                "history length {} exceeds index width {}",
                lane.history_bits,
                lane.table_bits
            );
        }
        Self {
            lanes: lanes.len(),
            tables: lanes
                .iter()
                .map(|l| PlaneTable::weakly_taken(l.table_bits))
                .collect(),
            pc_masks: lanes
                .iter()
                .map(|l| low_bits(u64::MAX, l.table_bits))
                .collect(),
            hist_masks: lanes
                .iter()
                .map(|l| low_bits(u64::MAX, l.history_bits))
                .collect(),
            missed: vec![0; lanes.len()],
            tallies: None,
            shared: 0,
            branches: 0,
            busy: Duration::ZERO,
        }
    }

    /// Turns on per-site misprediction attribution (one tally per
    /// lane) for every record fed from here on.
    pub fn track_sites(&mut self) {
        let lanes = self.lanes;
        self.tallies
            .get_or_insert_with(|| vec![SiteTally::new(); lanes]);
    }

    /// The per-lane tallies accumulated so far, in input order, when
    /// [`Self::track_sites`] was called.
    #[must_use]
    pub fn site_tallies(&self) -> Option<&[SiteTally]> {
        self.tallies.as_deref()
    }

    /// Feeds one chunk of replayed records to every lane, in program
    /// order. The shared history register advances once per record and
    /// carries over to the next chunk unchanged.
    pub fn feed<I>(&mut self, chunk: I)
    where
        I: IntoIterator<Item = PackedRecord>,
    {
        let started = Instant::now();
        for r in chunk {
            let pcw = pc_word(r.pc);
            let taken = r.taken;
            for (i, (((table, &pc_mask), &hist_mask), missed)) in self
                .tables
                .iter_mut()
                .zip(&self.pc_masks)
                .zip(&self.hist_masks)
                .zip(&mut self.missed)
                .enumerate()
            {
                let index = to_index((pcw & pc_mask) ^ (self.shared & hist_mask));
                let predicted = table.retire(index, taken);
                let miss = predicted != taken;
                *missed += u64::from(miss);
                if let Some(tallies) = self.tallies.as_mut() {
                    tallies[i].record(r.pc, miss);
                }
            }
            self.shared = (self.shared << 1) | u64::from(taken);
            self.branches += 1;
        }
        self.busy += started.elapsed();
    }

    /// The shared history register's current value — the checkpoint
    /// state a resumed session would need alongside the plane tables.
    #[must_use]
    pub fn shared_history(&self) -> u64 {
        self.shared
    }

    /// Per-lane results over everything fed so far, without disturbing
    /// the session.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<RunResult> {
        self.missed
            .iter()
            .map(|&mispredictions| RunResult {
                branches: self.branches,
                mispredictions,
            })
            .collect()
    }

    /// Closes the session: records the engine drive (branches × lanes
    /// retired, busy time summed over every `feed`) and returns the
    /// final per-lane results in input order.
    #[must_use]
    pub fn finish(self) -> Vec<RunResult> {
        let lanes = self.lanes as u64;
        metrics::record_engine_drive(Engine::Sliced, self.branches * lanes, lanes, self.busy);
        self.checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{measure_batch, measure_packed};
    use crate::sliced::measure_sliced;
    use bpred_core::{Gshare, PredictorSpec};
    use bpred_trace::{BranchRecord, PackedTrace, Trace};

    fn lcg_packed(seed: u64, len: u64, sites: u64) -> PackedTrace {
        let mut t = Trace::new("session");
        let mut x = seed | 1;
        for _ in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pc = 0x2000 + (x % sites) * 4;
            let target = if x.is_multiple_of(5) {
                pc - 0x80
            } else {
                pc + 0x80
            };
            t.push(BranchRecord::conditional(pc, target, (x >> 19) & 1 == 1));
        }
        PackedTrace::build(&t).expect("sites fit")
    }

    fn feed_in_chunks<F: FnMut(usize, usize)>(len: usize, chunk: usize, mut feed: F) {
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            feed(start, end);
            start = end;
        }
    }

    #[test]
    fn packed_session_is_chunking_invariant() {
        let packed = lcg_packed(9, 3000, 23);
        let spec: PredictorSpec = "bimode:d=6".parse().expect("parses");
        let want = measure_packed(&packed, spec.build().as_mut());
        for chunk in [1usize, 63, 64, 65, 700] {
            let mut session = PackedSession::<_, dyn bpred_core::Predictor>::new(spec.build());
            feed_in_chunks(packed.len(), chunk, |s, e| {
                session.feed((s..e).map(|i| packed.record(i)));
            });
            assert_eq!(session.finish(), want, "chunk {chunk}");
        }
    }

    #[test]
    fn batch_session_is_chunking_invariant() {
        let packed = lcg_packed(11, 4500, 31);
        let mut reference = [Gshare::new(8, 8), Gshare::new(8, 2), Gshare::new(5, 0)];
        let want = measure_batch(&packed, &mut reference);
        for chunk in [1usize, 64, 65, 4096, 4097] {
            let mut session = BatchSession::new(vec![
                Gshare::new(8, 8),
                Gshare::new(8, 2),
                Gshare::new(5, 0),
            ]);
            feed_in_chunks(packed.len(), chunk, |s, e| {
                session.feed((s..e).map(|i| packed.record(i)));
            });
            assert_eq!(session.finish(), want, "chunk {chunk}");
        }
    }

    #[test]
    fn sliced_session_history_survives_chunk_boundaries() {
        let packed = lcg_packed(13, 2000, 17);
        let lanes: Vec<LaneSpec> = (0..8u32)
            .map(|m| LaneSpec {
                table_bits: 8,
                history_bits: m,
            })
            .collect();
        let want = measure_sliced(&packed, &lanes);
        for chunk in [1usize, 63, 64, 65] {
            let mut session = SlicedSession::new(&lanes);
            feed_in_chunks(packed.len(), chunk, |s, e| {
                session.feed((s..e).map(|i| packed.record(i)));
            });
            // The explicit checkpoint state: an n-record prefix leaves
            // the low bits of the shared register holding the last
            // outcomes, exactly like a per-predictor register would.
            assert_eq!(session.finish(), want, "chunk {chunk}");
        }
    }

    #[test]
    fn checkpoints_read_prefix_results_without_disturbing_the_stream() {
        let packed = lcg_packed(17, 1000, 9);
        let lanes = [LaneSpec {
            table_bits: 6,
            history_bits: 6,
        }];
        let mut session = SlicedSession::new(&lanes);
        session.feed((0..500).map(|i| packed.record(i)));
        let mid = session.checkpoint();
        assert_eq!(mid[0].branches, 500);
        // The checkpoint must equal a one-shot run over the prefix.
        let mut prefix = Trace::new("prefix");
        for i in 0..500 {
            let r = packed.record(i);
            prefix.push(BranchRecord::conditional(r.pc, r.target(), r.taken));
        }
        let prefix = PackedTrace::build(&prefix).expect("builds");
        assert_eq!(mid, measure_sliced(&prefix, &lanes));
        // ... and reading it must not perturb the rest of the stream.
        session.feed((500..packed.len()).map(|i| packed.record(i)));
        assert_eq!(session.finish(), measure_sliced(&packed, &lanes));
    }

    #[test]
    fn sessions_record_engine_drives_on_finish() {
        let packed = lcg_packed(23, 600, 7);
        let before = metrics::engine_snapshot();
        let mut s = BatchSession::new(vec![Gshare::new(5, 5), Gshare::new(5, 0)]);
        s.feed(packed.records());
        let _ = s.finish();
        let delta = metrics::engine_snapshot().since(&before).get(Engine::Batch);
        assert!(delta.branches >= 1200, "got {delta:?}");
        assert!(delta.lanes >= 2, "got {delta:?}");
    }

    #[test]
    fn empty_sessions_finish_cleanly() {
        let session: BatchSession<Vec<Gshare>, Gshare> = BatchSession::new(Vec::new());
        assert!(session.finish().is_empty());
        let session = SlicedSession::new(&[]);
        assert!(session.finish().is_empty());
        let mut session = PackedSession::new(Gshare::new(4, 4));
        session.feed(std::iter::empty());
        assert_eq!(session.finish(), RunResult::default());
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn sliced_session_rejects_oversized_groups() {
        let lanes = vec![
            LaneSpec {
                table_bits: 4,
                history_bits: 0
            };
            MAX_LANES + 1
        ];
        let _ = SlicedSession::new(&lanes);
    }
}
