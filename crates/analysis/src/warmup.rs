//! Warm-up behaviour: windowed misprediction rates over the trace,
//! exposing how quickly a predictor converges from its power-on state
//! (the transient that the paper's footnote-2 initialisation and the
//! flush ablation are about).

use bpred_core::Predictor;
use bpred_trace::Trace;

/// The misprediction rate of each consecutive window of
/// `window` conditional branches (the final partial window is included
/// if it holds at least `window / 2` branches).
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn windowed_rates<P: Predictor + ?Sized>(
    trace: &Trace,
    predictor: &mut P,
    window: u64,
) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let started = std::time::Instant::now();
    let mut rates = Vec::new();
    let mut in_window = 0u64;
    let mut misses = 0u64;
    let mut branches = 0u64;
    for record in trace.conditional() {
        branches += 1;
        let predicted = predictor.predict_with_target(record.pc, record.target);
        misses += u64::from(predicted != record.taken);
        predictor.update(record.pc, record.taken);
        in_window += 1;
        if in_window == window {
            rates.push(misses as f64 / window as f64);
            in_window = 0;
            misses = 0;
        }
    }
    if in_window >= window / 2 && in_window > 0 {
        rates.push(misses as f64 / in_window as f64);
    }
    crate::metrics::record_engine_drive(
        crate::metrics::Engine::Scalar,
        branches,
        1,
        started.elapsed(),
    );
    rates
}

/// The number of leading windows whose rate exceeds the steady-state
/// rate (the mean of the last quarter of windows) by more than
/// `slack` — a simple convergence-time metric in units of windows.
///
/// Returns 0 when there are fewer than 8 windows (too short to judge).
#[must_use]
pub fn warmup_windows(rates: &[f64], slack: f64) -> usize {
    if rates.len() < 8 {
        return 0;
    }
    let tail = &rates[rates.len() - rates.len() / 4..];
    let steady = tail.iter().sum::<f64>() / tail.len() as f64;
    rates.iter().take_while(|r| **r > steady + slack).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_core::{Bimodal, Gshare};
    use bpred_trace::BranchRecord;

    fn biased_trace(n: usize) -> Trace {
        (0..n)
            .map(|i| BranchRecord::conditional(0x40 + (i as u64 % 16) * 4, 0, false))
            .collect()
    }

    #[test]
    fn windows_partition_the_trace() {
        let t = biased_trace(1000);
        let rates = windowed_rates(&t, &mut Bimodal::new(6), 100);
        assert_eq!(rates.len(), 10);
        // All branches are not-taken; after warm-up every window is 0.
        assert!(rates[0] > 0.0, "first window pays the warm-up misses");
        assert!(rates[1..].iter().all(|r| *r == 0.0));
    }

    #[test]
    fn partial_final_window_is_kept_when_large_enough() {
        let t = biased_trace(160);
        let rates = windowed_rates(&t, &mut Bimodal::new(6), 100);
        assert_eq!(rates.len(), 2, "60 >= window/2 keeps the tail window");
        let t = biased_trace(130);
        let rates = windowed_rates(&t, &mut Bimodal::new(6), 100);
        assert_eq!(rates.len(), 1, "30 < window/2 drops the tail window");
    }

    #[test]
    fn warmup_metric_counts_the_transient() {
        let rates = vec![0.5, 0.3, 0.1, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02];
        assert_eq!(warmup_windows(&rates, 0.05), 3);
        assert_eq!(warmup_windows(&rates[..4], 0.05), 0, "too short to judge");
    }

    #[test]
    fn gshare_converges_on_a_periodic_stream() {
        let mut t = Trace::new("p");
        for i in 0..5000 {
            t.push(BranchRecord::conditional(0x100, 0, i % 3 == 0));
        }
        let rates = windowed_rates(&t, &mut Gshare::new(10, 10), 250);
        let steady_tail = &rates[rates.len() - 4..];
        assert!(
            steady_tail.iter().all(|r| *r < 0.02),
            "period-3 must be learned: {steady_tail:?}"
        );
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_is_rejected() {
        let t = biased_trace(10);
        let _ = windowed_rates(&t, &mut Bimodal::new(4), 0);
    }
}
