//! Alias taxonomy: quantifies Section 2.2's central claim directly.
//!
//! "The effect of the choice predictor is to separate the destructive
//! aliases while keeping the harmless aliases together."
//!
//! Two static branches *alias* when the index function ever sends both
//! to the same counter. An alias pair is classified by the bias classes
//! of the two substreams meeting at that counter:
//!
//! * **harmless** — both strongly biased in the *same* direction (they
//!   reinforce the counter);
//! * **destructive** — strongly biased in *opposite* directions (they
//!   fight over the counter, the paper's §2.1 failure mode);
//! * **neutral** — at least one side weakly biased (the counter was
//!   never going to be stable for it anyway).
//!
//! [`AliasReport::measure`] runs a predictor over a trace, collects the
//! per-(branch, counter) substreams, and classifies every colliding
//! pair at every counter, weighting each pair by the traffic of its
//! smaller stream (a pair that meets twice matters less than one that
//! meets a million times).

use std::collections::HashMap;

use bpred_core::Predictor;
use bpred_trace::Trace;

use crate::bias::{BiasClass, StreamStats};

/// Alias-pair counts and traffic weights for one (trace, predictor)
/// pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AliasReport {
    /// Distinct (branch, counter) substreams observed.
    pub streams: usize,
    /// Counters touched by at least one substream.
    pub counters_used: usize,
    /// Counters shared by more than one static branch.
    pub counters_shared: usize,
    /// Same-direction strongly-biased pairs.
    pub harmless_pairs: u64,
    /// Opposite-direction strongly-biased pairs.
    pub destructive_pairs: u64,
    /// Pairs involving a weakly-biased substream.
    pub neutral_pairs: u64,
    /// Traffic-weighted harmless aliasing (sum of min stream lengths).
    pub harmless_weight: u64,
    /// Traffic-weighted destructive aliasing.
    pub destructive_weight: u64,
    /// Traffic-weighted neutral aliasing.
    pub neutral_weight: u64,
}

impl AliasReport {
    /// Measures the alias taxonomy of `make()`'s predictor over `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the predictor exposes no identifiable counters.
    pub fn measure<P, F>(trace: &Trace, make: F) -> AliasReport
    where
        P: Predictor,
        F: Fn() -> P,
    {
        let mut predictor = make();
        assert!(
            predictor.num_counters() > 0,
            "alias analysis needs identifiable counters; {} has none",
            predictor.name()
        );
        // counter -> (branch pc -> stream stats)
        let started = std::time::Instant::now();
        let mut by_counter: HashMap<usize, HashMap<u64, StreamStats>> = HashMap::new();
        let mut branches = 0u64;
        for record in trace.conditional() {
            branches += 1;
            let counter = predictor
                .counter_id(record.pc)
                .expect("num_counters > 0 implies counter_id is Some"); // panic-audited: num_counters() > 0 guard at entry implies table-backed counter_id
            by_counter
                .entry(counter)
                .or_default()
                .entry(record.pc)
                .or_default()
                .record(record.taken);
            predictor.update(record.pc, record.taken);
        }

        // One pass over every conditional branch with one config.
        crate::metrics::record_engine_drive(
            crate::metrics::Engine::Scalar,
            branches,
            1,
            started.elapsed(),
        );

        let mut report = AliasReport {
            counters_used: by_counter.len(),
            ..AliasReport::default()
        };
        for branches in by_counter.values() {
            report.streams += branches.len();
            if branches.len() < 2 {
                continue;
            }
            report.counters_shared += 1;
            let entries: Vec<(&u64, &StreamStats)> = branches.iter().collect();
            for (i, (_, a)) in entries.iter().enumerate() {
                for (_, b) in &entries[i + 1..] {
                    let weight = a.total.min(b.total);
                    match (a.class(), b.class()) {
                        (BiasClass::WeaklyBiased, _) | (_, BiasClass::WeaklyBiased) => {
                            report.neutral_pairs += 1;
                            report.neutral_weight += weight;
                        }
                        (x, y) if x == y => {
                            report.harmless_pairs += 1;
                            report.harmless_weight += weight;
                        }
                        _ => {
                            report.destructive_pairs += 1;
                            report.destructive_weight += weight;
                        }
                    }
                }
            }
        }
        report
    }

    /// Total alias pairs of all kinds.
    #[must_use]
    pub fn total_pairs(&self) -> u64 {
        self.harmless_pairs + self.destructive_pairs + self.neutral_pairs
    }

    /// Destructive share of the traffic-weighted aliasing, in `[0, 1]`
    /// (0 when there is no aliasing at all).
    #[must_use]
    pub fn destructive_fraction(&self) -> f64 {
        let total = self.harmless_weight + self.destructive_weight + self.neutral_weight;
        if total == 0 {
            0.0
        } else {
            self.destructive_weight as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_core::{BiMode, BiModeConfig, Bimodal, Gshare};
    use bpred_trace::BranchRecord;

    /// Branches colliding in a 16-entry table: two same-biased, one
    /// opposite, one weak.
    fn collision_trace() -> Trace {
        let mut t = Trace::new("collisions");
        let stride = 1u64 << (4 + 2); // wraps a 2^4 table
        let base = 0x1000u64;
        for i in 0..300u64 {
            t.push(BranchRecord::conditional(base, 0, true)); // ST
            t.push(BranchRecord::conditional(base + stride, 0, true)); // ST (harmless)
            t.push(BranchRecord::conditional(base + 2 * stride, 0, false)); // SNT (destructive)
            t.push(BranchRecord::conditional(base + 3 * stride, 0, i % 2 == 0));
            // WB (neutral)
        }
        t
    }

    #[test]
    fn classifies_pairs_on_a_shared_counter() {
        let report = AliasReport::measure(&collision_trace(), || Bimodal::new(4));
        // Four streams on one counter: C(4,2) = 6 pairs.
        assert_eq!(report.streams, 4);
        assert_eq!(report.counters_used, 1);
        assert_eq!(report.counters_shared, 1);
        assert_eq!(report.harmless_pairs, 1, "ST+ST");
        assert_eq!(report.destructive_pairs, 2, "ST+SNT twice");
        assert_eq!(report.neutral_pairs, 3, "WB against each of the others");
        assert_eq!(report.total_pairs(), 6);
        assert!(report.destructive_fraction() > 0.0);
    }

    #[test]
    fn no_aliasing_in_a_large_table() {
        let report = AliasReport::measure(&collision_trace(), || Bimodal::new(12));
        assert_eq!(report.counters_shared, 0);
        assert_eq!(report.total_pairs(), 0);
        assert_eq!(report.destructive_fraction(), 0.0);
        assert_eq!(report.counters_used, 4);
    }

    #[test]
    fn bimode_converts_destructive_aliases_to_harmless() {
        // The paper's claim, measured: at matching direction-bank size,
        // bi-mode's destructive weight collapses relative to gshare
        // because opposite-biased branches go to different banks.
        let t = collision_trace();
        let gshare = AliasReport::measure(&t, || Gshare::new(4, 0));
        let bimode = AliasReport::measure(&t, || BiMode::new(BiModeConfig::new(4, 10, 0)));
        assert!(gshare.destructive_weight > 0);
        assert!(
            bimode.destructive_weight * 10 < gshare.destructive_weight,
            "bi-mode {} vs gshare {}",
            bimode.destructive_weight,
            gshare.destructive_weight
        );
        // The same-direction pair may stay together (harmless).
        assert!(bimode.destructive_fraction() < gshare.destructive_fraction());
    }

    #[test]
    fn weights_scale_with_traffic() {
        let mut t = Trace::new("w");
        let stride = 1u64 << 6;
        // Short ST stream against long SNT stream: weight = min = 10.
        for _ in 0..10 {
            t.push(BranchRecord::conditional(0x1000, 0, true));
        }
        for _ in 0..1000 {
            t.push(BranchRecord::conditional(0x1000 + stride, 0, false));
        }
        let report = AliasReport::measure(&t, || Bimodal::new(4));
        assert_eq!(report.destructive_pairs, 1);
        assert_eq!(report.destructive_weight, 10);
    }
}
