//! The Section 4 analysis framework of the bi-mode paper: bias-class
//! classification of per-(branch, counter) outcome substreams,
//! per-counter dominant/non-dominant/weakly-biased breakdowns
//! (Figures 5 and 6), bias-class change counting (Table 4), and
//! misprediction attribution by class (Figures 7 and 8).
//!
//! The core idea: a two-level predictor's index function splits the
//! dynamic branch stream into substreams, one per (static branch,
//! consulted counter) pair. Each substream is classified by its own
//! taken-rate — strongly taken (>= 90%), strongly not-taken (<= 10%),
//! or weakly biased — and a good index keeps each counter dominated by
//! a single strong class. Because a substream's class is only known
//! after the whole trace is seen, attribution is *two-pass*: pass one
//! simulates the predictor and accumulates substream statistics; pass
//! two re-simulates identically and attributes every access,
//! misprediction, and class change.
//!
//! ```
//! use bpred_analysis::{simulate, Analysis};
//! use bpred_core::Gshare;
//! use bpred_workloads::{Scale, Workload};
//!
//! let trace = Workload::by_name("compress").unwrap().trace(Scale::Smoke);
//! let result = simulate::measure(&trace, &mut Gshare::new(10, 10));
//! assert!(result.misprediction_rate() < 0.2);
//!
//! let analysis = Analysis::run(&trace, || Gshare::new(8, 8));
//! assert_eq!(analysis.per_counter.len(), 256);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aliasing;
pub mod batch;
pub mod bias;
pub mod metrics;
pub mod session;
pub mod simulate;
pub mod sites;
pub mod sliced;
pub mod twopass;
pub mod warmup;

/// Version of the measurement semantics implemented by this crate.
///
/// The harness folds this constant into every result-store job key, so
/// cached results are only ever replayed against the engine revision
/// that produced them. **Bump it whenever a change alters what any
/// measurement returns** — the drive loops in [`simulate`]/[`batch`],
/// the two-pass attribution in [`twopass`], the alias taxonomy in
/// [`aliasing`], the warmup windowing in [`warmup`], or predictor
/// update semantics in `bpred-core`. Pure performance work (blocking,
/// parallelism, packing) that keeps results bit-identical must NOT bump
/// it; that is what keeps warm caches valid across refactors.
pub const ENGINE_EPOCH: u64 = 1;

pub use aliasing::AliasReport;
pub use batch::{measure_batch, measure_packed, measure_packed_with_flushes};
pub use bias::{BiasClass, StreamStats};
pub use metrics::{DriveSnapshot, Engine, EngineDrive, EngineSnapshot};
pub use session::{BatchSession, PackedSession, SlicedSession};
pub use simulate::{measure, measure_with_flushes, RunResult};
pub use sites::{SiteMisses, SiteTally};
pub use sliced::{measure_sliced, measure_sliced_chunks, LaneSpec, MAX_LANES};
pub use twopass::{Analysis, ClassChanges, CounterBias, MispredictionBreakdown};
pub use warmup::{warmup_windows, windowed_rates};
