//! Bias classes of branch-outcome substreams (paper Section 4.1).

use std::fmt;

/// The paper's three bias classes for a stream of branch outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BiasClass {
    /// Taken at least 90% of the time.
    StronglyTaken,
    /// Not-taken at least 90% of the time.
    StronglyNotTaken,
    /// Neither of the above.
    WeaklyBiased,
}

impl BiasClass {
    /// Short label used in tables (`ST`/`SNT`/`WB`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BiasClass::StronglyTaken => "ST",
            BiasClass::StronglyNotTaken => "SNT",
            BiasClass::WeaklyBiased => "WB",
        }
    }
}

impl fmt::Display for BiasClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated statistics of one substream `s_ij`: the outcomes a
/// particular static branch `i` sent to a particular counter `j`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of taken outcomes in the stream.
    pub taken: u64,
    /// Total outcomes in the stream (`|s_ij|` in the paper).
    pub total: u64,
}

impl StreamStats {
    /// Records one outcome.
    pub fn record(&mut self, taken: bool) {
        self.taken += u64::from(taken);
        self.total += 1;
    }

    /// The stream's bias class under the paper's 90% thresholds.
    ///
    /// # Panics
    ///
    /// Panics if the stream is empty (an empty stream has no class).
    #[must_use]
    pub fn class(self) -> BiasClass {
        assert!(self.total > 0, "an empty stream has no bias class");
        // Integer comparison: taken/total >= 0.9  <=>  10*taken >= 9*total.
        if 10 * self.taken >= 9 * self.total {
            BiasClass::StronglyTaken
        } else if 10 * self.taken <= self.total {
            BiasClass::StronglyNotTaken
        } else {
            BiasClass::WeaklyBiased
        }
    }
}

/// Per-site bias classification of a trace: `(byte PC, stats)` per
/// static conditional site, sorted by PC, using the same aggregation
/// as `bpred_trace::site_table` — so this export, the bias
/// experiments, and the static/dynamic cross-check (`cfa.report`) all
/// classify from identical counts. Call [`StreamStats::class`] on the
/// stats for the 90%-threshold class.
#[must_use]
pub fn site_classes(trace: &bpred_trace::Trace) -> Vec<(u64, StreamStats)> {
    bpred_trace::site_table(trace)
        .into_iter()
        .map(|s| {
            (
                s.pc,
                StreamStats {
                    taken: s.taken,
                    total: s.executions,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_of(taken: u64, total: u64) -> BiasClass {
        StreamStats { taken, total }.class()
    }

    #[test]
    fn thresholds_match_the_paper_at_90_percent() {
        assert_eq!(class_of(9, 10), BiasClass::StronglyTaken);
        assert_eq!(class_of(90, 100), BiasClass::StronglyTaken);
        assert_eq!(class_of(89, 100), BiasClass::WeaklyBiased);
        assert_eq!(class_of(1, 10), BiasClass::StronglyNotTaken);
        assert_eq!(class_of(10, 100), BiasClass::StronglyNotTaken);
        assert_eq!(class_of(11, 100), BiasClass::WeaklyBiased);
        assert_eq!(class_of(5, 10), BiasClass::WeaklyBiased);
    }

    #[test]
    fn single_outcome_streams_are_strong() {
        assert_eq!(class_of(1, 1), BiasClass::StronglyTaken);
        assert_eq!(class_of(0, 1), BiasClass::StronglyNotTaken);
    }

    #[test]
    fn record_accumulates() {
        let mut s = StreamStats::default();
        for taken in [true, true, false, true] {
            s.record(taken);
        }
        assert_eq!(s, StreamStats { taken: 3, total: 4 });
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn empty_stream_has_no_class() {
        let _ = StreamStats::default().class();
    }

    #[test]
    fn site_classes_agrees_with_the_trace_site_table() {
        use bpred_trace::{BranchRecord, Trace};
        let mut trace = Trace::new("t");
        for taken in [true, true, true, false] {
            trace.push(BranchRecord::conditional(0x0040_0000, 0x0040_0020, taken));
        }
        trace.push(BranchRecord::conditional(0x0040_0008, 0x0040_0020, false));
        let classes = site_classes(&trace);
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].0, 0x0040_0000);
        assert_eq!(classes[0].1, StreamStats { taken: 3, total: 4 });
        assert_eq!(classes[1].1.class(), BiasClass::StronglyNotTaken);
        // The labels line up with the trace-side buckets row by row.
        for ((pc, stats), site) in classes.iter().zip(bpred_trace::site_table(&trace)) {
            assert_eq!(*pc, site.pc);
            assert_eq!(stats.class().label(), bucket_label(site.bucket()));
        }
    }

    fn bucket_label(b: bpred_trace::BiasBucket) -> &'static str {
        match b {
            bpred_trace::BiasBucket::StronglyTaken => "ST",
            bpred_trace::BiasBucket::StronglyNotTaken => "SNT",
            bpred_trace::BiasBucket::WeaklyBiased => "WB",
        }
    }

    #[test]
    fn labels() {
        assert_eq!(BiasClass::StronglyTaken.to_string(), "ST");
        assert_eq!(BiasClass::StronglyNotTaken.to_string(), "SNT");
        assert_eq!(BiasClass::WeaklyBiased.to_string(), "WB");
    }
}
