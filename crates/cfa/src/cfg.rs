//! Control-flow graph construction from a decoded instruction stream.
//!
//! Basic-block leaders are the program entry, every branch/jump target,
//! and every instruction following a control transfer. Edges carry the
//! transfer kind so later passes can distinguish a conditional branch's
//! taken edge from its fallthrough. Calls (`jal r31`) get both a jump
//! edge to the callee and a *call-return* edge to the instruction after
//! the call, modelling the matching `ret` — without it every return
//! point would be spuriously unreachable.

use std::collections::BTreeSet;

use bpred_sim::isa::Reg;
use bpred_sim::{Instruction, Program};

/// How control reaches a successor block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// The block simply runs into the next leader.
    Fallthrough,
    /// A conditional branch's taken edge.
    Taken,
    /// A conditional branch's not-taken (fallthrough) edge.
    NotTaken,
    /// An unconditional jump (`jal`).
    Jump,
    /// The return point after a call — control comes back via `ret`.
    CallReturn,
}

/// One CFG edge: destination block and transfer kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Destination block id.
    pub to: usize,
    /// Transfer kind.
    pub kind: EdgeKind,
}

/// A basic block: the half-open instruction-index range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Index of the block's first instruction (its leader).
    pub start: usize,
    /// One past the block's last instruction.
    pub end: usize,
    /// Outgoing edges.
    pub successors: Vec<Edge>,
}

/// A control transfer whose target lies outside the program.
///
/// For conditional branches this is the static twin of
/// `bpred_sim::RunError::BranchTargetOutOfBounds`: both carry the branch
/// site's PC and the out-of-bounds target byte PC, and
/// [`OutOfBoundsTarget::diagnostic`] renders the identical message, so
/// the static and dynamic diagnostics name the same site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBoundsTarget {
    /// PC of the transferring instruction.
    pub pc: u64,
    /// The out-of-bounds target byte PC.
    pub target: u64,
    /// True for a conditional branch, false for an unconditional jump.
    pub conditional: bool,
}

impl OutOfBoundsTarget {
    /// The diagnostic text — for conditional branches, byte-identical to
    /// the `Display` of the machine's `BranchTargetOutOfBounds` error.
    #[must_use]
    pub fn diagnostic(&self) -> String {
        let (pc, target) = (self.pc, self.target);
        if self.conditional {
            format!("conditional branch at {pc:#x} taken to out-of-bounds target {target:#x}")
        } else {
            format!("jump at {pc:#x} to out-of-bounds target {target:#x}")
        }
    }
}

/// The control-flow graph of one [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Basic blocks in program order (block ids index this vector).
    pub blocks: Vec<Block>,
    /// Instruction index → id of the containing block.
    pub block_of: Vec<usize>,
    /// Per-block reachability from the entry block.
    pub reachable: Vec<bool>,
    /// Control transfers whose target lies outside the program.
    pub out_of_bounds: Vec<OutOfBoundsTarget>,
}

impl Cfg {
    /// Builds the CFG of `program`. An empty program yields an empty
    /// graph.
    #[must_use]
    pub fn build(program: &Program) -> Self {
        let len = program.instructions.len();
        if len == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
                reachable: Vec::new(),
                out_of_bounds: Vec::new(),
            };
        }

        let mut out_of_bounds = Vec::new();
        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        leaders.insert(0);
        for (i, instr) in program.instructions.iter().enumerate() {
            match instr {
                Instruction::Branch { target, .. } => {
                    if *target < len {
                        leaders.insert(*target);
                    } else {
                        out_of_bounds.push(OutOfBoundsTarget {
                            pc: Program::pc_of(i),
                            target: Program::pc_of(*target),
                            conditional: true,
                        });
                    }
                    if i + 1 < len {
                        leaders.insert(i + 1);
                    }
                }
                Instruction::Jal { target, .. } => {
                    if *target < len {
                        leaders.insert(*target);
                    } else {
                        out_of_bounds.push(OutOfBoundsTarget {
                            pc: Program::pc_of(i),
                            target: Program::pc_of(*target),
                            conditional: false,
                        });
                    }
                    if i + 1 < len {
                        leaders.insert(i + 1);
                    }
                }
                Instruction::Jalr { .. } | Instruction::Halt if i + 1 < len => {
                    leaders.insert(i + 1);
                }
                _ => {}
            }
        }

        // Split at leaders; `block_of` maps every instruction back.
        let starts: Vec<usize> = leaders.into_iter().collect();
        let mut blocks: Vec<Block> = Vec::with_capacity(starts.len());
        let mut block_of = vec![0usize; len];
        for (id, &start) in starts.iter().enumerate() {
            let end = starts.get(id + 1).copied().unwrap_or(len);
            for slot in &mut block_of[start..end] {
                *slot = id;
            }
            blocks.push(Block {
                start,
                end,
                successors: Vec::new(),
            });
        }

        // Successor edges from each block's terminating instruction.
        for block in &mut blocks {
            let (end, last) = (block.end, block.end - 1);
            let mut edges = Vec::new();
            match program.instructions[last] {
                Instruction::Branch { target, .. } => {
                    if target < len {
                        edges.push(Edge {
                            to: block_of[target],
                            kind: EdgeKind::Taken,
                        });
                    }
                    if end < len {
                        edges.push(Edge {
                            to: block_of[end],
                            kind: EdgeKind::NotTaken,
                        });
                    }
                }
                Instruction::Jal { rd, target } => {
                    if target < len {
                        edges.push(Edge {
                            to: block_of[target],
                            kind: EdgeKind::Jump,
                        });
                    }
                    // A call comes back: the matching `ret` resumes at
                    // the instruction after the call site.
                    if rd == Reg::RA && end < len {
                        edges.push(Edge {
                            to: block_of[end],
                            kind: EdgeKind::CallReturn,
                        });
                    }
                }
                // Indirect jumps and halts have no static successors; a
                // `ret` is modelled by the call-return edge at its call
                // sites.
                Instruction::Jalr { .. } | Instruction::Halt => {}
                _ => {
                    if end < len {
                        edges.push(Edge {
                            to: block_of[end],
                            kind: EdgeKind::Fallthrough,
                        });
                    }
                }
            }
            block.successors = edges;
        }

        // Reachability: DFS from the entry block.
        let mut reachable = vec![false; blocks.len()];
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            if reachable[b] {
                continue;
            }
            reachable[b] = true;
            for e in &blocks[b].successors {
                if !reachable[e.to] {
                    stack.push(e.to);
                }
            }
        }

        Cfg {
            blocks,
            block_of,
            reachable,
            out_of_bounds,
        }
    }

    /// Instruction indices of every conditional branch site, in program
    /// order.
    #[must_use]
    pub fn conditional_sites(program: &Program) -> Vec<usize> {
        program
            .instructions
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Instruction::Branch { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-block predecessor lists.
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, b) in self.blocks.iter().enumerate() {
            for e in &b.successors {
                preds[e.to].push(id);
            }
        }
        preds
    }

    /// Id of the block containing instruction index `i`, if in bounds.
    #[must_use]
    pub fn block_containing(&self, i: usize) -> Option<usize> {
        self.block_of.get(i).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_sim::assemble;

    fn cfg_of(src: &str) -> (Program, Cfg) {
        let p = assemble(src).expect("test program assembles");
        let c = Cfg::build(&p);
        (p, c)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, c) = cfg_of("nop\nnop\nhalt");
        assert_eq!(c.blocks.len(), 1);
        assert!(c.blocks[0].successors.is_empty());
        assert_eq!(c.reachable, vec![true]);
    }

    #[test]
    fn loop_has_taken_and_not_taken_edges() {
        let (_, c) = cfg_of(
            r"
                  li r1, 3
            loop: addi r1, r1, -1
                  bne r1, r0, loop
                  halt
            ",
        );
        // Blocks: [li], [addi, bne], [halt].
        assert_eq!(c.blocks.len(), 3);
        let branch_block = &c.blocks[1];
        let kinds: Vec<EdgeKind> = branch_block.successors.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EdgeKind::Taken));
        assert!(kinds.contains(&EdgeKind::NotTaken));
        assert!(c.reachable.iter().all(|&r| r));
    }

    #[test]
    fn code_after_halt_is_unreachable() {
        let (_, c) = cfg_of("halt\nnop\nhalt");
        assert_eq!(c.blocks.len(), 2);
        assert!(c.reachable[0]);
        assert!(!c.reachable[1]);
    }

    #[test]
    fn call_gets_a_return_edge() {
        let (_, c) = cfg_of(
            r"
                  call fn
                  halt
            fn:   ret
            ",
        );
        // Blocks: [call], [halt], [ret]; the call block must reach both
        // the callee and its own return point.
        assert_eq!(c.blocks.len(), 3);
        let kinds: Vec<EdgeKind> = c.blocks[0].successors.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EdgeKind::Jump, EdgeKind::CallReturn]);
        assert!(c.reachable.iter().all(|&r| r), "{:?}", c.reachable);
    }

    #[test]
    fn plain_jump_has_no_return_edge() {
        let (_, c) = cfg_of("j end\nnop\nend: halt");
        let kinds: Vec<EdgeKind> = c.blocks[0].successors.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EdgeKind::Jump]);
        assert!(!c.reachable[1], "skipped nop is unreachable");
    }

    #[test]
    fn out_of_bounds_branch_matches_the_machine_diagnostic() {
        use bpred_sim::{Machine, RunError};
        let p = assemble("beq r0, r0, end\nend:").expect("assembles");
        let c = Cfg::build(&p);
        assert_eq!(c.out_of_bounds.len(), 1);
        let oob = c.out_of_bounds[0];
        assert!(oob.conditional);
        let err = Machine::with_memory(p, 16).run(10).unwrap_err();
        assert_eq!(
            err,
            RunError::BranchTargetOutOfBounds {
                pc: oob.pc,
                target: oob.target,
            }
        );
        assert_eq!(err.to_string(), oob.diagnostic());
    }

    #[test]
    fn blocks_partition_the_program() {
        let (p, c) = cfg_of(
            r"
                  li r1, 5
            a:    addi r1, r1, -1
                  beq r1, r0, b
                  j a
            b:    halt
            ",
        );
        let mut covered = 0;
        for (id, b) in c.blocks.iter().enumerate() {
            assert!(b.start < b.end);
            covered += b.end - b.start;
            for i in b.start..b.end {
                assert_eq!(c.block_of[i], id);
            }
        }
        assert_eq!(covered, p.instructions.len());
    }
}
