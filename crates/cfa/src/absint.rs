//! Abstract interpretation over an interval + known-bits value domain.
//!
//! A forward dataflow pass propagates one [`AbsVal`] per register — a
//! signed interval `[lo, hi]` and a pair of known-bit masks — to a
//! fixpoint over the reachable CFG. Loop-carried growth is tamed by a
//! delayed widening (a few plain-join sweeps, then unstable interval
//! ends jump straight to ±∞), and a bounded narrowing phase descends
//! from the post-fixpoint to recover precision the widening threw away.
//! Both phases are sound: the ascending loop provably converges (each
//! post-widening change climbs a finite lattice chain), and every
//! narrowing iterate of a post-fixpoint still over-approximates the
//! least fixpoint.
//!
//! On top of the fixpoint, a pattern-based pass resolves loop trip
//! counts where constants flow directly into loop bounds: a
//! single-back-edge loop whose back-edge branch compares an induction
//! register (one `addi r, r, step` update per iteration) against a
//! loop-invariant constant bound. Anything richer deliberately stays
//! unresolved — the point is to discharge the counted loops of the
//! kernel programs, not to be a general analyzer.
//!
//! The whole pass is audited dynamically: the `cfa/absint` check in
//! `repro verify` replays every kernel in the ISA machine and asserts
//! each observed branch-operand value lies inside the abstract value
//! set at that site — an unsound transfer function or widening is a
//! hard verify failure.

use std::collections::BTreeMap;

use bpred_sim::isa::{AluOp, Cond, Reg};
use bpred_sim::{Instruction, Program};

use crate::cfg::Cfg;
use crate::loops::NaturalLoop;

const SIGN: u64 = 1 << 63;

/// Mask of the `t` lowest bits.
fn low_mask(t: u32) -> u64 {
    if t >= 64 {
        u64::MAX
    } else {
        (1u64 << t) - 1
    }
}

/// Interval + known-bits approximation of a register's reachable
/// values: every concrete value `v` satisfies `lo <= v <= hi`, has no
/// bit of `zeros` set, and every bit of `ones` set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Smallest reachable signed value.
    pub lo: i64,
    /// Largest reachable signed value.
    pub hi: i64,
    /// Bits that are 0 in every reachable value.
    pub zeros: u64,
    /// Bits that are 1 in every reachable value.
    pub ones: u64,
}

impl AbsVal {
    /// The unconstrained value.
    pub const TOP: AbsVal = AbsVal {
        lo: i64::MIN,
        hi: i64::MAX,
        zeros: 0,
        ones: 0,
    };

    /// The singleton abstraction of `c`.
    #[must_use]
    pub const fn constant(c: i64) -> AbsVal {
        AbsVal {
            lo: c,
            hi: c,
            zeros: !(c as u64),
            ones: c as u64,
        }
    }

    /// The exact value, if the abstraction pins one.
    #[must_use]
    pub fn as_const(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether the concrete value `v` is inside the abstraction.
    #[must_use]
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi && (v as u64) & self.zeros == 0 && !(v as u64) & self.ones == 0
    }

    /// Number of contiguous known bits starting at bit 0.
    fn known_low(self) -> u32 {
        (self.zeros | self.ones).trailing_ones()
    }

    /// The smallest and largest signed values a bit pattern respecting
    /// `(zeros, ones)` can take. With the sign bit known, signed order
    /// equals unsigned order over the remaining bits; with it unknown,
    /// the extremes set it to 1 (minimum) and 0 (maximum).
    fn bit_bounds(zeros: u64, ones: u64) -> (i64, i64) {
        if (zeros | ones) & SIGN != 0 {
            (ones as i64, !zeros as i64)
        } else {
            ((ones | SIGN) as i64, (!zeros & !SIGN) as i64)
        }
    }

    /// Re-establishes agreement between the two component domains: a
    /// singleton interval pins every bit, fully known bits pin the
    /// interval, a non-negative interval pins the high bits to zero,
    /// and known bits tighten the interval ends. Each tightening keeps
    /// the intersection of two individually sound over-approximations,
    /// so the result is sound; if the intersection comes out empty
    /// (contradictory components on a dead path), the un-tightened
    /// value is kept instead.
    #[must_use]
    fn normalize(mut self) -> AbsVal {
        if self.lo == self.hi {
            return AbsVal::constant(self.lo);
        }
        if self.zeros | self.ones == u64::MAX {
            return AbsVal::constant(self.ones as i64);
        }
        if self.lo >= 0 {
            // All values fit in the low `k` bits, unsigned.
            let k = 64 - self.hi.leading_zeros();
            self.zeros |= !low_mask(k);
        }
        let (bit_lo, bit_hi) = AbsVal::bit_bounds(self.zeros, self.ones);
        let lo = self.lo.max(bit_lo);
        let hi = self.hi.min(bit_hi);
        if lo <= hi {
            self.lo = lo;
            self.hi = hi;
        }
        self
    }

    fn join(self, other: AbsVal) -> AbsVal {
        AbsVal {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            zeros: self.zeros & other.zeros,
            ones: self.ones & other.ones,
        }
    }

    /// Interval widening of `self` (the previous state) by `grown`
    /// (the incoming join): an unstable end jumps up a short threshold
    /// ladder before giving up at ±∞. The `MAX - 1` rung matters: it
    /// lets a widened counter still take a `+1` step without the
    /// transfer function overflowing to full Top, so branch-edge
    /// refinement can hold the loop invariant. Each end climbs the
    /// ladder monotonically (at most [`WIDEN_LADDER`] rungs), and the
    /// bit masks take the plain join — they only ever lose bits, so
    /// their chain height is 64 and needs no acceleration.
    fn widen(self, grown: AbsVal) -> AbsVal {
        let hi = if grown.hi > self.hi {
            WIDEN_LADDER
                .iter()
                .copied()
                .find(|&t| t >= grown.hi)
                .unwrap_or(i64::MAX)
        } else {
            self.hi
        };
        let lo = if grown.lo < self.lo {
            WIDEN_LADDER
                .iter()
                .map(|&t| -t - 1)
                .find(|&t| t <= grown.lo)
                .unwrap_or(i64::MIN)
        } else {
            self.lo
        };
        AbsVal {
            lo,
            hi,
            zeros: self.zeros & grown.zeros,
            ones: self.ones & grown.ones,
        }
    }
}

/// One abstract register value: unreached, or an [`AbsVal`] range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// Unreached (bottom).
    Bottom,
    /// Interval + known-bits over-approximation of the reachable values.
    Range(AbsVal),
}

impl Value {
    /// The unconstrained value (top).
    #[must_use]
    pub const fn top() -> Value {
        Value::Range(AbsVal::TOP)
    }

    /// The singleton abstraction of `c`.
    #[must_use]
    pub const fn constant(c: i64) -> Value {
        Value::Range(AbsVal::constant(c))
    }

    /// The exact value, if the abstraction pins one.
    #[must_use]
    pub fn as_const(self) -> Option<i64> {
        match self {
            Value::Bottom => None,
            Value::Range(a) => a.as_const(),
        }
    }

    /// Whether the concrete value `v` is inside the abstraction.
    /// `Bottom` contains nothing.
    #[must_use]
    pub fn contains(self, v: i64) -> bool {
        match self {
            Value::Bottom => false,
            Value::Range(a) => a.contains(v),
        }
    }

    fn join(self, other: Value) -> Value {
        match (self, other) {
            (Value::Bottom, v) | (v, Value::Bottom) => v,
            (Value::Range(a), Value::Range(b)) => Value::Range(a.join(b)),
        }
    }

    fn widen(self, grown: Value) -> Value {
        match (self, grown) {
            (Value::Bottom, v) | (v, Value::Bottom) => v,
            (Value::Range(a), Value::Range(b)) => Value::Range(a.widen(b)),
        }
    }
}

/// Statically decides a branch condition over abstract operands, where
/// the abstraction is precise enough: disjoint intervals decide `Lt`,
/// `Ge`, and inequality; a conflicting known bit refutes equality.
#[must_use]
pub fn decide(cond: Cond, a: Value, b: Value) -> Option<bool> {
    let (Value::Range(a), Value::Range(b)) = (a, b) else {
        return None;
    };
    let lt = if a.hi < b.lo {
        Some(true)
    } else if a.lo >= b.hi {
        Some(false)
    } else {
        None
    };
    let eq = if a.as_const().is_some() && a.as_const() == b.as_const() {
        Some(true)
    } else if a.hi < b.lo || b.hi < a.lo || (a.ones & b.zeros) | (a.zeros & b.ones) != 0 {
        Some(false)
    } else {
        None
    };
    match cond {
        Cond::Lt => lt,
        Cond::Ge => lt.map(|t| !t),
        Cond::Eq => eq,
        Cond::Ne => eq.map(|t| !t),
    }
}

/// Abstract register file: one lattice value per architectural register.
pub type RegState = [Value; 32];

const UNREACHED: RegState = [Value::Bottom; 32];

/// Entry state of the program: the machine zero-initialises registers.
const ENTRY: RegState = [Value::constant(0); 32];

pub(crate) fn read(state: &RegState, r: Reg) -> Value {
    if r == Reg::ZERO {
        Value::constant(0)
    } else {
        state[r.index()]
    }
}

fn write(state: &mut RegState, r: Reg, v: Value) {
    if r != Reg::ZERO {
        state[r.index()] = v;
    }
}

fn add_abs(a: AbsVal, b: AbsVal) -> AbsVal {
    let (lo, hi) = match (a.lo.checked_add(b.lo), a.hi.checked_add(b.hi)) {
        (Some(l), Some(h)) => (l, h),
        // A corner wraps at run time; the interval gives up, the low
        // bits below survive (carries propagate upward regardless).
        _ => (i64::MIN, i64::MAX),
    };
    // Carries propagate from bit 0 upward, so the sum's low `t` bits
    // are known wherever both operands are known contiguously from
    // bit 0.
    let mask = low_mask(a.known_low().min(b.known_low()));
    let sum = (a.ones & mask).wrapping_add(b.ones & mask);
    AbsVal {
        lo,
        hi,
        zeros: !sum & mask,
        ones: sum & mask,
    }
}

fn sub_abs(a: AbsVal, b: AbsVal) -> AbsVal {
    let (lo, hi) = match (a.lo.checked_sub(b.hi), a.hi.checked_sub(b.lo)) {
        (Some(l), Some(h)) => (l, h),
        _ => (i64::MIN, i64::MAX),
    };
    // Borrows propagate upward exactly like carries.
    let mask = low_mask(a.known_low().min(b.known_low()));
    let diff = (a.ones & mask).wrapping_sub(b.ones & mask);
    AbsVal {
        lo,
        hi,
        zeros: !diff & mask,
        ones: diff & mask,
    }
}

fn mul_abs(a: AbsVal, b: AbsVal) -> AbsVal {
    // The product over a box attains its extremes at the corners; if
    // every corner fits in i64, no interior product can overflow.
    let corners = [
        a.lo.checked_mul(b.lo),
        a.lo.checked_mul(b.hi),
        a.hi.checked_mul(b.lo),
        a.hi.checked_mul(b.hi),
    ];
    let (lo, hi) = if corners.iter().all(Option::is_some) {
        let vals: Vec<i64> = corners.iter().map(|c| c.unwrap_or(0)).collect();
        (
            vals.iter().copied().min().unwrap_or(i64::MIN),
            vals.iter().copied().max().unwrap_or(i64::MAX),
        )
    } else {
        (i64::MIN, i64::MAX)
    };
    // A product mod 2^t depends only on the operands mod 2^t.
    let mask = low_mask(a.known_low().min(b.known_low()));
    let prod = (a.ones & mask).wrapping_mul(b.ones & mask);
    AbsVal {
        lo,
        hi,
        zeros: !prod & mask,
        ones: prod & mask,
    }
}

fn div_abs(a: AbsVal, b: AbsVal) -> AbsVal {
    match b.as_const() {
        // Might fault at run time — then no value flows at all.
        Some(0) | None => AbsVal::TOP,
        // Truncating division by a positive constant is monotone.
        Some(d) if d > 0 => AbsVal {
            lo: a.lo.wrapping_div(d),
            hi: a.hi.wrapping_div(d),
            zeros: 0,
            ones: 0,
        },
        Some(d) => match a.as_const() {
            Some(x) => AbsVal::constant(x.wrapping_div(d)),
            None => AbsVal::TOP,
        },
    }
}

fn rem_abs(a: AbsVal, b: AbsVal) -> AbsVal {
    match b.as_const() {
        Some(0) | None => AbsVal::TOP,
        Some(d) => match a.as_const() {
            Some(x) => AbsVal::constant(x.wrapping_rem(d)),
            // The remainder's sign follows the dividend; its magnitude
            // stays below |d|.
            None => {
                let m = d.unsigned_abs().saturating_sub(1) as i64;
                AbsVal {
                    lo: if a.lo >= 0 { 0 } else { -m },
                    hi: m,
                    zeros: 0,
                    ones: 0,
                }
            }
        },
    }
}

fn and_abs(a: AbsVal, b: AbsVal) -> AbsVal {
    let (lo, hi) = if a.lo >= 0 && b.lo >= 0 {
        (0, a.hi.min(b.hi))
    } else {
        (i64::MIN, i64::MAX)
    };
    AbsVal {
        lo,
        hi,
        zeros: a.zeros | b.zeros,
        ones: a.ones & b.ones,
    }
}

fn or_abs(a: AbsVal, b: AbsVal) -> AbsVal {
    let (lo, hi) = if a.lo >= 0 && b.lo >= 0 {
        match a.hi.checked_add(b.hi) {
            Some(h) => (a.lo.max(b.lo), h),
            None => (i64::MIN, i64::MAX),
        }
    } else {
        (i64::MIN, i64::MAX)
    };
    AbsVal {
        lo,
        hi,
        zeros: a.zeros & b.zeros,
        ones: a.ones | b.ones,
    }
}

fn xor_abs(a: AbsVal, b: AbsVal) -> AbsVal {
    let known = (a.zeros | a.ones) & (b.zeros | b.ones);
    let bits = (a.ones ^ b.ones) & known;
    AbsVal {
        lo: i64::MIN,
        hi: i64::MAX,
        zeros: !bits & known,
        ones: bits,
    }
}

fn sll_abs(a: AbsVal, b: AbsVal) -> AbsVal {
    // The machine shifts by the low six bits of rt.
    let Some(c) = b.as_const().map(|c| (c & 63) as u32) else {
        return AbsVal::TOP;
    };
    let (lo, hi) = if a.hi <= i64::MAX >> c && a.lo >= i64::MIN >> c {
        (a.lo << c, a.hi << c)
    } else {
        (i64::MIN, i64::MAX) // some value wraps
    };
    AbsVal {
        lo,
        hi,
        zeros: (a.zeros << c) | low_mask(c),
        ones: a.ones << c,
    }
}

fn srl_abs(a: AbsVal, b: AbsVal) -> AbsVal {
    let Some(c) = b.as_const().map(|c| (c & 63) as u32) else {
        return AbsVal::TOP;
    };
    if c == 0 {
        return a;
    }
    // A logical right shift by c >= 1 always lands in [0, u64::MAX >> c].
    let (lo, hi) = if a.lo >= 0 {
        (a.lo >> c, a.hi >> c)
    } else {
        (0, (u64::MAX >> c) as i64)
    };
    AbsVal {
        lo,
        hi,
        zeros: (a.zeros >> c) | !(u64::MAX >> c),
        ones: a.ones >> c,
    }
}

fn slt_abs(a: AbsVal, b: AbsVal) -> AbsVal {
    if a.hi < b.lo {
        AbsVal::constant(1)
    } else if a.lo >= b.hi {
        AbsVal::constant(0)
    } else {
        AbsVal {
            lo: 0,
            hi: 1,
            zeros: !1,
            ones: 0,
        }
    }
}

fn alu(op: AluOp, a: AbsVal, b: AbsVal) -> AbsVal {
    let v = match op {
        AluOp::Add => add_abs(a, b),
        AluOp::Sub => sub_abs(a, b),
        AluOp::Mul => mul_abs(a, b),
        AluOp::Div => div_abs(a, b),
        AluOp::Rem => rem_abs(a, b),
        AluOp::And => and_abs(a, b),
        AluOp::Or => or_abs(a, b),
        AluOp::Xor => xor_abs(a, b),
        AluOp::Sll => sll_abs(a, b),
        AluOp::Srl => srl_abs(a, b),
        AluOp::Slt => slt_abs(a, b),
    };
    v.normalize()
}

/// Applies one instruction to an abstract state.
fn transfer(instr: &Instruction, state: &mut RegState) {
    match instr {
        Instruction::Alu { op, rd, rs, rt } => {
            let v = match (read(state, *rs), read(state, *rt)) {
                (Value::Range(a), Value::Range(b)) => Value::Range(alu(*op, a, b)),
                _ => Value::Bottom, // an operand is unreached
            };
            write(state, *rd, v);
        }
        Instruction::Addi { rd, rs, imm } => {
            let v = match read(state, *rs) {
                Value::Range(a) => Value::Range(add_abs(a, AbsVal::constant(*imm)).normalize()),
                Value::Bottom => Value::Bottom,
            };
            write(state, *rd, v);
        }
        Instruction::Lw { rd, .. } => write(state, *rd, Value::top()),
        // Link registers hold return addresses — opaque to this domain.
        Instruction::Jal { rd, .. } | Instruction::Jalr { rd, .. } => {
            write(state, *rd, Value::top());
        }
        Instruction::Sw { .. }
        | Instruction::Branch { .. }
        | Instruction::Halt
        | Instruction::Nop => {}
    }
}

/// Tightens `state` under the assumption that the branch
/// `cond rs, rt` resolved to `outcome`. Returns `None` when the
/// constraint proves the state empty — the edge is infeasible and
/// contributes nothing to its successor. Every tightening intersects
/// the incoming over-approximation with the exact constraint the
/// machine enforced on this edge, so the result stays sound.
fn refine(state: &mut RegState, cond: Cond, rs: Reg, rt: Reg, outcome: bool) -> Option<()> {
    let (Value::Range(mut a), Value::Range(mut b)) = (read(state, rs), read(state, rt)) else {
        return Some(()); // a bottom operand: nothing to refine
    };
    match (cond, outcome) {
        (Cond::Lt, true) | (Cond::Ge, false) => {
            // a < b: checked ±1 failing means the relation is
            // unsatisfiable at the interval end (b can't exceed MAX).
            a.hi = a.hi.min(b.hi.checked_sub(1)?);
            b.lo = b.lo.max(a.lo.checked_add(1)?);
        }
        (Cond::Lt, false) | (Cond::Ge, true) => {
            // a >= b
            a.lo = a.lo.max(b.lo);
            b.hi = b.hi.min(a.hi);
        }
        (Cond::Eq, true) | (Cond::Ne, false) => {
            // a == b: both collapse to the intersection.
            let met = AbsVal {
                lo: a.lo.max(b.lo),
                hi: a.hi.min(b.hi),
                zeros: a.zeros | b.zeros,
                ones: a.ones | b.ones,
            };
            if met.zeros & met.ones != 0 {
                return None;
            }
            a = met;
            b = met;
        }
        (Cond::Eq, false) | (Cond::Ne, true) => {
            // a != b: an endpoint equal to the other side's constant
            // can be trimmed off.
            if let Some(c) = b.as_const() {
                if a.lo == c {
                    a.lo = c.checked_add(1)?;
                }
                if a.hi == c {
                    a.hi = c.checked_sub(1)?;
                }
            }
            if let Some(c) = a.as_const() {
                if b.lo == c {
                    b.lo = c.checked_add(1)?;
                }
                if b.hi == c {
                    b.hi = c.checked_sub(1)?;
                }
            }
        }
    }
    if a.lo > a.hi || b.lo > b.hi {
        return None;
    }
    write(state, rs, Value::Range(a.normalize()));
    write(state, rt, Value::Range(b.normalize()));
    Some(())
}

/// The exit state of predecessor `p` as seen along the edge `p -> b`:
/// when the edge is one arm of a conditional branch, the branch
/// constraint is applied to the operands. Returns `None` for an edge
/// the refinement proves infeasible.
fn edge_state(
    program: &Program,
    cfg: &Cfg,
    p: usize,
    b: usize,
    exit: &RegState,
) -> Option<RegState> {
    let mut state = *exit;
    let last = cfg.blocks[p].end - 1;
    let Some(Instruction::Branch {
        cond,
        rs,
        rt,
        target,
    }) = program.instructions.get(last)
    else {
        return Some(state);
    };
    let taken_block = cfg.block_of.get(*target).copied();
    let fall_block = cfg.block_of.get(last + 1).copied();
    let outcome = match (taken_block == Some(b), fall_block == Some(b)) {
        (true, false) => true,
        (false, true) => false,
        // Both arms (or neither) reach b: no usable constraint.
        _ => return Some(state),
    };
    refine(&mut state, *cond, *rs, *rt, outcome)?;
    Some(state)
}

/// Widening thresholds: an unstable upper end jumps to the first rung
/// at or above it (mirrored and negated for lower ends), landing on
/// `i64::MAX` only after the ladder is exhausted. Power-of-two-ish
/// rungs cover the masks and table sizes kernels actually compare
/// against; the `MAX - 1` rung keeps one headroom step so an
/// incremented counter does not overflow the transfer function.
const WIDEN_LADDER: [i64; 4] = [0xFF, 0xFFFF, 0xFFFF_FFFF, i64::MAX - 1];

/// How many plain-join sweeps run before widening kicks in. A short
/// delay lets small counted loops settle exactly before any interval
/// end is thrown to ±∞.
const WIDEN_AFTER: usize = 3;

/// Descending sweeps after the ascending phase converges. Each iterate
/// of the transfer system applied to a post-fixpoint stays above the
/// least fixpoint, so every narrowing sweep is sound.
const NARROW_SWEEPS: usize = 2;

/// Per-block entry/exit states at the abstract-interpretation fixpoint.
#[derive(Debug, Clone)]
pub struct AbsFlow {
    /// Abstract register state on entry to each block.
    pub entry: Vec<RegState>,
    /// Abstract register state on exit from each block.
    pub exit: Vec<RegState>,
}

impl AbsFlow {
    /// Runs the widening/narrowing fixpoint.
    #[must_use]
    pub fn compute(program: &Program, cfg: &Cfg) -> Self {
        let n = cfg.blocks.len();
        let mut entry = vec![UNREACHED; n];
        let mut exit = vec![UNREACHED; n];
        if n == 0 {
            return AbsFlow { entry, exit };
        }
        entry[0] = ENTRY;
        let preds = cfg.predecessors();
        // Ascending phase. After the widening delay, every change to an
        // entry state climbs a finite chain (lo and hi each descend or
        // climb the widening ladder at most 5 rungs, each of 64 known
        // bits is lost at most once, per register), and a sweep without
        // changes ends the loop — so the explicit bound below is never
        // the exit path; it just keeps the pass total by inspection.
        let bound = WIDEN_AFTER + 74 * 32 * n + 2;
        let mut changed = true;
        let mut sweeps = 0;
        while changed && sweeps < bound {
            changed = false;
            sweeps += 1;
            for b in 0..n {
                if !cfg.reachable[b] {
                    continue;
                }
                let mut state = if b == 0 { ENTRY } else { UNREACHED };
                for &p in &preds[b] {
                    if !cfg.reachable[p] {
                        continue;
                    }
                    let Some(refined) = edge_state(program, cfg, p, b, &exit[p]) else {
                        continue; // infeasible edge
                    };
                    for r in 0..32 {
                        state[r] = state[r].join(refined[r]);
                    }
                }
                if sweeps > WIDEN_AFTER {
                    for r in 0..32 {
                        state[r] = entry[b][r].widen(state[r]);
                    }
                }
                if state != entry[b] {
                    entry[b] = state;
                    changed = true;
                }
                let mut out = entry[b];
                for i in cfg.blocks[b].start..cfg.blocks[b].end {
                    transfer(&program.instructions[i], &mut out);
                }
                if out != exit[b] {
                    exit[b] = out;
                    changed = true;
                }
            }
        }
        // Narrowing phase: recompute entries as the plain join of
        // refined predecessor exits, descending from the post-fixpoint.
        for _ in 0..NARROW_SWEEPS {
            for b in 0..n {
                if !cfg.reachable[b] {
                    continue;
                }
                let mut state = if b == 0 { ENTRY } else { UNREACHED };
                for &p in &preds[b] {
                    if !cfg.reachable[p] {
                        continue;
                    }
                    let Some(refined) = edge_state(program, cfg, p, b, &exit[p]) else {
                        continue;
                    };
                    for r in 0..32 {
                        state[r] = state[r].join(refined[r]);
                    }
                }
                entry[b] = state;
                let mut out = state;
                for i in cfg.blocks[b].start..cfg.blocks[b].end {
                    transfer(&program.instructions[i], &mut out);
                }
                exit[b] = out;
            }
        }
        AbsFlow { entry, exit }
    }

    /// Abstract register state immediately before instruction `index` —
    /// the block's entry state pushed through its preceding
    /// instructions. Returns the all-bottom state for instructions
    /// outside any block.
    #[must_use]
    pub fn state_at(&self, program: &Program, cfg: &Cfg, index: usize) -> RegState {
        let Some(b) = cfg.block_containing(index) else {
            return UNREACHED;
        };
        let mut state = self.entry[b];
        for i in cfg.blocks[b].start..index {
            transfer(&program.instructions[i], &mut state);
        }
        state
    }

    /// The abstract operand values of the conditional branch at
    /// instruction `index` — the `(rs, rt)` lattice values immediately
    /// before the branch executes. `None` when `index` is not a
    /// conditional branch. This is the value set the `cfa/absint`
    /// soundness audit checks every dynamically observed operand
    /// against.
    #[must_use]
    pub fn operands_at(
        &self,
        program: &Program,
        cfg: &Cfg,
        index: usize,
    ) -> Option<(Value, Value)> {
        let Some(Instruction::Branch { rs, rt, .. }) = program.instructions.get(index) else {
            return None;
        };
        let state = self.state_at(program, cfg, index);
        Some((read(&state, *rs), read(&state, *rt)))
    }

    /// The state on entry to `header` coming only from outside the
    /// loop — the induction variable's initial value lives here. Entry
    /// edges from conditional branches are refined the same way the
    /// fixpoint refines them.
    #[must_use]
    pub fn preheader_state(&self, program: &Program, cfg: &Cfg, l: &NaturalLoop) -> RegState {
        if l.header == 0 {
            return ENTRY;
        }
        let preds = cfg.predecessors();
        let mut state = UNREACHED;
        for &p in &preds[l.header] {
            if !cfg.reachable[p] || l.body.contains(&p) {
                continue;
            }
            let Some(refined) = edge_state(program, cfg, p, l.header, &self.exit[p]) else {
                continue;
            };
            for (r, slot) in state.iter_mut().enumerate() {
                *slot = slot.join(refined[r]);
            }
        }
        state
    }
}

/// Number of executions of a loop's back-edge branch when it is
/// statically resolvable; see the module docs for the accepted shape.
///
/// Returns a map from back-edge branch instruction index to trip count.
#[must_use]
pub fn trip_counts(
    program: &Program,
    cfg: &Cfg,
    flow: &AbsFlow,
    loops: &[NaturalLoop],
) -> BTreeMap<usize, u64> {
    let mut counts = BTreeMap::new();
    for l in loops {
        // One back edge, ending in a conditional branch to the header.
        let &[tail] = l.back_edges.as_slice() else {
            continue;
        };
        let last = cfg.blocks[tail].end - 1;
        let Some(Instruction::Branch {
            cond,
            rs,
            rt,
            target,
        }) = program.instructions.get(last)
        else {
            continue;
        };
        if cfg.block_of.get(*target) != Some(&l.header) {
            continue;
        }
        let pre = flow.preheader_state(program, cfg, l);
        // Try both operand orders: (counter, bound) and (bound, counter).
        for (counter, bound_reg, counter_is_rs) in [(*rs, *rt, true), (*rt, *rs, false)] {
            let Some(trips) = resolve(
                program,
                cfg,
                l,
                &pre,
                *cond,
                counter,
                bound_reg,
                counter_is_rs,
            ) else {
                continue;
            };
            counts.insert(last, trips);
            break;
        }
    }
    counts
}

/// Ceiling division for positive operands.
fn div_ceil_u(num: u64, den: u64) -> u64 {
    num.div_ceil(den)
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    program: &Program,
    cfg: &Cfg,
    l: &NaturalLoop,
    pre: &RegState,
    cond: Cond,
    counter: Reg,
    bound_reg: Reg,
    counter_is_rs: bool,
) -> Option<u64> {
    // The bound must be constant at loop entry and never written inside.
    let bound = read(pre, bound_reg).as_const()?;
    if writes_in_loop(program, cfg, l, bound_reg) != 0 {
        return None;
    }
    // The counter: constant at entry, exactly one self-increment inside.
    let init = read(pre, counter).as_const()?;
    let step = single_step(program, cfg, l, counter)?;
    if step == 0 {
        return None;
    }
    // Loop continues while the branch is taken. The test sees the
    // counter *after* its in-body increment (do-while shape), so the
    // tested values are `init + step`, `init + 2*step`, ... Four
    // continue conditions arise from Lt/Ge times operand order:
    //   Lt, counter as rs:  loop while counter <  bound  (up, strict)
    //   Ge, counter as rt:  loop while counter <= bound  (up, inclusive)
    //   Lt, counter as rt:  loop while counter >  bound  (down, strict)
    //   Ge, counter as rs:  loop while counter >= bound  (down, inclusive)
    match (cond, counter_is_rs) {
        (Cond::Lt, true) if step > 0 => {
            let trips = if init < bound {
                div_ceil_u(
                    bound.checked_sub(init)?.try_into().ok()?,
                    step.unsigned_abs(),
                )
            } else {
                1 // body runs once, test fails immediately
            };
            Some(trips)
        }
        (Cond::Ge, false) if step > 0 => {
            let trips = if init <= bound {
                let span: u64 = bound.checked_sub(init)?.try_into().ok()?;
                span / step.unsigned_abs() + 1
            } else {
                1
            };
            Some(trips)
        }
        (Cond::Lt, false) if step < 0 => {
            let trips = if init > bound {
                div_ceil_u(
                    init.checked_sub(bound)?.try_into().ok()?,
                    step.unsigned_abs(),
                )
            } else {
                1
            };
            Some(trips)
        }
        (Cond::Ge, true) if step < 0 => {
            let trips = if init >= bound {
                let span: u64 = init.checked_sub(bound)?.try_into().ok()?;
                span / step.unsigned_abs() + 1
            } else {
                1
            };
            Some(trips)
        }
        // while counter != bound: only exact arithmetic hits resolve.
        (Cond::Ne, _) => {
            let diff = bound.checked_sub(init)?;
            if diff != 0 && diff.signum() == step.signum() && diff % step == 0 {
                Some((diff / step).unsigned_abs())
            } else if diff == 0 {
                Some(1)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Counts instructions inside the loop writing `r`.
fn writes_in_loop(program: &Program, cfg: &Cfg, l: &NaturalLoop, r: Reg) -> usize {
    if r == Reg::ZERO {
        return 0;
    }
    l.body
        .iter()
        .flat_map(|&b| cfg.blocks[b].start..cfg.blocks[b].end)
        .filter(|&i| match program.instructions[i] {
            Instruction::Alu { rd, .. }
            | Instruction::Addi { rd, .. }
            | Instruction::Lw { rd, .. }
            | Instruction::Jal { rd, .. }
            | Instruction::Jalr { rd, .. } => rd == r,
            _ => false,
        })
        .count()
}

/// If the only write to `r` in the loop is a single `addi r, r, step`,
/// returns `step`.
fn single_step(program: &Program, cfg: &Cfg, l: &NaturalLoop, r: Reg) -> Option<i64> {
    let mut step = None;
    for i in l
        .body
        .iter()
        .flat_map(|&b| cfg.blocks[b].start..cfg.blocks[b].end)
    {
        let writes_r = match program.instructions[i] {
            Instruction::Alu { rd, .. }
            | Instruction::Addi { rd, .. }
            | Instruction::Lw { rd, .. }
            | Instruction::Jal { rd, .. }
            | Instruction::Jalr { rd, .. } => rd == r,
            _ => false,
        };
        if !writes_r {
            continue;
        }
        match program.instructions[i] {
            Instruction::Addi { rd, rs, imm } if rd == r && rs == r && step.is_none() => {
                step = Some(imm);
            }
            _ => return None, // a second write, or a non-induction write
        }
    }
    step
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::{natural_loops, Dominators};
    use bpred_sim::assemble;

    fn run(src: &str) -> BTreeMap<usize, u64> {
        let p = assemble(src).expect("assembles");
        let cfg = Cfg::build(&p);
        let doms = Dominators::compute(&cfg);
        let (loops, _) = natural_loops(&cfg, &doms);
        let flow = AbsFlow::compute(&p, &cfg);
        trip_counts(&p, &cfg, &flow, &loops)
    }

    #[test]
    fn counted_up_loop_resolves() {
        let counts = run(r"
                  li r1, 10
                  li r2, 0
            loop: addi r2, r2, 1
                  blt r2, r1, loop
                  halt
            ");
        // The back-edge branch is instruction 3 and executes 10 times.
        assert_eq!(counts.get(&3), Some(&10));
    }

    #[test]
    fn counted_down_loop_resolves() {
        let counts = run(r"
                  li r1, 7
            loop: addi r1, r1, -1
                  bgt r1, r0, loop
                  halt
            ");
        // bgt r1, r0 assembles to Lt with swapped operands; 7 -> 0 in
        // steps of -1 is 7 branch executions.
        assert_eq!(counts.values().copied().collect::<Vec<u64>>(), vec![7]);
    }

    #[test]
    fn ne_loop_resolves_only_on_exact_steps() {
        let exact = run(r"
                  li r1, 6
                  li r2, 0
            loop: addi r2, r2, 2
                  bne r2, r1, loop
                  halt
            ");
        assert_eq!(exact.values().copied().collect::<Vec<u64>>(), vec![3]);
        let inexact = run(r"
                  li r1, 7
                  li r2, 0
            loop: addi r2, r2, 2
                  bne r2, r1, loop
                  halt
            ");
        assert!(inexact.is_empty(), "non-divisible Ne never terminates");
    }

    #[test]
    fn data_dependent_bound_stays_unresolved() {
        let counts = run(r"
                  lw r1, (r0)
                  li r2, 0
            loop: addi r2, r2, 1
                  blt r2, r1, loop
                  halt
            ");
        assert!(counts.is_empty(), "loaded bound is Top");
    }

    #[test]
    fn clobbered_bound_stays_unresolved() {
        let counts = run(r"
                  li r1, 10
                  li r2, 0
            loop: addi r2, r2, 1
                  addi r1, r1, 0
                  blt r2, r1, loop
                  halt
            ");
        assert!(counts.is_empty(), "bound written inside the loop");
    }

    #[test]
    fn constants_flow_through_alu_ops() {
        let p = assemble(
            r"
                  li r1, 6
                  li r2, 7
                  mul r3, r1, r2
                  halt
            ",
        )
        .expect("assembles");
        let cfg = Cfg::build(&p);
        let flow = AbsFlow::compute(&p, &cfg);
        assert_eq!(flow.exit[0][3].as_const(), Some(42));
        assert_eq!(flow.exit[0][0].as_const(), Some(0), "r0 stays zero");
    }

    #[test]
    fn widened_counter_keeps_a_sound_lower_bound() {
        // Data-dependent trip count: the counter still starts at 0 and
        // only grows, so at the branch (after the increment) its
        // abstract value must be [1, +inf).
        let p = assemble(
            r"
                  lw r1, (r0)
                  li r2, 0
            loop: addi r2, r2, 1
                  blt r2, r1, loop
                  halt
            ",
        )
        .expect("assembles");
        let cfg = Cfg::build(&p);
        let flow = AbsFlow::compute(&p, &cfg);
        let branch = 3;
        let state = flow.state_at(&p, &cfg, branch);
        let Value::Range(counter) = state[2] else {
            panic!("counter is reachable");
        };
        assert_eq!(counter.lo, 1, "counter at the test is at least 1");
        assert_eq!(counter.hi, i64::MAX, "widened upper end");
        assert!(counter.contains(1) && counter.contains(1 << 40));
        assert!(!counter.contains(0));
    }

    #[test]
    fn masking_pins_known_bits_and_bounds() {
        let p = assemble(
            r"
                  lw r1, (r0)
                  li r2, 7
                  and r3, r1, r2
                  halt
            ",
        )
        .expect("assembles");
        let cfg = Cfg::build(&p);
        let flow = AbsFlow::compute(&p, &cfg);
        let Value::Range(masked) = flow.exit[0][3] else {
            panic!("reachable");
        };
        assert_eq!(masked.lo, 0);
        assert_eq!(masked.hi, 7);
        assert!((0..=7).all(|v| masked.contains(v)));
        assert!(!masked.contains(8) && !masked.contains(-1));
    }

    #[test]
    fn shifted_values_keep_trailing_zero_bits() {
        let p = assemble(
            r"
                  lw r1, (r0)
                  li r2, 3
                  sll r3, r1, r2
                  halt
            ",
        )
        .expect("assembles");
        let cfg = Cfg::build(&p);
        let flow = AbsFlow::compute(&p, &cfg);
        let Value::Range(shifted) = flow.exit[0][3] else {
            panic!("reachable");
        };
        assert_eq!(shifted.zeros & 0b111, 0b111, "low three bits known 0");
        assert!(shifted.contains(8) && !shifted.contains(4));
    }

    #[test]
    fn decide_resolves_disjoint_and_conflicting_operands() {
        let three = Value::constant(3);
        let five = Value::constant(5);
        assert_eq!(decide(Cond::Lt, three, five), Some(true));
        assert_eq!(decide(Cond::Ge, three, five), Some(false));
        assert_eq!(decide(Cond::Eq, three, five), Some(false));
        assert_eq!(decide(Cond::Ne, three, five), Some(true));
        assert_eq!(decide(Cond::Eq, three, three), Some(true));
        // Overlapping unknowns stay undecided.
        let wide = Value::Range(AbsVal {
            lo: 0,
            hi: 10,
            zeros: 0,
            ones: 0,
        });
        assert_eq!(decide(Cond::Lt, wide, five), None);
        assert_eq!(decide(Cond::Eq, wide, five), None);
        // A conflicting known bit refutes equality even with
        // overlapping intervals: even vs. the constant 5.
        let even = Value::Range(AbsVal {
            lo: 0,
            hi: 10,
            zeros: 1,
            ones: 0,
        });
        assert_eq!(decide(Cond::Eq, even, five), Some(false));
        assert_eq!(decide(Cond::Ne, even, five), Some(true));
        assert_eq!(decide(Cond::Lt, Value::Bottom, five), None);
    }

    #[test]
    fn constant_roundtrip_and_contains() {
        let c = AbsVal::constant(-42);
        assert_eq!(c.as_const(), Some(-42));
        assert!(c.contains(-42));
        assert!(!c.contains(42));
        assert!(AbsVal::TOP.contains(i64::MIN) && AbsVal::TOP.contains(i64::MAX));
    }
}
