//! Bounded abstract interpretation over the constant lattice.
//!
//! A forward dataflow pass propagates per-register constant values
//! (`⊥` → `Const(c)` → `⊤`) to a fixpoint over the reachable CFG, then
//! a pattern-based pass resolves loop trip counts where constants flow
//! directly into loop bounds: a single-back-edge loop whose back-edge
//! branch compares an induction register (one `addi r, r, step` update
//! per iteration) against a loop-invariant constant bound. Anything
//! richer deliberately stays unresolved — the point is to discharge the
//! counted loops of the kernel programs, not to be a general analyzer.

use std::collections::BTreeMap;

use bpred_sim::isa::{AluOp, Cond, Reg};
use bpred_sim::{Instruction, Program};

use crate::cfg::Cfg;
use crate::loops::NaturalLoop;

/// One abstract register value in the constant lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// Unreached (bottom).
    Bottom,
    /// Known constant.
    Const(i64),
    /// Unknown (top).
    Top,
}

impl Value {
    fn join(self, other: Value) -> Value {
        match (self, other) {
            (Value::Bottom, v) | (v, Value::Bottom) => v,
            (Value::Const(a), Value::Const(b)) if a == b => Value::Const(a),
            _ => Value::Top,
        }
    }
}

/// Abstract register file: one lattice value per architectural register.
pub type RegState = [Value; 32];

const UNREACHED: RegState = [Value::Bottom; 32];

/// Entry state of the program: the machine zero-initialises registers.
const ENTRY: RegState = [Value::Const(0); 32];

fn read(state: &RegState, r: Reg) -> Value {
    if r == Reg::ZERO {
        Value::Const(0)
    } else {
        state[r.index()]
    }
}

fn write(state: &mut RegState, r: Reg, v: Value) {
    if r != Reg::ZERO {
        state[r.index()] = v;
    }
}

fn alu(op: AluOp, a: i64, b: i64) -> Value {
    match op {
        AluOp::Add => Value::Const(a.wrapping_add(b)),
        AluOp::Sub => Value::Const(a.wrapping_sub(b)),
        AluOp::Mul => Value::Const(a.wrapping_mul(b)),
        AluOp::Div | AluOp::Rem if b == 0 => Value::Top, // faults at run time
        AluOp::Div => Value::Const(a.wrapping_div(b)),
        AluOp::Rem => Value::Const(a.wrapping_rem(b)),
        AluOp::And => Value::Const(a & b),
        AluOp::Or => Value::Const(a | b),
        AluOp::Xor => Value::Const(a ^ b),
        AluOp::Sll => Value::Const(a.wrapping_shl((b & 63) as u32)),
        AluOp::Srl => Value::Const(((a as u64).wrapping_shr((b & 63) as u32)) as i64),
        AluOp::Slt => Value::Const(i64::from(a < b)),
    }
}

/// Applies one instruction to an abstract state.
fn transfer(instr: &Instruction, state: &mut RegState) {
    match instr {
        Instruction::Alu { op, rd, rs, rt } => {
            let v = match (read(state, *rs), read(state, *rt)) {
                (Value::Const(a), Value::Const(b)) => alu(*op, a, b),
                _ => Value::Top,
            };
            write(state, *rd, v);
        }
        Instruction::Addi { rd, rs, imm } => {
            let v = match read(state, *rs) {
                Value::Const(a) => Value::Const(a.wrapping_add(*imm)),
                _ => Value::Top,
            };
            write(state, *rd, v);
        }
        Instruction::Lw { rd, .. } => write(state, *rd, Value::Top),
        // Link registers hold return addresses — opaque to this lattice.
        Instruction::Jal { rd, .. } | Instruction::Jalr { rd, .. } => {
            write(state, *rd, Value::Top);
        }
        Instruction::Sw { .. }
        | Instruction::Branch { .. }
        | Instruction::Halt
        | Instruction::Nop => {}
    }
}

/// Per-block entry states at the constant-propagation fixpoint.
#[derive(Debug, Clone)]
pub struct ConstantFlow {
    /// Abstract register state on entry to each block.
    pub entry: Vec<RegState>,
    /// Abstract register state on exit from each block.
    pub exit: Vec<RegState>,
}

impl ConstantFlow {
    /// Runs the forward constant propagation to a fixpoint.
    #[must_use]
    pub fn compute(program: &Program, cfg: &Cfg) -> Self {
        let n = cfg.blocks.len();
        let mut entry = vec![UNREACHED; n];
        let mut exit = vec![UNREACHED; n];
        if n == 0 {
            return ConstantFlow { entry, exit };
        }
        entry[0] = ENTRY;
        let preds = cfg.predecessors();
        // The lattice has height 2 per register, so the fixpoint arrives
        // within a couple of sweeps; the explicit bound keeps the pass
        // total even on adversarial graphs.
        let bound = 4 * n + 8;
        let mut changed = true;
        let mut sweeps = 0;
        while changed && sweeps < bound {
            changed = false;
            sweeps += 1;
            for b in 0..n {
                if !cfg.reachable[b] {
                    continue;
                }
                let mut state = if b == 0 { ENTRY } else { UNREACHED };
                for &p in &preds[b] {
                    if cfg.reachable[p] {
                        for r in 0..32 {
                            state[r] = state[r].join(exit[p][r]);
                        }
                    }
                }
                if state != entry[b] {
                    entry[b] = state;
                    changed = true;
                }
                let mut out = entry[b];
                for i in cfg.blocks[b].start..cfg.blocks[b].end {
                    transfer(&program.instructions[i], &mut out);
                }
                if out != exit[b] {
                    exit[b] = out;
                    changed = true;
                }
            }
        }
        ConstantFlow { entry, exit }
    }

    /// The state on entry to `header` coming only from outside the
    /// loop — the induction variable's initial value lives here.
    #[must_use]
    pub fn preheader_state(&self, cfg: &Cfg, l: &NaturalLoop) -> RegState {
        if l.header == 0 {
            return ENTRY;
        }
        let preds = cfg.predecessors();
        let mut state = UNREACHED;
        for &p in &preds[l.header] {
            if cfg.reachable[p] && !l.body.contains(&p) {
                for (r, slot) in state.iter_mut().enumerate() {
                    *slot = slot.join(self.exit[p][r]);
                }
            }
        }
        state
    }
}

/// Number of executions of a loop's back-edge branch when it is
/// statically resolvable; see the module docs for the accepted shape.
///
/// Returns a map from back-edge branch instruction index to trip count.
#[must_use]
pub fn trip_counts(
    program: &Program,
    cfg: &Cfg,
    flow: &ConstantFlow,
    loops: &[NaturalLoop],
) -> BTreeMap<usize, u64> {
    let mut counts = BTreeMap::new();
    for l in loops {
        // One back edge, ending in a conditional branch to the header.
        let &[tail] = l.back_edges.as_slice() else {
            continue;
        };
        let last = cfg.blocks[tail].end - 1;
        let Some(Instruction::Branch {
            cond,
            rs,
            rt,
            target,
        }) = program.instructions.get(last)
        else {
            continue;
        };
        if cfg.block_of.get(*target) != Some(&l.header) {
            continue;
        }
        let pre = flow.preheader_state(cfg, l);
        // Try both operand orders: (counter, bound) and (bound, counter).
        for (counter, bound_reg, counter_is_rs) in [(*rs, *rt, true), (*rt, *rs, false)] {
            let Some(trips) = resolve(
                program,
                cfg,
                l,
                &pre,
                *cond,
                counter,
                bound_reg,
                counter_is_rs,
            ) else {
                continue;
            };
            counts.insert(last, trips);
            break;
        }
    }
    counts
}

/// Ceiling division for positive operands.
fn div_ceil_u(num: u64, den: u64) -> u64 {
    num.div_ceil(den)
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    program: &Program,
    cfg: &Cfg,
    l: &NaturalLoop,
    pre: &crate::absint::RegState,
    cond: Cond,
    counter: Reg,
    bound_reg: Reg,
    counter_is_rs: bool,
) -> Option<u64> {
    // The bound must be constant at loop entry and never written inside.
    let Value::Const(bound) = read(pre, bound_reg) else {
        return None;
    };
    if writes_in_loop(program, cfg, l, bound_reg) != 0 {
        return None;
    }
    // The counter: constant at entry, exactly one self-increment inside.
    let Value::Const(init) = read(pre, counter) else {
        return None;
    };
    let step = single_step(program, cfg, l, counter)?;
    if step == 0 {
        return None;
    }
    // Loop continues while the branch is taken. The test sees the
    // counter *after* its in-body increment (do-while shape), so the
    // tested values are `init + step`, `init + 2*step`, ... Four
    // continue conditions arise from Lt/Ge times operand order:
    //   Lt, counter as rs:  loop while counter <  bound  (up, strict)
    //   Ge, counter as rt:  loop while counter <= bound  (up, inclusive)
    //   Lt, counter as rt:  loop while counter >  bound  (down, strict)
    //   Ge, counter as rs:  loop while counter >= bound  (down, inclusive)
    match (cond, counter_is_rs) {
        (Cond::Lt, true) if step > 0 => {
            let trips = if init < bound {
                div_ceil_u(
                    bound.checked_sub(init)?.try_into().ok()?,
                    step.unsigned_abs(),
                )
            } else {
                1 // body runs once, test fails immediately
            };
            Some(trips)
        }
        (Cond::Ge, false) if step > 0 => {
            let trips = if init <= bound {
                let span: u64 = bound.checked_sub(init)?.try_into().ok()?;
                span / step.unsigned_abs() + 1
            } else {
                1
            };
            Some(trips)
        }
        (Cond::Lt, false) if step < 0 => {
            let trips = if init > bound {
                div_ceil_u(
                    init.checked_sub(bound)?.try_into().ok()?,
                    step.unsigned_abs(),
                )
            } else {
                1
            };
            Some(trips)
        }
        (Cond::Ge, true) if step < 0 => {
            let trips = if init >= bound {
                let span: u64 = init.checked_sub(bound)?.try_into().ok()?;
                span / step.unsigned_abs() + 1
            } else {
                1
            };
            Some(trips)
        }
        // while counter != bound: only exact arithmetic hits resolve.
        (Cond::Ne, _) => {
            let diff = bound.checked_sub(init)?;
            if diff != 0 && diff.signum() == step.signum() && diff % step == 0 {
                Some((diff / step).unsigned_abs())
            } else if diff == 0 {
                Some(1)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Counts instructions inside the loop writing `r`.
fn writes_in_loop(program: &Program, cfg: &Cfg, l: &NaturalLoop, r: Reg) -> usize {
    if r == Reg::ZERO {
        return 0;
    }
    l.body
        .iter()
        .flat_map(|&b| cfg.blocks[b].start..cfg.blocks[b].end)
        .filter(|&i| match program.instructions[i] {
            Instruction::Alu { rd, .. }
            | Instruction::Addi { rd, .. }
            | Instruction::Lw { rd, .. }
            | Instruction::Jal { rd, .. }
            | Instruction::Jalr { rd, .. } => rd == r,
            _ => false,
        })
        .count()
}

/// If the only write to `r` in the loop is a single `addi r, r, step`,
/// returns `step`.
fn single_step(program: &Program, cfg: &Cfg, l: &NaturalLoop, r: Reg) -> Option<i64> {
    let mut step = None;
    for i in l
        .body
        .iter()
        .flat_map(|&b| cfg.blocks[b].start..cfg.blocks[b].end)
    {
        let writes_r = match program.instructions[i] {
            Instruction::Alu { rd, .. }
            | Instruction::Addi { rd, .. }
            | Instruction::Lw { rd, .. }
            | Instruction::Jal { rd, .. }
            | Instruction::Jalr { rd, .. } => rd == r,
            _ => false,
        };
        if !writes_r {
            continue;
        }
        match program.instructions[i] {
            Instruction::Addi { rd, rs, imm } if rd == r && rs == r && step.is_none() => {
                step = Some(imm);
            }
            _ => return None, // a second write, or a non-induction write
        }
    }
    step
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::{natural_loops, Dominators};
    use bpred_sim::assemble;

    fn run(src: &str) -> BTreeMap<usize, u64> {
        let p = assemble(src).expect("assembles");
        let cfg = Cfg::build(&p);
        let doms = Dominators::compute(&cfg);
        let (loops, _) = natural_loops(&cfg, &doms);
        let flow = ConstantFlow::compute(&p, &cfg);
        trip_counts(&p, &cfg, &flow, &loops)
    }

    #[test]
    fn counted_up_loop_resolves() {
        let counts = run(r"
                  li r1, 10
                  li r2, 0
            loop: addi r2, r2, 1
                  blt r2, r1, loop
                  halt
            ");
        // The back-edge branch is instruction 3 and executes 10 times.
        assert_eq!(counts.get(&3), Some(&10));
    }

    #[test]
    fn counted_down_loop_resolves() {
        let counts = run(r"
                  li r1, 7
            loop: addi r1, r1, -1
                  bgt r1, r0, loop
                  halt
            ");
        // bgt r1, r0 assembles to Lt with swapped operands; 7 -> 0 in
        // steps of -1 is 7 branch executions.
        assert_eq!(counts.values().copied().collect::<Vec<u64>>(), vec![7]);
    }

    #[test]
    fn ne_loop_resolves_only_on_exact_steps() {
        let exact = run(r"
                  li r1, 6
                  li r2, 0
            loop: addi r2, r2, 2
                  bne r2, r1, loop
                  halt
            ");
        assert_eq!(exact.values().copied().collect::<Vec<u64>>(), vec![3]);
        let inexact = run(r"
                  li r1, 7
                  li r2, 0
            loop: addi r2, r2, 2
                  bne r2, r1, loop
                  halt
            ");
        assert!(inexact.is_empty(), "non-divisible Ne never terminates");
    }

    #[test]
    fn data_dependent_bound_stays_unresolved() {
        let counts = run(r"
                  lw r1, (r0)
                  li r2, 0
            loop: addi r2, r2, 1
                  blt r2, r1, loop
                  halt
            ");
        assert!(counts.is_empty(), "loaded bound is Top");
    }

    #[test]
    fn clobbered_bound_stays_unresolved() {
        let counts = run(r"
                  li r1, 10
                  li r2, 0
            loop: addi r2, r2, 1
                  addi r1, r1, 0
                  blt r2, r1, loop
                  halt
            ");
        assert!(counts.is_empty(), "bound written inside the loop");
    }

    #[test]
    fn constants_flow_through_alu_ops() {
        let p = assemble(
            r"
                  li r1, 6
                  li r2, 7
                  mul r3, r1, r2
                  halt
            ",
        )
        .expect("assembles");
        let cfg = Cfg::build(&p);
        let flow = ConstantFlow::compute(&p, &cfg);
        assert_eq!(flow.exit[0][3], Value::Const(42));
        assert_eq!(flow.exit[0][0], Value::Const(0), "r0 stays zero");
    }
}
