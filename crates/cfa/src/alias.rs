//! Static PHT-aliasing analysis: which pairs of static branch sites can
//! land on the same pattern-history-table counter under a given
//! [`PredictorSpec`].
//!
//! The index functions are pure arithmetic on `(pc, history)`, so
//! collision structure is decidable per site pair without running
//! anything:
//!
//! * **bimodal** (`s` index bits, no history): sites collide iff their
//!   low `s` word-PC bits agree — a *definite* collision, every
//!   execution shares the counter.
//! * **gshare** (`s` index bits, `m <= s` history bits): the index is
//!   `low_s(pc_word) XOR zext(low_m(history))`, so history only
//!   perturbs the low `m` bits. Two sites *definitely* collide (same
//!   index whenever their histories agree) iff their full low `s` bits
//!   agree, and can *potentially* collide (exists a history pair
//!   mapping them together) iff their top `s - m` bits agree. This is
//!   exactly the paper's "multiple PHTs" decomposition (§3.1): the top
//!   bits select a PHT, the low bits are history-scrambled within it.
//! * **bi-mode** with the paper's shared direction index: the choice
//!   bank is bimodal on `choice_bits`, each direction bank is gshare on
//!   `(direction_bits, history_bits)`. Which direction bank a dynamic
//!   branch uses is decided by the choice counter, so direction-bank
//!   collisions are reported per the gshare rule and labelled with the
//!   bank name.
//!
//! Opposite-bias pairs (one ST-candidate, one SNT-candidate) are the
//! destructive ones — the paper's motivating case — and get flagged.
//!
//! All PC arithmetic stays in `u64` via [`bpred_core::index`]; this
//! module performs no `usize` narrowing (enforced by the repo lint).

use bpred_core::index::{low_bits, pc_word};
use bpred_core::{BiModeConfig, IndexShare, PredictorSpec};

use crate::StaticBias;

/// One potentially-colliding pair of static branch sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollisionPair {
    /// Byte PC of the first (lower-PC) site.
    pub pc_a: u64,
    /// Byte PC of the second site.
    pub pc_b: u64,
    /// Which table bank the collision is in (`"pht"`, `"choice"`,
    /// `"direction"`).
    pub bank: &'static str,
    /// True when the pair collides for *every* history (same full
    /// index bits); false when only some history pairs map them to the
    /// same counter.
    pub definite: bool,
    /// True when the two sites carry opposite static bias (one
    /// ST-candidate, one SNT-candidate) — the destructive case.
    pub opposite_bias: bool,
}

/// How one bank indexes, for the pairwise test.
enum BankRule {
    /// PC-only index on `bits` low word-PC bits.
    Direct { bits: u32 },
    /// gshare on `index_bits` with `history_bits` of history.
    Gshare { index_bits: u32, history_bits: u32 },
}

impl BankRule {
    /// Whether word PCs `a` and `b` can collide, and if so definitely.
    /// Returns `None` for no collision, `Some(definite)` otherwise.
    fn collide(&self, a: u64, b: u64) -> Option<bool> {
        match *self {
            BankRule::Direct { bits } => (low_bits(a, bits) == low_bits(b, bits)).then_some(true),
            BankRule::Gshare {
                index_bits,
                history_bits,
            } => {
                let m = history_bits.min(index_bits);
                if low_bits(a, index_bits) == low_bits(b, index_bits) {
                    Some(true)
                } else if low_bits(a, index_bits) >> m == low_bits(b, index_bits) >> m {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }
}

/// The banks of `spec` this analysis can model, or `None` when the
/// spec's index function is out of scope (skewed hashing, history
/// concatenation, tagged caches...).
fn banks(spec: &PredictorSpec) -> Option<Vec<(&'static str, BankRule)>> {
    match spec {
        PredictorSpec::Bimodal { table_bits } => {
            Some(vec![("pht", BankRule::Direct { bits: *table_bits })])
        }
        PredictorSpec::Gshare {
            table_bits,
            history_bits,
        } => Some(vec![(
            "pht",
            BankRule::Gshare {
                index_bits: *table_bits,
                history_bits: *history_bits,
            },
        )]),
        PredictorSpec::BiMode(BiModeConfig {
            direction_bits,
            choice_bits,
            history_bits,
            index_share: IndexShare::Shared,
            ..
        }) => Some(vec![
            ("choice", BankRule::Direct { bits: *choice_bits }),
            (
                "direction",
                BankRule::Gshare {
                    index_bits: *direction_bits,
                    history_bits: *history_bits,
                },
            ),
        ]),
        _ => None,
    }
}

/// Enumerates all static-site pairs that can collide in any bank of
/// `spec`. `sites` is `(byte PC, static bias)` per site; pairs are
/// emitted in `(pc_a < pc_b)` order, definite collisions before
/// potential ones within a bank. Returns `None` when the spec's index
/// function is not statically modelled.
#[must_use]
pub fn collisions(spec: &PredictorSpec, sites: &[(u64, StaticBias)]) -> Option<Vec<CollisionPair>> {
    let banks = banks(spec)?;
    let mut pairs = Vec::new();
    for (bank, rule) in &banks {
        for (i, &(pc_a, bias_a)) in sites.iter().enumerate() {
            for &(pc_b, bias_b) in &sites[i + 1..] {
                let Some(definite) = rule.collide(pc_word(pc_a), pc_word(pc_b)) else {
                    continue;
                };
                let opposite_bias = matches!(
                    (bias_a, bias_b),
                    (StaticBias::Taken, StaticBias::NotTaken)
                        | (StaticBias::NotTaken, StaticBias::Taken)
                );
                pairs.push(CollisionPair {
                    pc_a,
                    pc_b,
                    bank,
                    definite,
                    opposite_bias,
                });
            }
        }
    }
    pairs.sort_by_key(|p| (p.bank, !p.definite, p.pc_a, p.pc_b));
    Some(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x0040_0000;

    fn spec(text: &str) -> PredictorSpec {
        text.parse().expect("spec parses")
    }

    #[test]
    fn bimodal_collides_exactly_on_low_bits() {
        // 4 index bits = 16 word slots = 64 bytes apart.
        let s = spec("bimodal:s=4");
        let sites = vec![
            (BASE, StaticBias::Taken),
            (BASE + 64, StaticBias::NotTaken), // same low 4 word bits
            (BASE + 4, StaticBias::NotTaken),  // different slot
        ];
        let pairs = collisions(&s, &sites).expect("bimodal is modelled");
        assert_eq!(pairs.len(), 1);
        let p = pairs[0];
        assert_eq!((p.pc_a, p.pc_b), (BASE, BASE + 64));
        assert!(p.definite);
        assert!(p.opposite_bias);
        assert_eq!(p.bank, "pht");
    }

    #[test]
    fn gshare_distinguishes_definite_from_potential() {
        // s=6, m=2: top 4 bits select a "PHT", low 2 bits are
        // history-scrambled.
        let s = spec("gshare:s=6,h=2");
        let a = BASE; // word index low bits ...000000
        let same_index = BASE + 256; // +64 words: same low 6 bits
        let same_pht = BASE + 4; // +1 word: same top 4, different low 2
        let other_pht = BASE + 16; // +4 words: different top 4 bits
        let sites = vec![
            (a, StaticBias::Taken),
            (same_index, StaticBias::NotTaken),
            (same_pht, StaticBias::NotTaken),
            (other_pht, StaticBias::Taken),
        ];
        let pairs = collisions(&s, &sites).expect("gshare is modelled");
        let find = |x: u64, y: u64| pairs.iter().find(|p| (p.pc_a, p.pc_b) == (x, y));
        assert!(find(a, same_index).expect("same full index").definite);
        assert!(!find(a, same_pht).expect("same PHT").definite);
        assert!(find(a, other_pht).is_none(), "different PHTs never meet");
    }

    #[test]
    fn bimode_reports_choice_and_direction_banks() {
        let s = spec("bimode:d=4,c=6,h=4");
        // Same low 4 word bits (direction definite), different low 6
        // (choice misses): 16 words apart but not 64.
        let sites = vec![(BASE, StaticBias::Taken), (BASE + 64, StaticBias::NotTaken)];
        let pairs = collisions(&s, &sites).expect("shared-index bi-mode is modelled");
        let banks: Vec<&str> = pairs.iter().map(|p| p.bank).collect();
        assert!(banks.contains(&"direction"));
        assert!(!banks.contains(&"choice"), "low-6 choice bits differ");
        // Move to 64 words apart: both banks collide.
        let sites = vec![
            (BASE, StaticBias::Taken),
            (BASE + 256, StaticBias::NotTaken),
        ];
        let pairs = collisions(&s, &sites).expect("modelled");
        let banks: Vec<&str> = pairs.iter().map(|p| p.bank).collect();
        assert!(banks.contains(&"choice"));
        assert!(banks.contains(&"direction"));
    }

    #[test]
    fn unmodelled_specs_return_none() {
        assert!(collisions(&spec("gskew:s=4,h=4"), &[]).is_none());
        assert!(collisions(&spec("bimode:d=4,c=4,h=4,index=skewed"), &[]).is_none());
    }

    #[test]
    fn same_bias_pairs_are_not_flagged_destructive() {
        let s = spec("bimodal:s=2");
        let sites = vec![(BASE, StaticBias::Taken), (BASE + 16, StaticBias::Taken)];
        let pairs = collisions(&s, &sites).expect("modelled");
        assert_eq!(pairs.len(), 1);
        assert!(!pairs[0].opposite_bias);
    }
}
