//! Static PHT-aliasing analysis: which pairs of static branch sites can
//! land on the same pattern-history-table counter under a given
//! [`PredictorSpec`].
//!
//! The index functions are pure arithmetic on `(pc, history)`, so
//! collision structure is decidable per site pair without running
//! anything:
//!
//! * **bimodal** (`s` index bits, no history): sites collide iff their
//!   low `s` word-PC bits agree — a *definite* collision, every
//!   execution shares the counter.
//! * **gshare** (`s` index bits, `m <= s` history bits): the index is
//!   `low_s(pc_word) XOR zext(low_m(history))`, so history only
//!   perturbs the low `m` bits. Two sites *definitely* collide (same
//!   index whenever their histories agree) iff their full low `s` bits
//!   agree, and can *potentially* collide (exists a history pair
//!   mapping them together) iff their top `s - m` bits agree. This is
//!   exactly the paper's "multiple PHTs" decomposition (§3.1): the top
//!   bits select a PHT, the low bits are history-scrambled within it.
//! * **bi-mode** with the paper's shared direction index: the choice
//!   bank is bimodal on `choice_bits`, each direction bank is gshare on
//!   `(direction_bits, history_bits)`. Which direction bank a dynamic
//!   branch uses is decided by the choice counter, so direction-bank
//!   collisions are reported per the gshare rule and labelled with the
//!   bank name.
//! * **tage**: the base table is bimodal on `entry_bits`; every tagged
//!   component hashes `w ^ (w >> e)` into the index and `w ^ (w >> tag)`
//!   into the partial tag, with the history terms identical for both
//!   sites of a pair whenever their histories agree (they cancel). A
//!   pair whose PC index hashes agree therefore meets at the same entry
//!   on every equal-history occurrence — *definite* if the PC tag
//!   hashes agree too (true counter sharing), *tag-filtered* when the
//!   tags differ (the entry is contended through allocation, but the
//!   mismatching tag blocks silent counter sharing: the de-aliasing a
//!   tagged structure buys). The history folds across every index bit,
//!   so the gshare-style *potential* tier is vacuous for tagged banks
//!   (any pair can meet under some history pair) and is not emitted.
//!   All components share one collision structure — the per-component
//!   history length only shifts the constants that cancel — so one
//!   `tagged` bank row stands for all of them.
//!
//! Opposite-bias pairs (one ST-candidate, one SNT-candidate) are the
//! destructive ones — the paper's motivating case — and get flagged.
//!
//! All PC arithmetic stays in `u64` via [`bpred_core::index`]; this
//! module performs no `usize` narrowing (enforced by the repo lint).

use bpred_core::index::{low_bits, pc_word};
use bpred_core::{BiModeConfig, IndexShare, PredictorSpec};

use crate::StaticBias;

/// One potentially-colliding pair of static branch sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollisionPair {
    /// Byte PC of the first (lower-PC) site.
    pub pc_a: u64,
    /// Byte PC of the second site.
    pub pc_b: u64,
    /// Which table bank the collision is in (`"pht"`, `"choice"`,
    /// `"direction"`).
    pub bank: &'static str,
    /// True when the pair collides for *every* history (same full
    /// index bits); false when only some history pairs map them to the
    /// same counter.
    pub definite: bool,
    /// True when the bank carries partial tags that still have to
    /// match before the colliding pair shares a counter: the index
    /// meets, but a tag mismatch converts interference into entry
    /// competition. Always false for untagged banks.
    pub tag_filtered: bool,
    /// True when the two sites carry opposite static bias (one
    /// ST-candidate, one SNT-candidate) — the destructive case.
    pub opposite_bias: bool,
}

/// How one bank indexes, for the pairwise test.
enum BankRule {
    /// PC-only index on `bits` low word-PC bits.
    Direct { bits: u32 },
    /// gshare on `index_bits` with `history_bits` of history.
    Gshare { index_bits: u32, history_bits: u32 },
    /// TAGE-style tagged component: `w ^ (w >> index_bits)` indexes,
    /// `w ^ (w >> tag_bits)` tags, history terms cancelling across an
    /// equal-history pair. Only the persistent (equal-history) tiers
    /// are emitted; see the module docs for why the potential tier is
    /// vacuous here.
    Tagged { index_bits: u32, tag_bits: u32 },
}

/// One bank-level verdict: how certainly the pair meets, and whether a
/// partial tag still gates actual counter sharing.
struct BankCollision {
    definite: bool,
    tag_filtered: bool,
}

impl BankRule {
    /// Whether word PCs `a` and `b` can collide, and if so how.
    /// Returns `None` for no collision.
    fn collide(&self, a: u64, b: u64) -> Option<BankCollision> {
        let untagged = |definite| BankCollision {
            definite,
            tag_filtered: false,
        };
        match *self {
            BankRule::Direct { bits } => {
                (low_bits(a, bits) == low_bits(b, bits)).then(|| untagged(true))
            }
            BankRule::Gshare {
                index_bits,
                history_bits,
            } => {
                let m = history_bits.min(index_bits);
                if low_bits(a, index_bits) == low_bits(b, index_bits) {
                    Some(untagged(true))
                } else if low_bits(a, index_bits) >> m == low_bits(b, index_bits) >> m {
                    Some(untagged(false))
                } else {
                    None
                }
            }
            BankRule::Tagged {
                index_bits,
                tag_bits,
            } => {
                let index_hash = |w: u64| low_bits(w ^ (w >> index_bits), index_bits);
                let tag_hash = |w: u64| low_bits(w ^ (w >> tag_bits), tag_bits);
                (index_hash(a) == index_hash(b)).then(|| BankCollision {
                    definite: true,
                    tag_filtered: tag_hash(a) != tag_hash(b),
                })
            }
        }
    }
}

/// The banks of `spec` this analysis can model, or `None` when the
/// spec's index function is out of scope (skewed hashing, history
/// concatenation, gated composition...). The match enumerates the
/// whole grammar so adding a family forces a modelling decision here
/// (the repo's `grammar` lint denies a wildcard arm).
fn banks(spec: &PredictorSpec) -> Option<Vec<(&'static str, BankRule)>> {
    match spec {
        PredictorSpec::Bimodal { table_bits } => {
            Some(vec![("pht", BankRule::Direct { bits: *table_bits })])
        }
        PredictorSpec::Gshare {
            table_bits,
            history_bits,
        } => Some(vec![(
            "pht",
            BankRule::Gshare {
                index_bits: *table_bits,
                history_bits: *history_bits,
            },
        )]),
        PredictorSpec::BiMode(BiModeConfig {
            direction_bits,
            choice_bits,
            history_bits,
            index_share: IndexShare::Shared,
            ..
        }) => Some(vec![
            ("choice", BankRule::Direct { bits: *choice_bits }),
            (
                "direction",
                BankRule::Gshare {
                    index_bits: *direction_bits,
                    history_bits: *history_bits,
                },
            ),
        ]),
        // One `tagged` row models every component: the per-component
        // history length only shifts constants that cancel pairwise.
        PredictorSpec::Tage {
            tag_bits,
            entry_bits,
            ..
        } => Some(vec![
            ("base", BankRule::Direct { bits: *entry_bits }),
            (
                "tagged",
                BankRule::Tagged {
                    index_bits: *entry_bits,
                    tag_bits: *tag_bits,
                },
            ),
        ]),
        // Perceptron rows are selected by PC alone: sharing a row is a
        // definite weight-vector collision, exactly the bimodal rule.
        PredictorSpec::Perceptron { rows_bits, .. } => {
            Some(vec![("weights", BankRule::Direct { bits: *rows_bits })])
        }
        // Out of scope: skewed or concatenated index functions, shared
        // per-address history state, non-shared bi-mode indexing, and
        // gated composition (which stage serves a branch is dynamic).
        PredictorSpec::AlwaysTaken
        | PredictorSpec::AlwaysNotTaken
        | PredictorSpec::Btfnt
        | PredictorSpec::Gselect { .. }
        | PredictorSpec::TwoLevel { .. }
        | PredictorSpec::BiMode(_)
        | PredictorSpec::Agree { .. }
        | PredictorSpec::Gskew { .. }
        | PredictorSpec::Yags { .. }
        | PredictorSpec::Tournament { .. }
        | PredictorSpec::TriMode { .. }
        | PredictorSpec::TwoBcGskew { .. }
        | PredictorSpec::Cascade(_) => None,
    }
}

/// Enumerates all static-site pairs that can collide in any bank of
/// `spec`. `sites` is `(byte PC, static bias)` per site; pairs are
/// emitted in `(pc_a < pc_b)` order, definite collisions before
/// tag-filtered and potential ones within a bank. Returns `None` when
/// the spec's index function is not statically modelled.
#[must_use]
pub fn collisions(spec: &PredictorSpec, sites: &[(u64, StaticBias)]) -> Option<Vec<CollisionPair>> {
    let banks = banks(spec)?;
    let mut pairs = Vec::new();
    for (bank, rule) in &banks {
        for (i, &(pc_a, bias_a)) in sites.iter().enumerate() {
            for &(pc_b, bias_b) in &sites[i + 1..] {
                let Some(hit) = rule.collide(pc_word(pc_a), pc_word(pc_b)) else {
                    continue;
                };
                let opposite_bias = matches!(
                    (bias_a, bias_b),
                    (StaticBias::Taken, StaticBias::NotTaken)
                        | (StaticBias::NotTaken, StaticBias::Taken)
                );
                pairs.push(CollisionPair {
                    pc_a,
                    pc_b,
                    bank,
                    definite: hit.definite,
                    tag_filtered: hit.tag_filtered,
                    opposite_bias,
                });
            }
        }
    }
    pairs.sort_by_key(|p| (p.bank, !p.definite, p.tag_filtered, p.pc_a, p.pc_b));
    Some(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x0040_0000;

    fn spec(text: &str) -> PredictorSpec {
        text.parse().expect("spec parses")
    }

    #[test]
    fn bimodal_collides_exactly_on_low_bits() {
        // 4 index bits = 16 word slots = 64 bytes apart.
        let s = spec("bimodal:s=4");
        let sites = vec![
            (BASE, StaticBias::Taken),
            (BASE + 64, StaticBias::NotTaken), // same low 4 word bits
            (BASE + 4, StaticBias::NotTaken),  // different slot
        ];
        let pairs = collisions(&s, &sites).expect("bimodal is modelled");
        assert_eq!(pairs.len(), 1);
        let p = pairs[0];
        assert_eq!((p.pc_a, p.pc_b), (BASE, BASE + 64));
        assert!(p.definite);
        assert!(p.opposite_bias);
        assert_eq!(p.bank, "pht");
    }

    #[test]
    fn gshare_distinguishes_definite_from_potential() {
        // s=6, m=2: top 4 bits select a "PHT", low 2 bits are
        // history-scrambled.
        let s = spec("gshare:s=6,h=2");
        let a = BASE; // word index low bits ...000000
        let same_index = BASE + 256; // +64 words: same low 6 bits
        let same_pht = BASE + 4; // +1 word: same top 4, different low 2
        let other_pht = BASE + 16; // +4 words: different top 4 bits
        let sites = vec![
            (a, StaticBias::Taken),
            (same_index, StaticBias::NotTaken),
            (same_pht, StaticBias::NotTaken),
            (other_pht, StaticBias::Taken),
        ];
        let pairs = collisions(&s, &sites).expect("gshare is modelled");
        let find = |x: u64, y: u64| pairs.iter().find(|p| (p.pc_a, p.pc_b) == (x, y));
        assert!(find(a, same_index).expect("same full index").definite);
        assert!(!find(a, same_pht).expect("same PHT").definite);
        assert!(find(a, other_pht).is_none(), "different PHTs never meet");
    }

    #[test]
    fn bimode_reports_choice_and_direction_banks() {
        let s = spec("bimode:d=4,c=6,h=4");
        // Same low 4 word bits (direction definite), different low 6
        // (choice misses): 16 words apart but not 64.
        let sites = vec![(BASE, StaticBias::Taken), (BASE + 64, StaticBias::NotTaken)];
        let pairs = collisions(&s, &sites).expect("shared-index bi-mode is modelled");
        let banks: Vec<&str> = pairs.iter().map(|p| p.bank).collect();
        assert!(banks.contains(&"direction"));
        assert!(!banks.contains(&"choice"), "low-6 choice bits differ");
        // Move to 64 words apart: both banks collide.
        let sites = vec![
            (BASE, StaticBias::Taken),
            (BASE + 256, StaticBias::NotTaken),
        ];
        let pairs = collisions(&s, &sites).expect("modelled");
        let banks: Vec<&str> = pairs.iter().map(|p| p.bank).collect();
        assert!(banks.contains(&"choice"));
        assert!(banks.contains(&"direction"));
    }

    #[test]
    fn unmodelled_specs_return_none() {
        assert!(collisions(&spec("gskew:s=4,h=4"), &[]).is_none());
        assert!(collisions(&spec("bimode:d=4,c=4,h=4,index=skewed"), &[]).is_none());
        // Which cascade stage serves a branch is decided dynamically by
        // the gates, so gated composition stays out of scope even when
        // every stage alone is modelled.
        assert!(collisions(&spec("cascade:bimodal:s=4;gshare:s=4,h=4"), &[]).is_none());
    }

    #[test]
    fn tage_tiers_collisions_by_index_and_tag_agreement() {
        // e=4, tag=6: offsets found by exhaustive search over the PC
        // hashes `w ^ (w >> 4)` (index) and `w ^ (w >> 6)` (tag).
        let s = spec("tage:t=2,h=8,tag=6,e=4");
        let shared = BASE + 5460; // same index hash, same tag hash
        let contended = BASE + 68; // same index hash, different tag hash
        let disjoint = BASE + 4; // different index hash
        let sites = vec![
            (BASE, StaticBias::Taken),
            (shared, StaticBias::NotTaken),
            (contended, StaticBias::NotTaken),
            (disjoint, StaticBias::NotTaken),
        ];
        let pairs = collisions(&s, &sites).expect("tage is modelled");
        let tagged = |x: u64, y: u64| {
            pairs
                .iter()
                .find(|p| p.bank == "tagged" && (p.pc_a, p.pc_b) == (x, y))
        };
        let hit = tagged(BASE, shared).expect("matching tag shares the counter");
        assert!(hit.definite && !hit.tag_filtered);
        let hit = tagged(BASE, contended).expect("index still meets");
        assert!(hit.definite && hit.tag_filtered);
        assert!(
            tagged(BASE, disjoint).is_none(),
            "tagged banks emit no vacuous potential tier"
        );
        // The base bank follows the bimodal rule on the raw low bits.
        assert!(pairs
            .iter()
            .any(|p| p.bank == "base" && p.definite && !p.tag_filtered));
    }

    #[test]
    fn perceptron_rows_collide_like_a_bimodal_table() {
        let s = spec("perceptron:n=4,h=8,theta=23");
        let sites = vec![
            (BASE, StaticBias::Taken),
            (BASE + 64, StaticBias::NotTaken), // same low 4 word bits
            (BASE + 4, StaticBias::NotTaken),
        ];
        let pairs = collisions(&s, &sites).expect("perceptron is modelled");
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].bank, "weights");
        assert!(pairs[0].definite && !pairs[0].tag_filtered);
        assert!(pairs[0].opposite_bias);
    }

    #[test]
    fn same_bias_pairs_are_not_flagged_destructive() {
        let s = spec("bimodal:s=2");
        let sites = vec![(BASE, StaticBias::Taken), (BASE + 16, StaticBias::Taken)];
        let pairs = collisions(&s, &sites).expect("modelled");
        assert_eq!(pairs.len(), 1);
        assert!(!pairs[0].opposite_bias);
    }
}
