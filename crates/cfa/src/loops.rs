//! Dominators and natural loops over a [`Cfg`], and the classification
//! of every conditional branch site into the paper's static roles.
//!
//! Dominators use the iterative reverse-postorder algorithm of Cooper,
//! Harvey & Kennedy. A back edge is an edge `u → h` where `h` dominates
//! `u`; its natural loop is `h` plus everything that reaches `u`
//! without passing through `h`. A retreating edge whose head does *not*
//! dominate its tail marks an irreducible region.

use std::collections::BTreeSet;

use bpred_sim::{Instruction, Program};

use crate::cfg::Cfg;

/// The dominator tree of a [`Cfg`], restricted to reachable blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// Immediate dominator per block (`idom[entry] == Some(entry)`;
    /// `None` for unreachable blocks).
    pub idom: Vec<Option<usize>>,
    /// Reverse-postorder number per block (unreachable blocks hold
    /// `usize::MAX`).
    pub rpo_number: Vec<usize>,
    /// Reachable blocks in reverse postorder.
    pub rpo: Vec<usize>,
}

impl Dominators {
    /// Computes dominators of `cfg`'s reachable subgraph.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.blocks.len();
        if n == 0 {
            return Dominators {
                idom: Vec::new(),
                rpo_number: Vec::new(),
                rpo: Vec::new(),
            };
        }

        // Iterative DFS postorder from the entry block.
        let mut postorder = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Stack of (block, next-successor-offset).
        let mut stack = vec![(0usize, 0usize)];
        visited[0] = true;
        while let Some(frame) = stack.last_mut() {
            let b = frame.0;
            let succs = &cfg.blocks[b].successors;
            if frame.1 < succs.len() {
                let to = succs[frame.1].to;
                frame.1 += 1;
                if !visited[to] {
                    visited[to] = true;
                    stack.push((to, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<usize> = postorder.iter().rev().copied().collect();
        let mut rpo_number = vec![usize::MAX; n];
        for (num, &b) in rpo.iter().enumerate() {
            rpo_number[b] = num;
        }

        let preds = cfg.predecessors();
        let mut idom: Vec<Option<usize>> = vec![None; n];
        idom[0] = Some(0);
        let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while rpo_number[a] > rpo_number[b] {
                    a = idom[a].unwrap_or(0);
                }
                while rpo_number[b] > rpo_number[a] {
                    b = idom[b].unwrap_or(0);
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = None;
                for &p in &preds[b] {
                    if rpo_number[p] == usize::MAX || idom[p].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        Dominators {
            idom,
            rpo_number,
            rpo,
        }
    }

    /// Whether block `a` dominates block `b` (reflexive). Unreachable
    /// blocks dominate nothing and are dominated by nothing.
    #[must_use]
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let known = |x: usize| self.idom.get(x).is_some_and(|d| d.is_some());
        if !known(a) || !known(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(parent) if parent != cur => cur = parent,
                _ => return false,
            }
        }
    }
}

/// One natural loop: a dominating header plus the body of its back
/// edges (back edges sharing a header are merged, per convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header block.
    pub header: usize,
    /// All blocks in the loop, header included.
    pub body: BTreeSet<usize>,
    /// Tail blocks of the loop's back edges.
    pub back_edges: Vec<usize>,
}

/// Finds all natural loops of `cfg`, sorted by header block id, and the
/// list of irreducible retreating edges `(tail, head)` — retreating in
/// reverse postorder but with a non-dominating head.
#[must_use]
pub fn natural_loops(cfg: &Cfg, doms: &Dominators) -> (Vec<NaturalLoop>, Vec<(usize, usize)>) {
    let preds = cfg.predecessors();
    let mut loops: Vec<NaturalLoop> = Vec::new();
    let mut irreducible = Vec::new();
    for (u, block) in cfg.blocks.iter().enumerate() {
        if !cfg.reachable[u] {
            continue;
        }
        for e in &block.successors {
            let h = e.to;
            if doms.dominates(h, u) {
                // Natural loop of back edge u -> h.
                let mut body: BTreeSet<usize> = BTreeSet::new();
                body.insert(h);
                let mut stack = vec![u];
                while let Some(b) = stack.pop() {
                    if body.insert(b) {
                        for &p in &preds[b] {
                            if cfg.reachable[p] {
                                stack.push(p);
                            }
                        }
                    }
                }
                if let Some(existing) = loops.iter_mut().find(|l| l.header == h) {
                    existing.body.extend(body);
                    existing.back_edges.push(u);
                } else {
                    loops.push(NaturalLoop {
                        header: h,
                        body,
                        back_edges: vec![u],
                    });
                }
            } else if doms.rpo_number[h] <= doms.rpo_number[u] && doms.rpo_number[h] != usize::MAX {
                // Retreating but not dominating: irreducible entry.
                irreducible.push((u, h));
            }
        }
    }
    loops.sort_by_key(|l| l.header);
    (loops, irreducible)
}

/// Id of the innermost loop (index into the `loops` slice) containing
/// block `b`, by smallest body.
#[must_use]
pub fn innermost_loop(loops: &[NaturalLoop], b: usize) -> Option<usize> {
    loops
        .iter()
        .enumerate()
        .filter(|(_, l)| l.body.contains(&b))
        .min_by_key(|(_, l)| l.body.len())
        .map(|(i, _)| i)
}

/// Static role of a conditional branch site (paper §2: loop branches
/// carry strong static bias, data-dependent guards do not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchRole {
    /// The taken edge is a loop back edge.
    LoopBack,
    /// The taken edge leaves the innermost containing loop.
    LoopExit,
    /// A forward, data-dependent guard.
    ForwardGuard,
    /// Part of an irreducible retreating edge.
    Irreducible,
}

impl BranchRole {
    /// Short table label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BranchRole::LoopBack => "loop-back",
            BranchRole::LoopExit => "loop-exit",
            BranchRole::ForwardGuard => "forward-guard",
            BranchRole::Irreducible => "irreducible",
        }
    }
}

/// Classifies the conditional branch at instruction index `i`.
#[must_use]
pub fn classify_site(
    program: &Program,
    cfg: &Cfg,
    doms: &Dominators,
    loops: &[NaturalLoop],
    irreducible: &[(usize, usize)],
    i: usize,
) -> BranchRole {
    let Some(Instruction::Branch { target, .. }) = program.instructions.get(i) else {
        return BranchRole::ForwardGuard;
    };
    let b = cfg.block_of[i];
    if *target >= program.instructions.len() {
        // Statically-diagnosed out-of-bounds target (see
        // `Cfg::out_of_bounds`); no edge exists to classify.
        return BranchRole::ForwardGuard;
    }
    let t = cfg.block_of[*target];
    if irreducible.contains(&(b, t)) {
        return BranchRole::Irreducible;
    }
    if doms.dominates(t, b) {
        return BranchRole::LoopBack;
    }
    if let Some(l) = innermost_loop(loops, b) {
        if !loops[l].body.contains(&t) {
            return BranchRole::LoopExit;
        }
    }
    BranchRole::ForwardGuard
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_sim::assemble;

    fn analyze(
        src: &str,
    ) -> (
        Program,
        Cfg,
        Dominators,
        Vec<NaturalLoop>,
        Vec<(usize, usize)>,
    ) {
        let p = assemble(src).expect("assembles");
        let c = Cfg::build(&p);
        let d = Dominators::compute(&c);
        let (l, irr) = natural_loops(&c, &d);
        (p, c, d, l, irr)
    }

    #[test]
    fn simple_loop_is_found() {
        let (p, c, d, loops, irr) = analyze(
            r"
                  li r1, 3
            loop: addi r1, r1, -1
                  bne r1, r0, loop
                  halt
            ",
        );
        assert!(irr.is_empty());
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(c.blocks[l.header].start, 1, "header starts at `loop:`");
        let role = classify_site(&p, &c, &d, &loops, &irr, 2);
        assert_eq!(role, BranchRole::LoopBack);
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let (_, c, d, _, _) = analyze(
            r"
                  beq r1, r0, a
                  nop
            a:    halt
            ",
        );
        for b in 0..c.blocks.len() {
            assert!(d.dominates(0, b), "entry must dominate block {b}");
        }
        assert!(!d.dominates(1, 2), "neither arm dominates the join");
    }

    #[test]
    fn loop_exit_and_guard_are_distinguished() {
        let (p, c, d, loops, irr) = analyze(
            r"
                  li r1, 10
            loop: addi r1, r1, -1
                  beq r1, r0, done     ; exit: leaves the loop
                  bne r1, r1, loop2    ; guard: taken target inside loop
            loop2:
                  j loop
            done: halt
            ",
        );
        assert_eq!(loops.len(), 1);
        assert_eq!(
            classify_site(&p, &c, &d, &loops, &irr, 2),
            BranchRole::LoopExit
        );
        assert_eq!(
            classify_site(&p, &c, &d, &loops, &irr, 3),
            BranchRole::ForwardGuard
        );
    }

    #[test]
    fn nested_loops_nest_properly() {
        let (_, c, d, loops, irr) = analyze(
            r"
                  li r1, 4
            outer:li r2, 4
            inner:addi r2, r2, -1
                  bne r2, r0, inner
                  addi r1, r1, -1
                  bne r1, r0, outer
                  halt
            ",
        );
        assert!(irr.is_empty());
        assert_eq!(loops.len(), 2);
        let (a, b) = (&loops[0], &loops[1]);
        let (outer, inner) = if a.body.len() > b.body.len() {
            (a, b)
        } else {
            (b, a)
        };
        assert!(
            inner.body.iter().all(|blk| outer.body.contains(blk)),
            "inner loop body must be contained in the outer loop"
        );
        // The innermost loop of an inner block is the smaller one.
        let inner_tail = inner.back_edges[0];
        assert_eq!(
            innermost_loop(&loops, inner_tail)
                .map(|i| loops[i].header)
                .expect("in a loop"),
            inner.header
        );
        let _ = (c, d);
    }

    #[test]
    fn forward_branches_only_yield_no_loops() {
        let (p, c, d, loops, irr) = analyze(
            r"
                  beq r1, r0, skip
                  nop
            skip: halt
            ",
        );
        assert!(loops.is_empty());
        assert!(irr.is_empty());
        assert_eq!(
            classify_site(&p, &c, &d, &loops, &irr, 0),
            BranchRole::ForwardGuard
        );
    }
}
