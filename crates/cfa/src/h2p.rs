//! Static hard-to-predict (H2P) ranking.
//!
//! The bi-mode paper frames mispredictions as inherent (weakly-biased
//! sites) plus interference (opposite-bias sites sharing a counter).
//! This module bounds both terms statically and composes them into a
//! per-site misprediction-bound score:
//!
//! * [`taken_bounds`] derives per-site taken-probability bounds: a
//!   branch whose operands the abstract interpreter decides is exactly
//!   `[1, 1]` or `[0, 0]`; the back edge of a resolved counted loop
//!   executing `n` times is taken exactly `n - 1` of them, so
//!   `[p, p]` with `p = (n-1)/n`; everything else keeps the trivially
//!   sound `[0, 1]` plus a Ball–Larus-style shape estimate (back edges
//!   taken, exits not taken, equality guards mostly false).
//! * [`rank_h2p`] weighs each site by how often it runs (the product of
//!   enclosing resolved trip counts), scores its inherent
//!   misprediction bound `min(p, 1-p)`, adds penalties for provably
//!   destructive aliasing from [`crate::alias`], and returns the sites
//!   sorted worst-first — the static twin of a dynamic top-k
//!   misprediction table.
//!
//! The exact bounds (and only those) carry `exact = true`; the
//! `cfa/absint` verify pass holds them against observed execution.

use bpred_core::PredictorSpec;
use bpred_sim::isa::Cond;
use bpred_sim::{Instruction, Program};

use crate::absint::{decide, read};
use crate::loops::BranchRole;
use crate::{alias, Analysis, SiteReport, StaticBias};

/// Bounds on the probability that a site resolves taken, per execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TakenBounds {
    /// Sound lower bound on the taken fraction.
    pub lo: f64,
    /// Sound upper bound on the taken fraction.
    pub hi: f64,
    /// Point estimate used for ranking and bias classification. Equal
    /// to the bounds when they are tight; a shape heuristic otherwise.
    pub estimate: f64,
    /// Whether `[lo, hi]` is a proof obligation (decided condition or
    /// resolved trip count) rather than the trivial `[0, 1]`.
    pub exact: bool,
}

impl TakenBounds {
    /// The trivially sound bounds around a heuristic estimate.
    #[must_use]
    pub fn heuristic(estimate: f64) -> TakenBounds {
        TakenBounds {
            lo: 0.0,
            hi: 1.0,
            estimate,
            exact: false,
        }
    }

    /// Tight bounds at exactly `p`.
    #[must_use]
    pub fn exact(p: f64) -> TakenBounds {
        TakenBounds {
            lo: p,
            hi: p,
            estimate: p,
            exact: true,
        }
    }

    /// The static bias class implied by the estimate, at the paper's
    /// 90% strong-bias threshold.
    #[must_use]
    pub fn bias(&self) -> StaticBias {
        if self.estimate >= 0.9 {
            StaticBias::Taken
        } else if self.estimate <= 0.1 {
            StaticBias::NotTaken
        } else {
            StaticBias::Mixed
        }
    }
}

/// Ball–Larus-style shape estimates for sites the value analysis
/// cannot pin: back edges are strongly taken, exits strongly not,
/// equality guards usually fail.
fn shape_estimate(role: BranchRole, cond: Cond) -> f64 {
    match role {
        BranchRole::LoopBack => 0.88,
        BranchRole::LoopExit => 0.12,
        BranchRole::ForwardGuard => match cond {
            Cond::Eq => 0.3,
            Cond::Ne => 0.7,
            Cond::Lt | Cond::Ge => 0.5,
        },
        BranchRole::Irreducible => 0.5,
    }
}

fn site_bounds(program: &Program, analysis: &Analysis, site: &SiteReport) -> TakenBounds {
    let Some(Instruction::Branch { cond, rs, rt, .. }) = program.instructions.get(site.index)
    else {
        return TakenBounds::heuristic(0.5);
    };
    let state = analysis.flow.state_at(program, &analysis.cfg, site.index);
    if let Some(taken) = decide(*cond, read(&state, *rs), read(&state, *rt)) {
        return TakenBounds::exact(if taken { 1.0 } else { 0.0 });
    }
    if let Some(n) = site.trip_count {
        // A resolved back edge runs n times per loop entry and is
        // taken on all but the final test, every entry alike.
        #[allow(clippy::cast_precision_loss)]
        return TakenBounds::exact((n - 1) as f64 / n as f64);
    }
    TakenBounds::heuristic(shape_estimate(site.role, *cond))
}

/// Per-site taken-probability bounds, parallel to `analysis.sites`.
#[must_use]
pub fn taken_bounds(program: &Program, analysis: &Analysis) -> Vec<TakenBounds> {
    analysis
        .sites
        .iter()
        .map(|s| site_bounds(program, analysis, s))
        .collect()
}

/// One reachable site in the static H2P ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct H2pSite {
    /// Byte PC of the branch.
    pub pc: u64,
    /// Instruction index of the branch.
    pub index: usize,
    /// Taken-probability bounds at this site.
    pub bounds: TakenBounds,
    /// Static execution weight: the product of resolved trip counts of
    /// every enclosing loop (unresolved loops contribute a fixed
    /// factor), 1.0 for straight-line sites.
    pub weight: f64,
    /// Inherent per-execution misprediction bound `min(p, 1 - p)`.
    pub inherent: f64,
    /// Partners this site provably destructively aliases with
    /// (definite index collision, opposite bias, no tag to filter it).
    pub destructive: usize,
    /// Partners that may alias destructively (possible collision, or a
    /// definite one a tag would usually filter).
    pub possible: usize,
    /// Partners the collision is provably benign with: the pair shares
    /// a counter but not with opposite bias.
    pub benign: usize,
    /// Ranking score: `weight * min(1, inherent + penalties)`.
    pub score: f64,
    /// The rendered instruction, for disagreement listings.
    pub text: String,
}

/// Fixed trip factor for loops the analysis cannot resolve.
const UNRESOLVED_TRIPS: f64 = 8.0;

/// Per-execution misprediction penalty for one provably destructive
/// alias partner, and for one merely possible partner. Interference on
/// a shared 2-bit counter costs well under a full misprediction per
/// execution, and an unproven collision less still.
const DESTRUCTIVE_PENALTY: f64 = 0.25;
const POSSIBLE_PENALTY: f64 = 0.05;

/// Resolved trip count of each loop, keyed by position in
/// `analysis.loops`, where its single back-edge branch resolved.
fn loop_trips(analysis: &Analysis) -> Vec<Option<u64>> {
    analysis
        .loops
        .iter()
        .map(|l| {
            let &[tail] = l.back_edges.as_slice() else {
                return None;
            };
            let last = analysis.cfg.blocks[tail].end - 1;
            analysis
                .sites
                .iter()
                .find(|s| s.index == last)
                .and_then(|s| s.trip_count)
        })
        .collect()
}

/// How many times the site's block runs per program run, statically:
/// the product over enclosing loops of their resolved trip counts.
fn execution_weight(analysis: &Analysis, trips: &[Option<u64>], index: usize) -> f64 {
    let Some(block) = analysis.cfg.block_containing(index) else {
        return 0.0;
    };
    let mut weight = 1.0;
    for (l, t) in analysis.loops.iter().zip(trips) {
        if l.body.contains(&block) {
            #[allow(clippy::cast_precision_loss)]
            let factor = t.map_or(UNRESOLVED_TRIPS, |n| n as f64);
            weight *= factor;
        }
    }
    weight
}

/// The statically-ranked H2P candidate list for `spec`: every
/// reachable site, worst expected-misprediction bound first. Returns
/// `None` when [`alias::collisions`] does not model the spec's index
/// structure — the ranking would silently drop its interference term.
#[must_use]
pub fn rank_h2p(
    spec: &PredictorSpec,
    program: &Program,
    analysis: &Analysis,
) -> Option<Vec<H2pSite>> {
    let bounds = taken_bounds(program, analysis);
    let biased: Vec<(u64, StaticBias)> = analysis
        .sites
        .iter()
        .zip(&bounds)
        .map(|(s, b)| (s.pc, b.bias()))
        .collect();
    let pairs = alias::collisions(spec, &biased)?;
    let trips = loop_trips(analysis);
    let mut ranked: Vec<H2pSite> = analysis
        .sites
        .iter()
        .zip(&bounds)
        .filter(|(s, _)| s.reachable)
        .map(|(s, b)| {
            let mut destructive = 0;
            let mut possible = 0;
            let mut benign = 0;
            for pair in pairs.iter().filter(|c| c.pc_a == s.pc || c.pc_b == s.pc) {
                if !pair.opposite_bias {
                    benign += 1;
                } else if pair.definite && !pair.tag_filtered {
                    destructive += 1;
                } else {
                    possible += 1;
                }
            }
            let inherent = b.estimate.min(1.0 - b.estimate);
            #[allow(clippy::cast_precision_loss)]
            let penalty =
                DESTRUCTIVE_PENALTY * destructive as f64 + POSSIBLE_PENALTY * possible as f64;
            let weight = execution_weight(analysis, &trips, s.index);
            H2pSite {
                pc: s.pc,
                index: s.index,
                bounds: *b,
                weight,
                inherent,
                destructive,
                possible,
                benign,
                score: weight * (inherent + penalty).min(1.0),
                text: s.text.clone(),
            }
        })
        .collect();
    ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.pc.cmp(&b.pc)));
    Some(ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use bpred_sim::assemble;

    #[test]
    fn counted_back_edge_gets_exact_trip_bounds() {
        let p = assemble(
            r"
                  li r1, 10
                  li r2, 0
            loop: addi r2, r2, 1
                  blt r2, r1, loop
                  halt
            ",
        )
        .expect("assembles");
        let a = analyze(&p);
        let b = taken_bounds(&p, &a);
        assert_eq!(b.len(), 1);
        assert!(b[0].exact);
        assert!((b[0].estimate - 0.9).abs() < 1e-12);
        assert_eq!(b[0].lo, b[0].hi);
        assert_eq!(b[0].bias(), StaticBias::Taken);
    }

    #[test]
    fn decided_condition_gets_certain_bounds() {
        // beq r0, r0 always resolves taken; the skipped increment is
        // provably dead.
        let p = assemble(
            r"
                  beq r0, r0, skip
                  addi r1, r1, 1
            skip: halt
            ",
        )
        .expect("assembles");
        let a = analyze(&p);
        let b = taken_bounds(&p, &a);
        assert_eq!(b.len(), 1);
        assert_eq!((b[0].lo, b[0].hi, b[0].exact), (1.0, 1.0, true));
    }

    #[test]
    fn data_dependent_guard_keeps_trivial_bounds() {
        let p = assemble(
            r"
                  lw r1, (r0)
                  blt r1, r0, neg
                  halt
            neg:  halt
            ",
        )
        .expect("assembles");
        let a = analyze(&p);
        let b = taken_bounds(&p, &a);
        assert_eq!(b.len(), 1);
        assert!(!b[0].exact);
        assert_eq!((b[0].lo, b[0].hi), (0.0, 1.0));
        assert_eq!(b[0].bias(), StaticBias::Mixed);
    }

    #[test]
    fn ranking_puts_the_weakly_biased_loop_guard_first() {
        // A 16-trip loop with a data-dependent guard inside it: both
        // sites share the weight 16, but the guard's inherent bound
        // (0.5) dwarfs the back edge's (1/16).
        let p = assemble(
            r"
                  li r1, 16
                  li r2, 0
            loop: lw r3, (r2)
                  blt r3, r0, skip
                  addi r4, r4, 1
            skip: addi r2, r2, 1
                  blt r2, r1, loop
                  halt
            ",
        )
        .expect("assembles");
        let a = analyze(&p);
        let spec: PredictorSpec = "gshare:s=10,h=10".parse().expect("parses");
        let ranked = rank_h2p(&spec, &p, &a).expect("gshare is modelled");
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].index, 3, "the guard outranks the back edge");
        assert!(ranked[0].score > ranked[1].score);
        assert!((ranked[0].weight - 16.0).abs() < 1e-9);
        assert!((ranked[1].weight - 16.0).abs() < 1e-9);
        assert!(ranked[1].bounds.exact);
    }

    #[test]
    fn unmodelled_specs_rank_nothing() {
        let p = assemble("li r1, 1\nbeq r1, r0, out\nout: halt").expect("assembles");
        let a = analyze(&p);
        let spec: PredictorSpec = "gskew:s=10,h=10".parse().expect("parses");
        assert!(rank_h2p(&spec, &p, &a).is_none());
    }

    #[test]
    fn unreachable_sites_stay_out_of_the_ranking() {
        let p = assemble("halt\nbeq r0, r0, skip\nskip: halt").expect("assembles");
        let a = analyze(&p);
        let spec: PredictorSpec = "bimodal:s=10".parse().expect("parses");
        let ranked = rank_h2p(&spec, &p, &a).expect("bimodal is modelled");
        assert!(ranked.is_empty());
    }
}
