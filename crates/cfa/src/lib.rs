//! `bpred-cfa`: static control-flow, bias, and PHT-aliasing analysis of
//! `bpred-sim` kernel programs.
//!
//! The bi-mode paper's central claim is about *bias*: most static branch
//! sites are strongly taken or strongly not-taken, and destructive PHT
//! aliasing happens when opposite-bias sites share a counter. The
//! dynamic side of the repo measures this from traces; this crate
//! derives the same structure *statically* from the program text, so
//! the two views can be cross-checked instruction by instruction:
//!
//! * [`cfg`] — basic blocks, edges, reachability, and static detection
//!   of out-of-bounds transfer targets (mirroring the machine's
//!   `BranchTargetOutOfBounds` diagnostic byte for byte);
//! * [`loops`] — dominators, natural loops, and the classification of
//!   every conditional site as loop back edge, loop exit, forward
//!   guard, or irreducible;
//! * [`absint`] — abstract interpretation over an interval + known-bits
//!   domain (widening/narrowing fixpoint), resolving trip counts of
//!   counted loops and bounding per-site branch operand values;
//! * [`h2p`] — per-site taken-probability bounds (trip counts, decided
//!   conditions, Ball–Larus-style shape heuristics) composed with the
//!   alias model into a statically-ranked hard-to-predict list;
//! * [`alias`] — which static site pairs can collide in a predictor's
//!   pattern-history table, per [`bpred_core::PredictorSpec`];
//! * [`audit`] — internal-consistency checks wired into `bpred-check`.
//!
//! [`analyze`] runs the whole pipeline and returns an [`Analysis`] with
//! one [`SiteReport`] per conditional branch site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod absint;
pub mod alias;
pub mod audit;
pub mod cfg;
pub mod h2p;
pub mod loops;

use bpred_sim::{disassemble, Instruction, Program};

pub use absint::{decide, trip_counts, AbsFlow, AbsVal, Value};
pub use alias::{collisions, CollisionPair};
pub use audit::audit;
pub use cfg::{Block, Cfg, Edge, EdgeKind, OutOfBoundsTarget};
pub use h2p::{rank_h2p, taken_bounds, H2pSite, TakenBounds};
pub use loops::{
    classify_site, innermost_loop, natural_loops, BranchRole, Dominators, NaturalLoop,
};

/// Static direction bias predicted for a branch site, the static twin
/// of the dynamic `BiasBucket` (paper §2's ST / SNT / weakly-biased
/// classes at the 90% threshold).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticBias {
    /// Predicted strongly taken (loop back edges).
    Taken,
    /// Predicted strongly not-taken (loop exits).
    NotTaken,
    /// No static prediction (data-dependent guards, irreducible edges).
    Mixed,
}

impl StaticBias {
    /// Maps a control-flow role to its bias candidate class.
    #[must_use]
    pub fn of(role: BranchRole) -> Self {
        match role {
            BranchRole::LoopBack => StaticBias::Taken,
            BranchRole::LoopExit => StaticBias::NotTaken,
            BranchRole::ForwardGuard | BranchRole::Irreducible => StaticBias::Mixed,
        }
    }

    /// Table label, aligned with the dynamic `BiasBucket` labels.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StaticBias::Taken => "ST-candidate",
            StaticBias::NotTaken => "SNT-candidate",
            StaticBias::Mixed => "WB-candidate",
        }
    }
}

/// Everything the analysis concluded about one conditional branch site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteReport {
    /// Instruction index of the branch.
    pub index: usize,
    /// Byte PC of the branch.
    pub pc: u64,
    /// Control-flow role.
    pub role: BranchRole,
    /// Static bias candidate derived from the role.
    pub bias: StaticBias,
    /// Resolved executions of this branch per program run, when it is
    /// the back edge of a statically counted loop.
    pub trip_count: Option<u64>,
    /// Whether the site is reachable from the program entry.
    pub reachable: bool,
    /// The rendered instruction, for human-readable mismatch listings.
    pub text: String,
}

/// The full static analysis of one program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree over the reachable subgraph.
    pub doms: Dominators,
    /// Natural loops, sorted by header block.
    pub loops: Vec<NaturalLoop>,
    /// Irreducible retreating edges `(tail, head)`.
    pub irreducible: Vec<(usize, usize)>,
    /// Abstract-interpretation fixpoint (interval + known-bits).
    pub flow: AbsFlow,
    /// One report per conditional branch site, in program order.
    pub sites: Vec<SiteReport>,
}

impl Analysis {
    /// Byte PCs of the reachable conditional sites, in program order —
    /// the static counterpart of a trace's per-site table.
    #[must_use]
    pub fn reachable_site_pcs(&self) -> Vec<u64> {
        self.sites
            .iter()
            .filter(|s| s.reachable)
            .map(|s| s.pc)
            .collect()
    }

    /// The report for the site at byte PC `pc`, if any.
    #[must_use]
    pub fn site_at(&self, pc: u64) -> Option<&SiteReport> {
        self.sites.iter().find(|s| s.pc == pc)
    }
}

/// Runs the whole static pipeline on `program`.
#[must_use]
pub fn analyze(program: &Program) -> Analysis {
    let cfg = Cfg::build(program);
    let doms = Dominators::compute(&cfg);
    let (loops, irreducible) = natural_loops(&cfg, &doms);
    let flow = AbsFlow::compute(program, &cfg);
    let trips = trip_counts(program, &cfg, &flow, &loops);
    let sites = Cfg::conditional_sites(program)
        .into_iter()
        .map(|i| {
            let role = classify_site(program, &cfg, &doms, &loops, &irreducible, i);
            SiteReport {
                index: i,
                pc: Program::pc_of(i),
                role,
                bias: StaticBias::of(role),
                trip_count: trips.get(&i).copied(),
                reachable: cfg.block_containing(i).is_some_and(|b| cfg.reachable[b]),
                text: site_text(program, i),
            }
        })
        .collect();
    Analysis {
        cfg,
        doms,
        loops,
        irreducible,
        flow,
        sites,
    }
}

/// Renders the instruction at index `i` the way the disassembler would,
/// prefixed with its index, e.g. `[12] bge r2, r3, L4`.
fn site_text(program: &Program, i: usize) -> String {
    match program.instructions.get(i) {
        Some(Instruction::Branch {
            cond,
            rs,
            rt,
            target,
        }) => format!("[{i}] {} {rs}, {rt}, L{target}", cond.mnemonic()),
        Some(other) => format!("[{i}] {other:?}"),
        None => format!("[{i}] <out of bounds>"),
    }
}

/// FNV-1a-64 digest of the program's canonical disassembly (text and
/// data image both), used as the store fingerprint for per-program
/// analysis jobs.
#[must_use]
pub fn program_digest(program: &Program) -> u64 {
    let text = disassemble(program);
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_sim::assemble;

    #[test]
    fn analyze_classifies_a_counted_loop() {
        let p = assemble(
            r"
                  li r1, 10
                  li r2, 0
            loop: addi r2, r2, 1
                  blt r2, r1, loop
                  halt
            ",
        )
        .expect("assembles");
        let a = analyze(&p);
        assert_eq!(a.sites.len(), 1);
        let s = &a.sites[0];
        assert_eq!(s.role, BranchRole::LoopBack);
        assert_eq!(s.bias, StaticBias::Taken);
        assert_eq!(s.bias.label(), "ST-candidate");
        assert_eq!(s.trip_count, Some(10));
        assert!(s.reachable);
        assert_eq!(s.text, "[3] blt r2, r1, L2");
        assert_eq!(a.reachable_site_pcs(), vec![s.pc]);
        assert_eq!(a.site_at(s.pc), Some(s));
    }

    #[test]
    fn unreachable_sites_are_reported_but_flagged() {
        let p = assemble("halt\nbeq r0, r0, skip\nskip: halt").expect("assembles");
        let a = analyze(&p);
        assert_eq!(a.sites.len(), 1);
        assert!(!a.sites[0].reachable);
        assert!(a.reachable_site_pcs().is_empty());
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let p = assemble("li r1, 1\nhalt").expect("assembles");
        let q = assemble("li r1, 2\nhalt").expect("assembles");
        assert_eq!(program_digest(&p), program_digest(&p));
        assert_ne!(program_digest(&p), program_digest(&q));
    }
}
