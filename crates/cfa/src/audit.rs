//! Internal-consistency audit of the static analysis, wired into the
//! repo-wide `bpred-check` verification pass (`cfa/audit`).
//!
//! Rather than trusting the CFG and dominator code because its unit
//! tests pass, the audit re-checks the *structural invariants* on every
//! real kernel program: blocks partition the instruction stream, every
//! edge lands on a leader, the dominator tree is a tree rooted at the
//! entry, loop bodies nest, and the disassembler round-trips the
//! program without changing its branch-site set.

use std::collections::BTreeSet;

use bpred_sim::{assemble, disassemble, Instruction, Program};

use crate::cfg::Cfg;
use crate::loops::{natural_loops, Dominators};

/// Audits `program`'s static analysis; returns human-readable
/// violations (empty means the audit passed).
#[must_use]
pub fn audit(program: &Program) -> Vec<String> {
    let mut violations = Vec::new();
    let cfg = Cfg::build(program);
    let doms = Dominators::compute(&cfg);
    let (loops, _) = natural_loops(&cfg, &doms);
    let len = program.instructions.len();

    // Blocks partition [0, len) in order, and block_of agrees.
    let mut expected_start = 0usize;
    for (id, b) in cfg.blocks.iter().enumerate() {
        if b.start != expected_start || b.end <= b.start || b.end > len {
            violations.push(format!(
                "block {id} spans [{}, {}) but should start at {expected_start}",
                b.start, b.end
            ));
            break;
        }
        expected_start = b.end;
        for i in b.start..b.end {
            if cfg.block_of[i] != id {
                violations.push(format!(
                    "block_of[{i}] = {} but instruction {i} is in block {id}",
                    cfg.block_of[i]
                ));
            }
        }
    }
    if expected_start != len && !cfg.blocks.is_empty() {
        violations.push(format!(
            "blocks cover [0, {expected_start}) of a {len}-instruction program"
        ));
    }

    // Every edge lands on a block leader, and every in-bounds
    // branch/jal target is one.
    for (id, b) in cfg.blocks.iter().enumerate() {
        for e in &b.successors {
            if e.to >= cfg.blocks.len() {
                violations.push(format!("block {id} has an edge to missing block {}", e.to));
            }
        }
    }
    for (i, instr) in program.instructions.iter().enumerate() {
        let target = match instr {
            Instruction::Branch { target, .. } | Instruction::Jal { target, .. } => *target,
            _ => continue,
        };
        if target < len {
            let t = cfg.block_of[target];
            if cfg.blocks[t].start != target {
                violations.push(format!(
                    "instruction {i} targets {target}, which is not a block leader"
                ));
            }
        }
    }

    // The dominator tree is a tree rooted at the entry: every reachable
    // block's idom chain reaches the entry without revisiting, and idom
    // numbers strictly decrease in reverse postorder.
    for (b, reach) in cfg.reachable.iter().enumerate() {
        if !reach {
            continue;
        }
        match doms.idom[b] {
            None => violations.push(format!("reachable block {b} has no immediate dominator")),
            Some(parent) => {
                if b != 0 && doms.rpo_number[parent] >= doms.rpo_number[b] {
                    violations.push(format!(
                        "idom[{b}] = {parent} does not precede it in reverse postorder"
                    ));
                }
                let mut cur = b;
                let mut steps = 0usize;
                while cur != 0 {
                    match doms.idom[cur] {
                        Some(p) if p != cur => cur = p,
                        _ => {
                            violations
                                .push(format!("idom chain from block {b} stalls at block {cur}"));
                            break;
                        }
                    }
                    steps += 1;
                    if steps > cfg.blocks.len() {
                        violations.push(format!("idom chain from block {b} cycles"));
                        break;
                    }
                }
            }
        }
    }

    // Loop consistency: header and back-edge tails in the body, header
    // dominates the body, and distinct loops are disjoint or nested.
    for l in &loops {
        if !l.body.contains(&l.header) {
            violations.push(format!("loop at block {} excludes its header", l.header));
        }
        for &t in &l.back_edges {
            if !l.body.contains(&t) {
                violations.push(format!(
                    "loop at block {} excludes back-edge tail {t}",
                    l.header
                ));
            }
        }
        for &b in &l.body {
            if !doms.dominates(l.header, b) {
                violations.push(format!(
                    "loop header {} does not dominate body block {b}",
                    l.header
                ));
            }
        }
    }
    for (i, a) in loops.iter().enumerate() {
        for b in &loops[i + 1..] {
            let overlap = a.body.intersection(&b.body).count();
            let nested = overlap == a.body.len().min(b.body.len());
            if overlap != 0 && !nested {
                violations.push(format!(
                    "loops at blocks {} and {} overlap without nesting",
                    a.header, b.header
                ));
            }
        }
    }

    // The disassembly round-trips, and the reassembled program has the
    // same conditional-site set — the static sites named in reports are
    // exactly the sites a reader of the listing sees.
    match assemble(&disassemble(program)) {
        Ok(roundtrip) => {
            if roundtrip != *program {
                violations.push("disassembly does not round-trip the program".to_string());
            }
            let sites = |p: &Program| -> BTreeSet<usize> {
                Cfg::conditional_sites(p).into_iter().collect()
            };
            if sites(program) != sites(&roundtrip) {
                violations
                    .push("round-tripped program has a different branch-site set".to_string());
            }
        }
        Err(e) => violations.push(format!("disassembly does not reassemble: {e}")),
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_sim::kernels;

    #[test]
    fn kernel_programs_pass_the_audit() {
        for (name, source) in [
            ("bubble", kernels::bubble_sort_source(40)),
            ("bsearch", kernels::binary_search_source(64, 50)),
            ("sieve", kernels::sieve_source(200)),
            ("strsearch", kernels::string_search_source(400)),
            ("quicksort", kernels::quicksort_source(80)),
            ("matmul", kernels::matmul_source(6)),
        ] {
            let p = assemble(&source).expect("kernel assembles");
            let v = audit(&p);
            assert!(v.is_empty(), "{name}: {v:?}");
        }
    }

    #[test]
    fn audit_accepts_tiny_programs() {
        let p = assemble("halt").expect("assembles");
        assert!(audit(&p).is_empty());
        let empty = Program {
            instructions: Vec::new(),
            data: Vec::new(),
        };
        assert!(audit(&empty).is_empty());
    }
}
