//! Property tests: the abstract interpreter against the ISA machine's
//! ground truth on randomized counted-loop kernels.
//!
//! Every resolvable loop shape is generated — strict and inclusive
//! bounds, counting up and down, with the counter on either side of
//! the comparison, plus the exact-arithmetic `bne` forms — and for each
//! random kernel three things must agree with a full interpretation:
//!
//! 1. the resolved static trip count equals the number of times the
//!    machine actually executes the back-edge branch;
//! 2. every operand value the interpreter observes at the branch lies
//!    inside the abstract value set the fixpoint derived for that site
//!    (interval and known bits both);
//! 3. loop-invariant constants survive the loop: the bound register's
//!    abstract value at the branch is still the exact constant.
//!
//! A straight-line chain property subsumes the bounded
//! constant-propagation cases this pass replaced: `li`/`addi` chains
//! must propagate to exact constants at a downstream branch.

use bpred_cfa::analyze;
use bpred_sim::{assemble, Machine};
use bpred_trace::Trace;
use proptest::prelude::*;

/// Generous step budget: the widest generated loop runs well under a
/// hundred iterations of a two-instruction body.
const FUEL: u64 = 50_000;

/// One generated counted loop: the branch text, the signed step, and
/// the bound that makes the shape terminate.
struct LoopShape {
    branch: &'static str,
    step: i64,
    bound: i64,
}

/// Maps a shape selector to one of the six resolvable do-while forms.
/// `init`/`limit` land in [-16, 16], `mag` in [1, 3], `k` in [1, 24].
fn loop_shape(selector: usize, init: i64, limit: i64, mag: i64, k: i64) -> LoopShape {
    match selector {
        // Up, strict: loop while counter < bound (counter as rs).
        0 => LoopShape {
            branch: "blt r1, r2, loop",
            step: mag,
            bound: limit,
        },
        // Up, inclusive: loop while counter <= bound (counter as rt).
        1 => LoopShape {
            branch: "bge r2, r1, loop",
            step: mag,
            bound: limit,
        },
        // Down, strict: loop while counter > bound (counter as rt).
        2 => LoopShape {
            branch: "blt r2, r1, loop",
            step: -mag,
            bound: limit,
        },
        // Down, inclusive: loop while counter >= bound (counter as rs).
        3 => LoopShape {
            branch: "bge r1, r2, loop",
            step: -mag,
            bound: limit,
        },
        // Exact inequality, counting up: bound = init + k * mag.
        4 => LoopShape {
            branch: "bne r1, r2, loop",
            step: mag,
            bound: init + k * mag,
        },
        // Exact inequality, counting down, operands swapped.
        _ => LoopShape {
            branch: "bne r2, r1, loop",
            step: -mag,
            bound: init - k * mag,
        },
    }
}

proptest! {
    #[test]
    fn resolved_trip_counts_and_value_sets_match_the_machine(
        selector in 0usize..6,
        init in -16i64..=16,
        limit in -16i64..=16,
        mag in 1i64..=3,
        k in 1i64..=24,
    ) {
        let shape = loop_shape(selector, init, limit, mag, k);
        let source = format!(
            "      li r1, {init}\n      li r2, {bound}\nloop: addi r1, r1, {step}\n      {branch}\n      halt\n",
            bound = shape.bound,
            step = shape.step,
            branch = shape.branch,
        );
        let program = assemble(&source).expect("generated kernel assembles");
        let analysis = analyze(&program);

        // Dynamic ground truth: replay in the interpreter, counting
        // back-edge executions and collecting observed operand values.
        let mut executions = 0u64;
        let mut observed = Vec::new();
        let mut trace = Trace::new("absint-ground-truth");
        let mut machine = Machine::new(program.clone());
        machine
            .run_observed(FUEL, &mut trace, &mut |o| {
                executions += 1;
                observed.push((o.rs, o.rt));
            })
            .expect("generated kernel halts");

        // 1. The back-edge branch (instruction 3) resolves statically,
        //    and the resolved trip count is the machine's execution
        //    count exactly.
        let site = analysis
            .sites
            .iter()
            .find(|s| s.index == 3)
            .expect("the kernel's one branch is a site");
        prop_assert_eq!(
            site.trip_count, Some(executions),
            "shape {} init {} bound {} step {}", selector, init, shape.bound, shape.step
        );

        // 2. Every observed operand pair lies inside the abstract
        //    value set at the branch.
        let (a, b) = analysis
            .flow
            .operands_at(&program, &analysis.cfg, 3)
            .expect("instruction 3 is a branch");
        for &(rs, rt) in &observed {
            prop_assert!(
                a.contains(rs) && b.contains(rt),
                "observed ({}, {}) escapes {:?} / {:?}", rs, rt, a, b
            );
        }

        // 3. The loop-invariant bound is still an exact constant at
        //    the branch. The counter is `r1`; whichever operand is not
        //    the counter is the bound.
        let bound_val = if shape.branch.starts_with("bne r2") || shape.branch.starts_with("blt r2") || shape.branch.starts_with("bge r2") {
            a // swapped forms put the bound (r2) first
        } else {
            b
        };
        prop_assert_eq!(bound_val.as_const(), Some(shape.bound));
    }

    /// Straight-line `li`/`addi` chains propagate to exact constants
    /// at a downstream branch — the constant-propagation property the
    /// interval domain must subsume.
    #[test]
    fn constant_chains_stay_exact_through_straight_line_code(
        a0 in -100i64..=100,
        a1 in -50i64..=50,
        a2 in -50i64..=50,
        b0 in -100i64..=100,
        b1 in -50i64..=50,
    ) {
        let source = format!(
            "li r1, {a0}\naddi r1, r1, {a1}\naddi r1, r1, {a2}\nli r2, {b0}\naddi r2, r2, {b1}\nblt r1, r2, done\ndone: halt\n"
        );
        let program = assemble(&source).expect("assembles");
        let analysis = analyze(&program);
        let (lhs, rhs) = analysis
            .flow
            .operands_at(&program, &analysis.cfg, 5)
            .expect("instruction 5 is the branch");
        prop_assert_eq!(lhs.as_const(), Some(a0 + a1 + a2));
        prop_assert_eq!(rhs.as_const(), Some(b0 + b1));

        // The machine agrees: the one observed comparison carries
        // exactly those constants.
        let mut seen = None;
        let mut trace = Trace::new("const-chain");
        Machine::new(program)
            .run_observed(FUEL, &mut trace, &mut |o| seen = Some((o.rs, o.rt)))
            .expect("halts");
        prop_assert_eq!(seen, Some((a0 + a1 + a2, b0 + b1)));
    }
}
