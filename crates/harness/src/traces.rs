//! Trace generation and caching for the experiment suites.
//!
//! Workload traces are deterministic, so they are generated once per
//! (workload, scale) and cached — in memory within a `TraceSet`, and
//! optionally on disk in the binary codec so repeated `repro`
//! invocations skip regeneration. Each `TraceSet` also lazily builds
//! the packed (SoA) view of every trace, shared by all the batched
//! experiments of a run.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::sync::OnceLock;

use crate::sync::{AtomicU64, AtomicUsize, Ordering};

use bpred_trace::{PackedTrace, Trace};
use bpred_workloads::{Scale, Suite, Workload};

use crate::parallel;

/// Cache-format version; bump on binary-codec changes. Generator
/// changes need no bump: cache files are also keyed by
/// [`bpred_workloads::source_digest`], so editing any workload kernel
/// (or the tracer or scale table) re-keys every cached trace
/// automatically.
const CACHE_VERSION: u32 = 5;

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static PACKS_BUILT: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the process-wide trace-cache counters.
///
/// A *hit* is a trace served from the on-disk cache; a *miss* is a
/// trace generated from its workload kernel (whether or not a cache
/// write followed); a *pack* is one SoA packed view built from a
/// trace. Counters are monotone; attribute work to a stage by
/// differencing two snapshots with [`CacheCounters::since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Traces loaded from the on-disk cache.
    pub hits: u64,
    /// Traces regenerated from their workload kernels.
    pub misses: u64,
    /// Packed (SoA) trace views built.
    pub packs_built: u64,
}

impl CacheCounters {
    /// The activity recorded between `earlier` and `self`.
    #[must_use]
    pub fn since(&self, earlier: &CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            packs_built: self.packs_built.saturating_sub(earlier.packs_built),
        }
    }
}

/// Reads the current trace-cache counters.
#[must_use]
pub fn cache_counters() -> CacheCounters {
    // Independently monotone statistics; snapshots are differenced,
    // never used to synchronize other memory, so Relaxed suffices
    // (model-checked in race/metrics, which covers this counter shape).
    CacheCounters {
        hits: CACHE_HITS.load(Ordering::Relaxed), // ordering-audited: statistic, see above
        misses: CACHE_MISSES.load(Ordering::Relaxed), // ordering-audited: statistic, see above
        packs_built: PACKS_BUILT.load(Ordering::Relaxed), // ordering-audited: statistic, see above
    }
}

/// The traces of a set of workloads at one scale.
#[derive(Debug)]
pub struct TraceSet {
    scale: Scale,
    entries: Vec<(Workload, Trace)>,
    packed: Vec<OnceLock<PackedTrace>>,
}

/// Where on-disk trace caching lives, if enabled.
fn cache_dir() -> Option<PathBuf> {
    if std::env::var_os("BPRED_NO_TRACE_CACHE").is_some() {
        return None;
    }
    static DIR: OnceLock<Option<PathBuf>> = OnceLock::new();
    DIR.get_or_init(|| {
        let base = std::env::var_os("BPRED_TRACE_CACHE")
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("bpred-trace-cache"));
        fs::create_dir_all(&base).ok().map(|()| base)
    })
    .clone()
}

/// The on-disk trace cache directory, or `None` when caching is
/// disabled (`BPRED_NO_TRACE_CACHE`) or the directory can't be made.
/// Exposed so run manifests can record cache provenance.
#[must_use]
pub fn cache_location() -> Option<PathBuf> {
    cache_dir()
}

fn cached_path(workload: &Workload, scale: Scale) -> Option<PathBuf> {
    cache_dir().map(|d| {
        d.join(format!(
            "v{CACHE_VERSION}-{:016x}-{}-{scale}.bptr",
            bpred_workloads::source_digest(),
            workload.name()
        ))
    })
}

/// Writes `trace` to `path` atomically: serialise into a uniquely named
/// temp file in the same directory, then rename into place. Readers
/// never observe a half-written file (a crash mid-write leaves only the
/// temp file behind) and concurrent writers of the same trace race
/// harmlessly — renames are atomic and both sides wrote identical
/// bytes.
fn write_cache_atomically(trace: &Trace, path: &PathBuf) {
    static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed) // ordering-audited: uniqueness needs only RMW atomicity; nothing is published through the counter
    ));
    let written = File::create(&tmp).is_ok_and(|file| {
        let mut writer = BufWriter::new(file);
        bpred_trace::write_binary(trace, &mut writer).is_ok() && writer.flush().is_ok()
    });
    // Best-effort cache write; failure only costs regeneration.
    if !written || fs::rename(&tmp, path).is_err() {
        fs::remove_file(&tmp).ok();
    }
}

/// Generates (or loads from cache) one workload trace.
#[must_use]
pub fn load_trace(workload: &Workload, scale: Scale) -> Trace {
    if let Some(path) = cached_path(workload, scale) {
        if let Ok(file) = File::open(&path) {
            if let Ok(trace) = bpred_trace::read_binary(BufReader::new(file)) {
                CACHE_HITS.fetch_add(1, Ordering::Relaxed); // ordering-audited: statistic, see `cache_counters`
                return trace;
            }
            // Corrupt cache entry: fall through and regenerate.
            fs::remove_file(&path).ok();
        }
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed); // ordering-audited: statistic, see `cache_counters`
        let trace = workload.trace(scale);
        write_cache_atomically(&trace, &path);
        return trace;
    }
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed); // ordering-audited: statistic, see `cache_counters`
    workload.trace(scale)
}

impl TraceSet {
    /// Generates the traces of both paper suites (SPEC CINT95 and
    /// IBS-Ultrix) in parallel.
    #[must_use]
    pub fn paper_suites(scale: Scale, jobs: Option<usize>) -> Self {
        let mut workloads = Workload::suite_workloads(Suite::SpecInt95);
        workloads.extend(Workload::suite_workloads(Suite::IbsUltrix));
        Self::of(workloads, scale, jobs)
    }

    /// Generates the traces of the given workloads in parallel.
    #[must_use]
    pub fn of(workloads: Vec<Workload>, scale: Scale, jobs: Option<usize>) -> Self {
        let entries = parallel::map(workloads, jobs, |w| (*w, load_trace(w, scale)));
        let packed = entries.iter().map(|_| OnceLock::new()).collect();
        Self {
            scale,
            entries,
            packed,
        }
    }

    /// The scale the traces were generated at.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// All (workload, trace) pairs, in registry order.
    #[must_use]
    pub fn entries(&self) -> &[(Workload, Trace)] {
        &self.entries
    }

    /// The entries belonging to one suite.
    pub fn suite(&self, suite: Suite) -> impl Iterator<Item = &(Workload, Trace)> {
        self.entries.iter().filter(move |(w, _)| w.suite() == suite)
    }

    /// Looks up one workload's trace by name.
    #[must_use]
    pub fn trace(&self, name: &str) -> Option<&Trace> {
        self.entries
            .iter()
            .find(|(w, _)| w.name() == name)
            .map(|(_, t)| t)
    }

    fn packed_at(&self, index: usize) -> &PackedTrace {
        self.packed[index].get_or_init(|| {
            PACKS_BUILT.fetch_add(1, Ordering::Relaxed); // ordering-audited: statistic, see `cache_counters`
            PackedTrace::build(&self.entries[index].1).expect("workload site tables fit 32-bit ids")
            // panic-audited: synthetic workloads have far fewer than 2^32 branch sites
        })
    }

    /// The packed (SoA) view of one workload's trace, built on first
    /// use and shared for the lifetime of the set.
    #[must_use]
    pub fn packed(&self, name: &str) -> Option<&PackedTrace> {
        self.entries
            .iter()
            .position(|(w, _)| w.name() == name)
            .map(|i| self.packed_at(i))
    }

    /// Packed views of one suite's traces, in registry order.
    #[must_use]
    pub fn suite_packed(&self, suite: Suite) -> Vec<&PackedTrace> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, (w, _))| w.suite() == suite)
            .map(|(i, _)| self.packed_at(i))
            .collect()
    }

    /// Packed views of every trace, in registry order.
    #[must_use]
    pub fn all_packed(&self) -> Vec<&PackedTrace> {
        (0..self.entries.len()).map(|i| self.packed_at(i)).collect()
    }

    /// All (workload, packed trace) pairs, in registry order.
    #[must_use]
    pub fn packed_entries(&self) -> Vec<(Workload, &PackedTrace)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, (w, _))| (*w, self.packed_at(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_caches_a_trace() {
        let dir = std::env::temp_dir().join(format!("bpred-tc-test-{}", std::process::id()));
        // Isolate the cache via the env var; tests in this process run
        // the OnceLock once, so set it before the first call.
        std::env::set_var("BPRED_TRACE_CACHE", &dir);
        let w = Workload::by_name("compress").expect("registered");
        let a = load_trace(&w, Scale::Smoke);
        let b = load_trace(&w, Scale::Smoke);
        assert_eq!(a, b, "cache round-trip must be lossless");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_files_are_keyed_by_the_generator_source_digest() {
        let w = Workload::by_name("compress").expect("registered");
        let path = cached_path(&w, Scale::Smoke).expect("cache enabled in tests");
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 file name");
        assert!(
            name.contains(&format!("{:016x}", bpred_workloads::source_digest())),
            "editing a workload kernel must re-key the cache: {name}"
        );
        assert!(
            name.contains("compress") && name.contains("smoke"),
            "{name}"
        );
    }

    #[test]
    fn concurrent_loads_agree_and_leave_no_temp_files() {
        let w = Workload::by_name("groff").expect("registered");
        let traces: Vec<Trace> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| load_trace(&w, Scale::Smoke)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        for t in &traces[1..] {
            assert_eq!(
                *t, traces[0],
                "every concurrent load must see the same trace"
            );
        }
        if let Some(dir) = cache_dir() {
            let leftovers: Vec<PathBuf> = fs::read_dir(dir)
                .map(|it| {
                    it.filter_map(Result::ok)
                        .map(|e| e.path())
                        // Scope to this test's workload: other tests
                        // write the shared dir concurrently.
                        .filter(|p| {
                            let name = p.to_string_lossy().into_owned();
                            name.contains("groff") && name.contains(".tmp.")
                        })
                        .collect()
                })
                .unwrap_or_default();
            assert!(
                leftovers.is_empty(),
                "temp files must not survive: {leftovers:?}"
            );
        }
    }

    #[test]
    fn stale_temp_files_do_not_break_cache_reads() {
        let w = Workload::by_name("compress").expect("registered");
        let a = load_trace(&w, Scale::Smoke);
        let dead = cached_path(&w, Scale::Smoke).map(|p| p.with_extension("tmp.dead.0"));
        if let Some(dead) = &dead {
            // Simulate a crashed writer: a half-written temp neighbour.
            fs::write(dead, b"partial garbage").ok();
        }
        let b = load_trace(&w, Scale::Smoke);
        assert_eq!(a, b);
        if let Some(dead) = &dead {
            fs::remove_file(dead).ok();
        }
    }

    #[test]
    fn cache_counters_track_loads_and_packs() {
        let w = Workload::by_name("compress").expect("registered");
        let before = cache_counters();
        let _ = load_trace(&w, Scale::Smoke);
        let set = TraceSet::of(vec![w], Scale::Smoke, Some(1));
        let _ = set.packed("compress");
        let _ = set.packed("compress"); // lazy: second use builds nothing
        let delta = cache_counters().since(&before);
        // Other tests share the process-wide counters, so assert floors.
        assert!(
            delta.hits + delta.misses >= 2,
            "two loads must be counted: {delta:?}"
        );
        assert!(delta.packs_built >= 1, "one pack built: {delta:?}");
    }

    #[test]
    fn trace_set_indexes_by_name_and_suite() {
        let set = TraceSet::of(
            vec![
                Workload::by_name("compress").unwrap(),
                Workload::by_name("groff").unwrap(),
            ],
            Scale::Smoke,
            Some(2),
        );
        assert!(set.trace("compress").is_some());
        assert!(set.trace("nope").is_none());
        assert_eq!(set.suite(Suite::SpecInt95).count(), 1);
        assert_eq!(set.suite(Suite::IbsUltrix).count(), 1);
        assert_eq!(set.scale(), Scale::Smoke);
    }

    #[test]
    fn packed_views_mirror_the_traces() {
        let set = TraceSet::of(
            vec![
                Workload::by_name("compress").unwrap(),
                Workload::by_name("groff").unwrap(),
            ],
            Scale::Smoke,
            Some(2),
        );
        let p = set.packed("compress").expect("present");
        let t = set.trace("compress").expect("present");
        assert_eq!(p.len() as u64, t.stats().dynamic_conditional);
        // The lazy cell hands back the same instance on reuse.
        assert!(std::ptr::eq(p, set.packed("compress").unwrap()));
        assert!(set.packed("nope").is_none());
        assert_eq!(set.all_packed().len(), 2);
        assert_eq!(set.suite_packed(Suite::SpecInt95).len(), 1);
        assert_eq!(set.packed_entries().len(), 2);
    }
}
