//! Trace generation and caching for the experiment suites.
//!
//! Workload traces are deterministic, so they are generated once per
//! (workload, scale) and cached — in memory within a `TraceSet`, and
//! optionally on disk in the binary codec so repeated `repro`
//! invocations skip regeneration.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::sync::OnceLock;

use bpred_trace::Trace;
use bpred_workloads::{Scale, Suite, Workload};

use crate::parallel;

/// Cache-format version; bump when workload generators change so stale
/// traces on disk are ignored.
const CACHE_VERSION: u32 = 5;

/// The traces of a set of workloads at one scale.
#[derive(Debug)]
pub struct TraceSet {
    scale: Scale,
    entries: Vec<(Workload, Trace)>,
}

/// Where on-disk trace caching lives, if enabled.
fn cache_dir() -> Option<PathBuf> {
    if std::env::var_os("BPRED_NO_TRACE_CACHE").is_some() {
        return None;
    }
    static DIR: OnceLock<Option<PathBuf>> = OnceLock::new();
    DIR.get_or_init(|| {
        let base = std::env::var_os("BPRED_TRACE_CACHE")
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("bpred-trace-cache"));
        fs::create_dir_all(&base).ok().map(|()| base)
    })
    .clone()
}

fn cached_path(workload: &Workload, scale: Scale) -> Option<PathBuf> {
    cache_dir().map(|d| d.join(format!("v{CACHE_VERSION}-{}-{scale}.bptr", workload.name())))
}

/// Generates (or loads from cache) one workload trace.
#[must_use]
pub fn load_trace(workload: &Workload, scale: Scale) -> Trace {
    if let Some(path) = cached_path(workload, scale) {
        if let Ok(file) = File::open(&path) {
            if let Ok(trace) = bpred_trace::read_binary(BufReader::new(file)) {
                return trace;
            }
            // Corrupt cache entry: fall through and regenerate.
            fs::remove_file(&path).ok();
        }
        let trace = workload.trace(scale);
        if let Ok(file) = File::create(&path) {
            // Best-effort cache write; failure only costs regeneration.
            if bpred_trace::write_binary(&trace, BufWriter::new(file)).is_err() {
                fs::remove_file(&path).ok();
            }
        }
        return trace;
    }
    workload.trace(scale)
}

impl TraceSet {
    /// Generates the traces of both paper suites (SPEC CINT95 and
    /// IBS-Ultrix) in parallel.
    #[must_use]
    pub fn paper_suites(scale: Scale, jobs: Option<usize>) -> Self {
        let mut workloads = Workload::suite_workloads(Suite::SpecInt95);
        workloads.extend(Workload::suite_workloads(Suite::IbsUltrix));
        Self::of(workloads, scale, jobs)
    }

    /// Generates the traces of the given workloads in parallel.
    #[must_use]
    pub fn of(workloads: Vec<Workload>, scale: Scale, jobs: Option<usize>) -> Self {
        let entries = parallel::map(workloads, jobs, |w| (*w, load_trace(w, scale)));
        Self { scale, entries }
    }

    /// The scale the traces were generated at.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// All (workload, trace) pairs, in registry order.
    #[must_use]
    pub fn entries(&self) -> &[(Workload, Trace)] {
        &self.entries
    }

    /// The entries belonging to one suite.
    pub fn suite(&self, suite: Suite) -> impl Iterator<Item = &(Workload, Trace)> {
        self.entries.iter().filter(move |(w, _)| w.suite() == suite)
    }

    /// Looks up one workload's trace by name.
    #[must_use]
    pub fn trace(&self, name: &str) -> Option<&Trace> {
        self.entries.iter().find(|(w, _)| w.name() == name).map(|(_, t)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_caches_a_trace() {
        let dir = std::env::temp_dir().join(format!("bpred-tc-test-{}", std::process::id()));
        // Isolate the cache via the env var; tests in this process run
        // the OnceLock once, so set it before the first call.
        std::env::set_var("BPRED_TRACE_CACHE", &dir);
        let w = Workload::by_name("compress").expect("registered");
        let a = load_trace(&w, Scale::Smoke);
        let b = load_trace(&w, Scale::Smoke);
        assert_eq!(a, b, "cache round-trip must be lossless");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_set_indexes_by_name_and_suite() {
        let set = TraceSet::of(
            vec![
                Workload::by_name("compress").unwrap(),
                Workload::by_name("groff").unwrap(),
            ],
            Scale::Smoke,
            Some(2),
        );
        assert!(set.trace("compress").is_some());
        assert!(set.trace("nope").is_none());
        assert_eq!(set.suite(Suite::SpecInt95).count(), 1);
        assert_eq!(set.suite(Suite::IbsUltrix).count(), 1);
        assert_eq!(set.scale(), Scale::Smoke);
    }
}
