//! The typed experiment registry: every paper artefact the harness can
//! regenerate, declared as data.
//!
//! Each entry names the experiment, the paper artefact it reproduces,
//! the trace suites it needs, the scales it supports, and a one-line
//! description of its configuration grid — everything the planner
//! (see [`crate::orchestrate`]) needs to dedupe trace generation
//! across a multi-experiment run, and everything the CLI needs to
//! render help and validate names. This replaces the free-function
//! exports and string dispatch the CLI used to hand-roll.

use bpred_workloads::{Scale, Suite};

use crate::experiments;
use crate::format::Report;
use crate::traces::TraceSet;

/// One reproducible paper artefact: declarative metadata plus a runner.
///
/// [`ExperimentDef`] is the registry's data-driven implementation; the
/// trait exists so future experiment providers (generated grids,
/// external campaign definitions) can plug into the same orchestrator.
pub trait Experiment: Sync {
    /// The CLI / registry name (`fig2`, `ablation-init`, ...).
    fn name(&self) -> &'static str;
    /// The paper artefact reproduced (`Figure 2`, `Table 4`, ...).
    fn artefact(&self) -> &'static str;
    /// One-line description for help text and manifests.
    fn doc(&self) -> &'static str;
    /// The trace suites the experiment needs (empty: no traces).
    fn suites(&self) -> &'static [Suite];
    /// The scales the experiment supports.
    fn scales(&self) -> &'static [Scale];
    /// A one-line summary of the configuration grid driven.
    fn grid(&self) -> &'static str;
    /// Runs the experiment against an already-generated trace set.
    fn run(&self, set: &TraceSet, jobs: Option<usize>) -> Report;
}

/// A registry entry: the declarative form of one experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentDef {
    /// The CLI / registry name.
    pub name: &'static str,
    /// The paper artefact reproduced.
    pub artefact: &'static str,
    /// One-line description for help text and manifests.
    pub doc: &'static str,
    /// Trace suites the experiment needs (empty: no traces).
    pub suites: &'static [Suite],
    /// Scales the experiment supports.
    pub scales: &'static [Scale],
    /// One-line summary of the configuration grid driven.
    pub grid: &'static str,
    /// The runner.
    pub runner: fn(&TraceSet, Option<usize>) -> Report,
}

impl Experiment for ExperimentDef {
    fn name(&self) -> &'static str {
        self.name
    }
    fn artefact(&self) -> &'static str {
        self.artefact
    }
    fn doc(&self) -> &'static str {
        self.doc
    }
    fn suites(&self) -> &'static [Suite] {
        self.suites
    }
    fn scales(&self) -> &'static [Scale] {
        self.scales
    }
    fn grid(&self) -> &'static str {
        self.grid
    }
    fn run(&self, set: &TraceSet, jobs: Option<usize>) -> Report {
        (self.runner)(set, jobs)
    }
}

/// Every scale; all current experiments support all three.
const ALL_SCALES: &[Scale] = &[Scale::Smoke, Scale::Paper, Scale::Full];
/// Both paper suites.
const BOTH: &[Suite] = &[Suite::SpecInt95, Suite::IbsUltrix];
/// SPEC CINT95 only (the gcc/go-centric analyses).
const SPEC: &[Suite] = &[Suite::SpecInt95];
/// IBS-Ultrix only.
const IBS: &[Suite] = &[Suite::IbsUltrix];
/// The program-backed simulated kernels (the CFA cross-check).
const SIM: &[Suite] = &[Suite::SimKernels];
/// No traces at all (documentation tables).
const NONE: &[Suite] = &[];

fn run_table1(set: &TraceSet, _jobs: Option<usize>) -> Report {
    experiments::table1(set.scale())
}
fn run_table2(set: &TraceSet, _jobs: Option<usize>) -> Report {
    experiments::table2(set)
}
fn run_table3(_set: &TraceSet, _jobs: Option<usize>) -> Report {
    experiments::table3()
}
fn run_table4(set: &TraceSet, _jobs: Option<usize>) -> Report {
    experiments::table4(set)
}
fn run_fig3(set: &TraceSet, jobs: Option<usize>) -> Report {
    experiments::fig34(set, Suite::SpecInt95, jobs)
}
fn run_fig4(set: &TraceSet, jobs: Option<usize>) -> Report {
    experiments::fig34(set, Suite::IbsUltrix, jobs)
}
fn run_fig5(set: &TraceSet, _jobs: Option<usize>) -> Report {
    experiments::fig5(set)
}
fn run_fig6(set: &TraceSet, _jobs: Option<usize>) -> Report {
    experiments::fig6(set)
}
fn run_fig7(set: &TraceSet, _jobs: Option<usize>) -> Report {
    experiments::fig78(set, "gcc")
}
fn run_fig8(set: &TraceSet, _jobs: Option<usize>) -> Report {
    experiments::fig78(set, "go")
}
fn run_aliasing(set: &TraceSet, _jobs: Option<usize>) -> Report {
    experiments::aliasing_taxonomy(set)
}
fn run_warmup(set: &TraceSet, _jobs: Option<usize>) -> Report {
    experiments::warmup_curves(set)
}
fn run_cfa(set: &TraceSet, _jobs: Option<usize>) -> Report {
    experiments::cfa_report(set)
}
fn run_cfa_bias(set: &TraceSet, _jobs: Option<usize>) -> Report {
    experiments::cfa_bias(set)
}

/// The registry, in paper order: tables and figures first, then the
/// ablations and extensions. DESIGN.md §4 is the human-readable index;
/// `repro verify` proves the two stay in lockstep.
pub const REGISTRY: &[ExperimentDef] = &[
    ExperimentDef {
        name: "table1",
        artefact: "Table 1",
        doc: "workload inputs (paper Table 1)",
        suites: NONE,
        scales: ALL_SCALES,
        grid: "documentation only, no configs driven",
        runner: run_table1,
    },
    ExperimentDef {
        name: "table2",
        artefact: "Table 2",
        doc: "static/dynamic branch counts (paper Table 2)",
        suites: BOTH,
        scales: ALL_SCALES,
        grid: "trace statistics only, no configs driven",
        runner: run_table2,
    },
    ExperimentDef {
        name: "table3",
        artefact: "Table 3",
        doc: "normalized-count worked example (paper Table 3)",
        suites: NONE,
        scales: ALL_SCALES,
        grid: "the paper's verbatim 4-branch example",
        runner: run_table3,
    },
    ExperimentDef {
        name: "table4",
        artefact: "Table 4",
        doc: "bias-class change counts on gcc (paper Table 4)",
        suites: SPEC,
        scales: ALL_SCALES,
        grid: "2 schemes at 256 counters, two-pass analysis on gcc",
        runner: run_table4,
    },
    ExperimentDef {
        name: "fig2",
        artefact: "Figure 2",
        doc: "suite-average misprediction vs size (paper Figure 2)",
        suites: BOTH,
        scales: ALL_SCALES,
        grid: "3 schemes x 8 sizes (132 configs incl. gshare.best search) per suite",
        runner: experiments::fig2,
    },
    ExperimentDef {
        name: "fig3",
        artefact: "Figure 3",
        doc: "per-benchmark curves, SPEC CINT95 (paper Figure 3)",
        suites: SPEC,
        scales: ALL_SCALES,
        grid: "3 schemes x 8 sizes (132 configs incl. gshare.best search)",
        runner: run_fig3,
    },
    ExperimentDef {
        name: "fig4",
        artefact: "Figure 4",
        doc: "per-benchmark curves, IBS-Ultrix (paper Figure 4)",
        suites: IBS,
        scales: ALL_SCALES,
        grid: "3 schemes x 8 sizes (132 configs incl. gshare.best search)",
        runner: run_fig4,
    },
    ExperimentDef {
        name: "fig5",
        artefact: "Figure 5",
        doc: "gshare bias breakdown on gcc (paper Figure 5)",
        suites: SPEC,
        scales: ALL_SCALES,
        grid: "2 gshare indexings at 256 counters, two-pass analysis on gcc",
        runner: run_fig5,
    },
    ExperimentDef {
        name: "fig6",
        artefact: "Figure 6",
        doc: "bi-mode bias breakdown on gcc (paper Figure 6)",
        suites: SPEC,
        scales: ALL_SCALES,
        grid: "bi-mode(2x128+128) + reference gshare, two-pass analysis on gcc",
        runner: run_fig6,
    },
    ExperimentDef {
        name: "fig7",
        artefact: "Figure 7",
        doc: "misprediction by bias class, gcc (paper Figure 7)",
        suites: SPEC,
        scales: ALL_SCALES,
        grid: "3 schemes x 3 sizes, two-pass attribution on gcc",
        runner: run_fig7,
    },
    ExperimentDef {
        name: "fig8",
        artefact: "Figure 8",
        doc: "misprediction by bias class, go (paper Figure 8)",
        suites: SPEC,
        scales: ALL_SCALES,
        grid: "3 schemes x 3 sizes, two-pass attribution on go",
        runner: run_fig8,
    },
    ExperimentDef {
        name: "ablation-choice-update",
        artefact: "§2.2 ablation",
        doc: "partial vs always choice update",
        suites: BOTH,
        scales: ALL_SCALES,
        grid: "2 update rules x 5 sizes (10 configs)",
        runner: experiments::ablation_choice_update,
    },
    ExperimentDef {
        name: "ablation-init",
        artefact: "footnote 2 ablation",
        doc: "direction-bank initialisation",
        suites: BOTH,
        scales: ALL_SCALES,
        grid: "2 init policies x 3 sizes (6 configs)",
        runner: experiments::ablation_init,
    },
    ExperimentDef {
        name: "ablation-choice-size",
        artefact: "§4.2 ablation",
        doc: "choice predictor sizing",
        suites: BOTH,
        scales: ALL_SCALES,
        grid: "5 choice-table sizes at d=10",
        runner: experiments::ablation_choice_size,
    },
    ExperimentDef {
        name: "ablation-index",
        artefact: "§2.2 ablation",
        doc: "shared vs skewed bank index",
        suites: BOTH,
        scales: ALL_SCALES,
        grid: "2 index policies x 3 sizes (6 configs)",
        runner: experiments::ablation_index,
    },
    ExperimentDef {
        name: "ablation-delay",
        artefact: "methodology ablation",
        doc: "update-delay (resolution latency) sensitivity",
        suites: BOTH,
        scales: ALL_SCALES,
        grid: "2 schemes x 7 delays (14 configs)",
        runner: experiments::ablation_delay,
    },
    ExperimentDef {
        name: "ablation-flush",
        artefact: "IBS methodology ablation",
        doc: "context-switch flush-interval sensitivity",
        suites: BOTH,
        scales: ALL_SCALES,
        grid: "2 schemes x 4 flush intervals (8 configs)",
        runner: experiments::ablation_flush,
    },
    ExperimentDef {
        name: "aliasing",
        artefact: "§2.2 taxonomy",
        doc: "destructive/harmless/neutral alias taxonomy on gcc",
        suites: SPEC,
        scales: ALL_SCALES,
        grid: "3 schemes x 2 budgets, pairwise alias analysis on gcc",
        runner: run_aliasing,
    },
    ExperimentDef {
        name: "compare-dealias",
        artefact: "§2.1 comparison",
        doc: "bi-mode vs agree/gskew/yags/tournament",
        suites: BOTH,
        scales: ALL_SCALES,
        grid: "10 contenders x 3 budgets (30 configs)",
        runner: experiments::compare_dealias,
    },
    ExperimentDef {
        name: "future-trimode",
        artefact: "§5 future work",
        doc: "the paper's future-work direction: a weak third bank",
        suites: BOTH,
        scales: ALL_SCALES,
        grid: "bi-mode vs tri-mode x 3 sizes (6 configs)",
        runner: experiments::future_trimode,
    },
    ExperimentDef {
        name: "zoo.cost",
        artefact: "beyond-paper comparison",
        doc: "predictor zoo: tage/perceptron/cascade vs bi-mode at equal cost",
        suites: BOTH,
        scales: ALL_SCALES,
        grid: "5 families x 8 ladder points (40 configs)",
        runner: experiments::zoo_cost,
    },
    ExperimentDef {
        name: "warmup",
        artefact: "footnote 2 transient",
        doc: "windowed misprediction over time (convergence curves)",
        suites: SPEC,
        scales: ALL_SCALES,
        grid: "3 schemes, windowed rates on gcc",
        runner: run_warmup,
    },
    ExperimentDef {
        name: "cfa.report",
        artefact: "§2 bias structure",
        doc: "static CFA vs dynamic traces: sites, bias, trips, aliasing",
        suites: SIM,
        scales: ALL_SCALES,
        grid: "5 kernel programs x 2 alias configs (static)",
        runner: run_cfa,
    },
    ExperimentDef {
        name: "cfa.bias",
        artefact: "§2 H2P structure",
        doc: "per-site misprediction concentration vs static H2P ranking",
        suites: SIM,
        scales: ALL_SCALES,
        grid: "5 kernel programs x 3 predictor families, top-k curves",
        runner: run_cfa_bias,
    },
    ExperimentDef {
        name: "summary",
        artefact: "whole paper",
        doc: "reproduction scoreboard: every headline claim, judged live",
        suites: BOTH,
        scales: ALL_SCALES,
        grid: "11 headline claims recomputed (incl. gshare.best searches)",
        runner: experiments::summary,
    },
];

/// Every registered experiment, in paper order.
#[must_use]
pub fn all() -> &'static [ExperimentDef] {
    REGISTRY
}

/// Looks an experiment up by its registry name.
#[must_use]
pub fn find(name: &str) -> Option<&'static ExperimentDef> {
    REGISTRY.iter().find(|e| e.name == name)
}

/// Every registered name, in paper order.
#[must_use]
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_workloads::Workload;

    #[test]
    fn names_are_unique_and_lookup_works() {
        let names = names();
        for (i, a) in names.iter().enumerate() {
            assert!(!names[i + 1..].contains(a), "duplicate name `{a}`");
        }
        assert_eq!(find("fig2").map(|e| e.artefact), Some("Figure 2"));
        assert!(find("figZZ").is_none());
    }

    #[test]
    fn every_entry_is_fully_described() {
        for e in all() {
            assert!(!e.doc.is_empty(), "{}: empty doc", e.name);
            assert!(!e.grid.is_empty(), "{}: empty grid", e.name);
            assert!(!e.artefact.is_empty(), "{}: empty artefact", e.name);
            assert!(!e.scales.is_empty(), "{}: no scales", e.name);
            assert!(
                e.scales.contains(&Scale::Smoke),
                "{}: every experiment must support the smallest scale",
                e.name
            );
        }
    }

    #[test]
    fn trait_view_mirrors_the_definition() {
        let e = find("table4").expect("registered");
        let dynamic: &dyn Experiment = e;
        assert_eq!(dynamic.name(), "table4");
        assert_eq!(dynamic.artefact(), "Table 4");
        assert_eq!(dynamic.suites(), SPEC);
        assert_eq!(dynamic.grid(), e.grid);
        assert_eq!(dynamic.doc(), e.doc);
        assert_eq!(dynamic.scales(), ALL_SCALES);
    }

    #[test]
    fn no_trace_experiments_run_on_an_empty_set() {
        let empty = TraceSet::of(Vec::new(), Scale::Smoke, Some(1));
        for name in ["table1", "table3"] {
            let e = find(name).expect("registered");
            assert!(e.suites.is_empty());
            let report = e.run(&empty, None);
            assert_eq!(report.id, name);
            assert!(!report.sections.is_empty());
        }
    }

    #[test]
    fn traced_experiments_run_through_the_trait() {
        let set = TraceSet::of(
            vec![
                Workload::by_name("gcc").expect("registered"),
                Workload::by_name("go").expect("registered"),
            ],
            Scale::Smoke,
            Some(2),
        );
        let e = find("fig7").expect("registered");
        let report = e.run(&set, Some(2));
        assert_eq!(report.id, "fig7");
        assert!(!report.sections.is_empty());
    }
}
